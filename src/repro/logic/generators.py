"""CNF generators for tests and benchmarks.

Classic families with known structure: random k-CNF, pigeonhole
formulas (hard UNSAT), parity/XOR chains (easy with the right circuit
structure, hard with the wrong one) and variable-pair biconditionals
(the vtree-sensitivity family of ABL1).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from .cnf import Cnf

__all__ = ["random_kcnf", "pigeonhole", "parity_chain",
           "pair_biconditionals"]


def random_kcnf(num_vars: int, num_clauses: int, k: int = 3,
                rng: random.Random | None = None) -> Cnf:
    """Uniform random k-CNF (clauses over distinct variables)."""
    rng = rng or random.Random()
    if k > num_vars:
        raise ValueError("clause width exceeds variable count")
    clauses: List[Tuple[int, ...]] = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), k)
        clauses.append(tuple(v if rng.random() < 0.5 else -v
                             for v in variables))
    return Cnf(clauses, num_vars=num_vars)


def pigeonhole(holes: int) -> Cnf:
    """PHP(holes+1, holes): pigeons into fewer holes — UNSAT.

    Variable p_{i,j} = pigeon i sits in hole j, numbered
    i·holes + j + 1 for i in 0..holes, j in 0..holes-1.
    """
    if holes < 1:
        raise ValueError("need at least one hole")
    pigeons = holes + 1

    def var(i: int, j: int) -> int:
        return i * holes + j + 1

    clauses: List[Tuple[int, ...]] = []
    for i in range(pigeons):  # every pigeon sits somewhere
        clauses.append(tuple(var(i, j) for j in range(holes)))
    for j in range(holes):    # no two pigeons share a hole
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                clauses.append((-var(i1, j), -var(i2, j)))
    return Cnf(clauses, num_vars=pigeons * holes)


def parity_chain(n: int) -> Cnf:
    """x₁ ⊕ x₂ ⊕ … ⊕ xₙ = 1 via chained aux variables.

    Aux variable a_i (numbered n+i) carries the prefix parity; the
    formula has exactly 2^(n-1) models projected onto x (each model
    extends uniquely, so the total count is also 2^(n-1)).
    """
    if n < 1:
        raise ValueError("need at least one variable")
    if n == 1:
        return Cnf([(1,)], num_vars=1)

    def xor_clauses(a: int, b: int, c: int) -> List[Tuple[int, ...]]:
        """c ↔ a ⊕ b."""
        return [(-a, -b, -c), (a, b, -c), (-a, b, c), (a, -b, c)]

    clauses: List[Tuple[int, ...]] = []
    prev = 1
    aux = n
    for i in range(2, n + 1):
        aux += 1
        clauses.extend(xor_clauses(prev, i, aux))
        prev = aux
    clauses.append((prev,))
    return Cnf(clauses, num_vars=aux)


def pair_biconditionals(pairs: int) -> Cnf:
    """⋀ᵢ (x_i ↔ y_i) with x_i = 2i−1, y_i = 2i (the ABL1 family)."""
    clauses: List[Tuple[int, ...]] = []
    for i in range(1, pairs + 1):
        x, y = 2 * i - 1, 2 * i
        clauses.extend([(-x, y), (x, -y)])
    return Cnf(clauses, num_vars=2 * pairs)
