"""Prime implicants of Boolean functions (Quine–McCluskey).

A *term* is represented as a frozenset of literals (non-zero ints): the
conjunction of those literals.  A term ``t`` is an implicant of function
``f`` when every completion of ``t`` satisfies ``f``; it is *prime* when
no proper subset of ``t`` is an implicant.

These are the objects underlying sufficient reasons / PI-explanations
(Section 5.1 of the paper, Fig 26).  Quine–McCluskey enumerates over the
truth table, so it is intended for functions of modest arity; the
instance-directed routines in :mod:`repro.explain.sufficient` scale
further by querying circuits instead.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Sequence, Set

from .formula import Formula, iter_assignments

__all__ = [
    "Term",
    "prime_implicants",
    "prime_implicants_of_formula",
    "prime_implicates_of_formula",
    "term_subsumes",
    "is_implicant",
]

Term = FrozenSet[int]

BoolFunc = Callable[[Dict[int, bool]], bool]


def term_subsumes(general: Term, specific: Term) -> bool:
    """True when ``general`` is a (non-strict) subset of ``specific``.

    A more general term covers everything the more specific term covers.
    """
    return general <= specific


def is_implicant(term: Term, func: BoolFunc,
                 variables: Sequence[int]) -> bool:
    """Check whether ``term`` implies the function, by enumeration."""
    fixed = {abs(lit): lit > 0 for lit in term}
    free = [v for v in variables if v not in fixed]
    for assignment in iter_assignments(free):
        assignment.update(fixed)
        if not func(assignment):
            return False
    return True


def prime_implicants(func: BoolFunc,
                     variables: Sequence[int]) -> List[Term]:
    """All prime implicants of ``func`` over ``variables`` (Quine–McCluskey).

    Returns terms sorted by (length, literals) for deterministic output.
    An always-true function yields the single empty term; an always-false
    function yields no terms.
    """
    variables = list(variables)
    minterms: Set[Term] = set()
    for assignment in iter_assignments(variables):
        if func(assignment):
            minterms.add(frozenset(v if value else -v
                                   for v, value in assignment.items()))
    return _quine_mccluskey(minterms)


def _quine_mccluskey(minterms: Set[Term]) -> List[Term]:
    """Iteratively merge adjacent terms; unmerged terms are prime."""
    primes: Set[Term] = set()
    current = set(minterms)
    while current:
        merged_away: Set[Term] = set()
        next_terms: Set[Term] = set()
        current_list = sorted(current, key=_term_key)
        index: Dict[Term, List[Term]] = {}
        # group terms by their variable set for fast adjacency lookup
        for term in current_list:
            index.setdefault(frozenset(abs(l) for l in term), []).append(term)
        for term in current_list:
            for lit in term:
                partner = frozenset((term - {lit}) | {-lit})
                if partner in current:
                    next_terms.add(term - {lit})
                    merged_away.add(term)
                    merged_away.add(partner)
        primes.update(current - merged_away)
        current = next_terms
    return sorted(primes, key=_term_key)


def _term_key(term: Term):
    return (len(term), sorted(term, key=lambda lit: (abs(lit), lit < 0)))


def prime_implicants_of_formula(formula: Formula,
                                variables: Sequence[int] | None = None
                                ) -> List[Term]:
    """Prime implicants of a :class:`Formula` (enumerative)."""
    if variables is None:
        variables = sorted(formula.variables())
    return prime_implicants(formula.evaluate, variables)


def prime_implicates_of_formula(formula: Formula,
                                variables: Sequence[int] | None = None
                                ) -> List[Term]:
    """Prime implicates: minimal clauses implied by the formula.

    Computed by duality — the prime implicates of ``f`` are the negations
    of prime implicants of ``¬f``.  Each returned frozenset is the set of
    literals of a clause.
    """
    if variables is None:
        variables = sorted(formula.variables())
    complement = prime_implicants(
        lambda a: not formula.evaluate(a), variables)
    return sorted((frozenset(-lit for lit in term) for term in complement),
                  key=_term_key)
