"""Propositional formula AST.

Variables are positive integers (DIMACS convention).  A *literal* is a
non-zero integer: ``v`` denotes the positive literal of variable ``v`` and
``-v`` its negation.  Formulas are immutable trees built from literals,
constants and the connectives AND, OR, NOT, IMPLIES and IFF.

The AST is deliberately small: higher layers (CNF, circuits, compilers)
use more specialised representations and only use :class:`Formula` as the
human-facing modelling language.

Example
-------
>>> from repro.logic.formula import Lit, And, Or
>>> f = And(Or(Lit(1), Lit(2)), Lit(-3))
>>> f.evaluate({1: True, 2: False, 3: False})
True
>>> sorted(f.variables())
[1, 2, 3]
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, Sequence, Tuple

__all__ = [
    "Formula",
    "Constant",
    "Lit",
    "And",
    "Or",
    "Not",
    "Implies",
    "Iff",
    "TRUE",
    "FALSE",
    "iter_assignments",
]


class Formula:
    """Base class for propositional formulas.

    Subclasses are immutable and hashable.  Operators are overloaded so
    formulas compose naturally: ``&`` (and), ``|`` (or), ``~`` (not),
    ``>>`` (implies).
    """

    __slots__ = ()

    # -- construction sugar ------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, other)

    def iff(self, other: "Formula") -> "Formula":
        return Iff(self, other)

    # -- semantics ---------------------------------------------------------
    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """Evaluate under a complete (for this formula) assignment."""
        raise NotImplementedError

    def variables(self) -> FrozenSet[int]:
        """The set of variables mentioned by the formula."""
        raise NotImplementedError

    def condition(self, assignment: Dict[int, bool]) -> "Formula":
        """Substitute the given variable values and simplify constants."""
        raise NotImplementedError

    # -- derived queries (exponential; for tests and small inputs) ---------
    def models(self, variables: Sequence[int] | None = None
               ) -> Iterator[Dict[int, bool]]:
        """Yield all satisfying complete assignments over ``variables``.

        ``variables`` defaults to :meth:`variables`; it may be a superset,
        in which case don't-care variables range over both values.
        """
        if variables is None:
            variables = sorted(self.variables())
        for assignment in iter_assignments(variables):
            if self.evaluate(assignment):
                yield assignment

    def model_count(self, variables: Sequence[int] | None = None) -> int:
        """Count satisfying assignments by enumeration (small inputs only)."""
        return sum(1 for _ in self.models(variables))

    def is_satisfiable(self) -> bool:
        return next(self.models(), None) is not None

    def is_valid(self) -> bool:
        variables = sorted(self.variables())
        return self.model_count(variables) == 2 ** len(variables)

    def equivalent(self, other: "Formula") -> bool:
        """Truth-table equivalence (small inputs only)."""
        variables = sorted(self.variables() | other.variables())
        return all(self.evaluate(a) == other.evaluate(a)
                   for a in iter_assignments(variables))

    # -- normal forms -------------------------------------------------------
    def to_nnf(self) -> "Formula":
        """Push negations to literals and expand IMPLIES/IFF."""
        return self._nnf(False)

    def _nnf(self, negate: bool) -> "Formula":
        raise NotImplementedError


def iter_assignments(variables: Sequence[int]
                     ) -> Iterator[Dict[int, bool]]:
    """Yield every complete assignment over ``variables`` (2^n of them)."""
    variables = list(variables)
    for values in itertools.product((False, True), repeat=len(variables)):
        yield dict(zip(variables, values))


class Constant(Formula):
    """Boolean constant; use the module-level ``TRUE`` / ``FALSE``."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        object.__setattr__(self, "value", bool(value))

    def __setattr__(self, *args):  # immutability
        raise AttributeError("Formula objects are immutable")

    def evaluate(self, assignment):
        return self.value

    def variables(self):
        return frozenset()

    def condition(self, assignment):
        return self

    def _nnf(self, negate):
        return FALSE if (self.value == negate and negate) or \
            (not self.value and not negate) else TRUE

    def __eq__(self, other):
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self):
        return hash(("const", self.value))

    def __repr__(self):
        return "TRUE" if self.value else "FALSE"


TRUE = Constant(True)
FALSE = Constant(False)


class Lit(Formula):
    """A literal: ``Lit(v)`` is variable ``v``; ``Lit(-v)`` its negation."""

    __slots__ = ("literal",)

    def __init__(self, literal: int):
        if not isinstance(literal, int) or literal == 0:
            raise ValueError("literal must be a non-zero integer")
        object.__setattr__(self, "literal", literal)

    def __setattr__(self, *args):
        raise AttributeError("Formula objects are immutable")

    @property
    def variable(self) -> int:
        return abs(self.literal)

    @property
    def positive(self) -> bool:
        return self.literal > 0

    def evaluate(self, assignment):
        value = assignment[self.variable]
        return value if self.positive else not value

    def variables(self):
        return frozenset((self.variable,))

    def condition(self, assignment):
        if self.variable not in assignment:
            return self
        return TRUE if self.evaluate(assignment) else FALSE

    def _nnf(self, negate):
        return Lit(-self.literal) if negate else self

    def __eq__(self, other):
        return isinstance(other, Lit) and self.literal == other.literal

    def __hash__(self):
        return hash(("lit", self.literal))

    def __repr__(self):
        return f"Lit({self.literal})"


class _NaryOp(Formula):
    """Shared machinery for AND/OR."""

    __slots__ = ("children",)
    _symbol = "?"

    def __init__(self, *children: Formula):
        flat: list[Formula] = []
        for child in children:
            if not isinstance(child, Formula):
                raise TypeError(f"expected Formula, got {type(child)!r}")
            if isinstance(child, type(self)):
                flat.extend(child.children)
            else:
                flat.append(child)
        object.__setattr__(self, "children", tuple(flat))

    def __setattr__(self, *args):
        raise AttributeError("Formula objects are immutable")

    def variables(self):
        result: frozenset[int] = frozenset()
        for child in self.children:
            result |= child.variables()
        return result

    def __eq__(self, other):
        return type(other) is type(self) and self.children == other.children

    def __hash__(self):
        return hash((self._symbol, self.children))

    def __repr__(self):
        inner = f" {self._symbol} ".join(map(repr, self.children))
        return f"({inner})"


class And(_NaryOp):
    """Conjunction of zero or more formulas (empty = TRUE)."""

    __slots__ = ()
    _symbol = "&"

    def evaluate(self, assignment):
        return all(child.evaluate(assignment) for child in self.children)

    def condition(self, assignment):
        kept = []
        for child in self.children:
            child = child.condition(assignment)
            if child == FALSE:
                return FALSE
            if child != TRUE:
                kept.append(child)
        if not kept:
            return TRUE
        if len(kept) == 1:
            return kept[0]
        return And(*kept)

    def _nnf(self, negate):
        parts = tuple(child._nnf(negate) for child in self.children)
        return Or(*parts) if negate else And(*parts)


class Or(_NaryOp):
    """Disjunction of zero or more formulas (empty = FALSE)."""

    __slots__ = ()
    _symbol = "|"

    def evaluate(self, assignment):
        return any(child.evaluate(assignment) for child in self.children)

    def condition(self, assignment):
        kept = []
        for child in self.children:
            child = child.condition(assignment)
            if child == TRUE:
                return TRUE
            if child != FALSE:
                kept.append(child)
        if not kept:
            return FALSE
        if len(kept) == 1:
            return kept[0]
        return Or(*kept)

    def _nnf(self, negate):
        parts = tuple(child._nnf(negate) for child in self.children)
        return And(*parts) if negate else Or(*parts)


class Not(Formula):
    """Negation."""

    __slots__ = ("child",)

    def __init__(self, child: Formula):
        if not isinstance(child, Formula):
            raise TypeError(f"expected Formula, got {type(child)!r}")
        object.__setattr__(self, "child", child)

    def __setattr__(self, *args):
        raise AttributeError("Formula objects are immutable")

    def evaluate(self, assignment):
        return not self.child.evaluate(assignment)

    def variables(self):
        return self.child.variables()

    def condition(self, assignment):
        child = self.child.condition(assignment)
        if child == TRUE:
            return FALSE
        if child == FALSE:
            return TRUE
        return Not(child)

    def _nnf(self, negate):
        return self.child._nnf(not negate)

    def __eq__(self, other):
        return isinstance(other, Not) and self.child == other.child

    def __hash__(self):
        return hash(("not", self.child))

    def __repr__(self):
        return f"~{self.child!r}"


class Implies(Formula):
    """Material implication ``antecedent -> consequent``."""

    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent: Formula, consequent: Formula):
        object.__setattr__(self, "antecedent", antecedent)
        object.__setattr__(self, "consequent", consequent)

    def __setattr__(self, *args):
        raise AttributeError("Formula objects are immutable")

    def evaluate(self, assignment):
        return (not self.antecedent.evaluate(assignment)
                or self.consequent.evaluate(assignment))

    def variables(self):
        return self.antecedent.variables() | self.consequent.variables()

    def condition(self, assignment):
        return Or(Not(self.antecedent), self.consequent).condition(assignment)

    def _nnf(self, negate):
        return Or(Not(self.antecedent), self.consequent)._nnf(negate)

    def __eq__(self, other):
        return (isinstance(other, Implies)
                and self.antecedent == other.antecedent
                and self.consequent == other.consequent)

    def __hash__(self):
        return hash(("->", self.antecedent, self.consequent))

    def __repr__(self):
        return f"({self.antecedent!r} -> {self.consequent!r})"


class Iff(Formula):
    """Biconditional ``left <-> right``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, *args):
        raise AttributeError("Formula objects are immutable")

    def evaluate(self, assignment):
        return self.left.evaluate(assignment) == self.right.evaluate(assignment)

    def variables(self):
        return self.left.variables() | self.right.variables()

    def _expanded(self) -> Formula:
        return Or(And(self.left, self.right),
                  And(Not(self.left), Not(self.right)))

    def condition(self, assignment):
        return self._expanded().condition(assignment)

    def _nnf(self, negate):
        return self._expanded()._nnf(negate)

    def __eq__(self, other):
        return (isinstance(other, Iff) and self.left == other.left
                and self.right == other.right)

    def __hash__(self):
        return hash(("<->", self.left, self.right))

    def __repr__(self):
        return f"({self.left!r} <-> {self.right!r})"


def term_formula(literals: Sequence[int]) -> Formula:
    """Conjunction of literals (a *term*); empty sequence gives TRUE."""
    if not literals:
        return TRUE
    return And(*(Lit(lit) for lit in literals))


def clause_formula(literals: Sequence[int]) -> Formula:
    """Disjunction of literals (a *clause*); empty sequence gives FALSE."""
    if not literals:
        return FALSE
    return Or(*(Lit(lit) for lit in literals))


def assignment_to_term(assignment: Dict[int, bool]) -> Tuple[int, ...]:
    """Convert an assignment dict into a sorted tuple of literals."""
    return tuple(v if value else -v
                 for v, value in sorted(assignment.items()))
