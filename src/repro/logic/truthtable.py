"""Truth-table utilities shared by tests and brute-force oracles."""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from .formula import Formula, iter_assignments

__all__ = ["truth_table", "functions_equal", "table_of_formula",
           "assignment_from_bits"]

BoolFunc = Callable[[Dict[int, bool]], bool]


def assignment_from_bits(variables: Sequence[int],
                         bits: int) -> Dict[int, bool]:
    """Assignment where variable ``variables[i]`` gets bit ``i`` of ``bits``."""
    return {v: bool((bits >> i) & 1) for i, v in enumerate(variables)}


def truth_table(func: BoolFunc, variables: Sequence[int]
                ) -> List[Tuple[Dict[int, bool], bool]]:
    """Full (assignment, value) table in lexicographic assignment order."""
    return [(assignment, func(assignment))
            for assignment in iter_assignments(variables)]


def table_of_formula(formula: Formula,
                     variables: Sequence[int] | None = None
                     ) -> List[Tuple[Dict[int, bool], bool]]:
    if variables is None:
        variables = sorted(formula.variables())
    return truth_table(formula.evaluate, variables)


def functions_equal(f: BoolFunc, g: BoolFunc,
                    variables: Sequence[int]) -> bool:
    """Exhaustive equality check of two Boolean functions."""
    return all(f(a) == g(a) for a in iter_assignments(variables))
