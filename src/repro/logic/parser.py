"""Infix parser for propositional formulas.

Grammar (precedence from loosest to tightest)::

    iff     := implies ( '<->' implies )*
    implies := or ( '->' or )*          (right associative)
    or      := and ( ('|' | 'or') and )*
    and     := unary ( ('&' | 'and') unary )*
    unary   := ('~' | '!' | 'not') unary | atom
    atom    := identifier | 'true' | 'false' | '(' iff ')'

Identifiers are mapped to integer variables through a :class:`VarMap`,
so several formulas parsed against the same map share a namespace.

Example
-------
>>> from repro.logic.parser import parse, VarMap
>>> vm = VarMap()
>>> f = parse("(P | L) & (A -> P) & (K -> (A | L))", vm)
>>> sorted(vm.names())
['A', 'K', 'L', 'P']
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List

from .formula import (And, FALSE, Formula, Iff, Implies, Lit, Not, Or, TRUE)

__all__ = ["VarMap", "parse", "ParseError"]


class ParseError(ValueError):
    """Raised on malformed formula text."""


class VarMap:
    """A bidirectional mapping between variable names and integers.

    Integers are assigned sequentially from 1 in first-seen order.
    """

    def __init__(self):
        self._by_name: Dict[str, int] = {}
        self._by_index: Dict[int, str] = {}

    def index(self, name: str) -> int:
        """The integer for ``name``, allocating one if new."""
        if name not in self._by_name:
            index = len(self._by_name) + 1
            self._by_name[name] = index
            self._by_index[index] = name
        return self._by_name[name]

    def name(self, index: int) -> str:
        """The name for variable ``index`` (KeyError if unknown)."""
        return self._by_index[index]

    def names(self) -> List[str]:
        return list(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def literal(self, name: str, positive: bool = True) -> Lit:
        """The literal for ``name`` (negative literal if not positive)."""
        index = self.index(name)
        return Lit(index if positive else -index)

    def assignment(self, **values: bool) -> Dict[int, bool]:
        """Build an integer-keyed assignment from name keywords."""
        return {self.index(name): bool(v) for name, v in values.items()}


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<iff><->)|(?P<implies>->)"
    r"|(?P<and>&|\band\b|∧)|(?P<or>\||\bor\b|∨)|(?P<not>~|!|\bnot\b|¬)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*))")


def _tokenize(text: str) -> Iterator[tuple[str, str]]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remaining = text[pos:].strip()
            if not remaining:
                return
            raise ParseError(f"unexpected input at: {remaining[:20]!r}")
        pos = match.end()
        kind = match.lastgroup
        if kind is None:
            return
        yield kind, match.group(kind)
    return


class _Parser:
    def __init__(self, text: str, varmap: VarMap):
        self.tokens = list(_tokenize(text))
        self.pos = 0
        self.varmap = varmap

    def peek(self) -> tuple[str, str] | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return token

    def expect(self, kind: str) -> None:
        token = self.next()
        if token[0] != kind:
            raise ParseError(f"expected {kind}, got {token[1]!r}")

    def parse(self) -> Formula:
        formula = self.iff()
        if self.peek() is not None:
            raise ParseError(f"trailing input: {self.peek()[1]!r}")
        return formula

    def iff(self) -> Formula:
        left = self.implies()
        while self.peek() is not None and self.peek()[0] == "iff":
            self.next()
            left = Iff(left, self.implies())
        return left

    def implies(self) -> Formula:
        left = self.disjunction()
        if self.peek() is not None and self.peek()[0] == "implies":
            self.next()
            return Implies(left, self.implies())
        return left

    def disjunction(self) -> Formula:
        parts = [self.conjunction()]
        while self.peek() is not None and self.peek()[0] == "or":
            self.next()
            parts.append(self.conjunction())
        return parts[0] if len(parts) == 1 else Or(*parts)

    def conjunction(self) -> Formula:
        parts = [self.unary()]
        while self.peek() is not None and self.peek()[0] == "and":
            self.next()
            parts.append(self.unary())
        return parts[0] if len(parts) == 1 else And(*parts)

    def unary(self) -> Formula:
        token = self.peek()
        if token is not None and token[0] == "not":
            self.next()
            return Not(self.unary())
        return self.atom()

    def atom(self) -> Formula:
        kind, value = self.next()
        if kind == "lparen":
            inner = self.iff()
            self.expect("rparen")
            return inner
        if kind == "name":
            lowered = value.lower()
            if lowered == "true":
                return TRUE
            if lowered == "false":
                return FALSE
            return Lit(self.varmap.index(value))
        raise ParseError(f"unexpected token {value!r}")


def parse(text: str, varmap: VarMap | None = None) -> Formula:
    """Parse ``text`` into a :class:`Formula`.

    A fresh :class:`VarMap` is created when none is supplied (pass one in
    to control or share the variable numbering).
    """
    if varmap is None:
        varmap = VarMap()
    return _Parser(text, varmap).parse()
