"""Propositional logic: formulas, CNF, parsing, prime implicants."""

from .formula import (And, Constant, FALSE, Formula, Iff, Implies, Lit, Not,
                      Or, TRUE, iter_assignments, term_formula,
                      clause_formula, assignment_to_term)
from .cnf import Cnf, at_least_one, at_most_one, exactly_one
from .parser import ParseError, VarMap, parse
from .primes import (prime_implicants, prime_implicants_of_formula,
                     prime_implicates_of_formula, is_implicant,
                     term_subsumes)
from .tseitin import to_cnf, tseitin
from .generators import (pair_biconditionals, parity_chain, pigeonhole,
                         random_kcnf)
from .truthtable import (assignment_from_bits, functions_equal, truth_table,
                         table_of_formula)

__all__ = ["pair_biconditionals", "parity_chain", "pigeonhole",
           "random_kcnf",
    
    "And", "Constant", "FALSE", "Formula", "Iff", "Implies", "Lit", "Not",
    "Or", "TRUE", "iter_assignments", "term_formula", "clause_formula",
    "assignment_to_term",
    "Cnf", "at_least_one", "at_most_one", "exactly_one",
    "ParseError", "VarMap", "parse",
    "prime_implicants", "prime_implicants_of_formula",
    "prime_implicates_of_formula", "is_implicant", "term_subsumes",
    "to_cnf", "tseitin",
    "assignment_from_bits", "functions_equal", "truth_table",
    "table_of_formula",
]
