"""Conversions from formulas to CNF.

Two routes are provided:

* :func:`to_cnf` — equivalence-preserving conversion by NNF + distribution.
  Exponential in the worst case; intended for modelling-scale formulas.
* :func:`tseitin` — the classical Tseitin transformation.  Linear size,
  equisatisfiable, and *model-count preserving over the original
  variables* because each auxiliary variable is functionally determined.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .cnf import Cnf
from .formula import (And, Constant, Formula, Lit, Or)

__all__ = ["to_cnf", "tseitin"]


def to_cnf(formula: Formula, num_vars: int | None = None) -> Cnf:
    """Equivalence-preserving CNF by NNF conversion and distribution.

    The result mentions exactly the variables of ``formula`` (pass
    ``num_vars`` to widen the variable range for counting purposes).
    """
    nnf = formula.to_nnf()
    clauses = _distribute(nnf)
    simplified = _simplify_clauses(clauses)
    if simplified is None:  # formula is valid
        clause_list: List[Tuple[int, ...]] = []
    else:
        clause_list = simplified
    if num_vars is None:
        num_vars = max((v for v in formula.variables()), default=0)
    if simplified is not None and any(len(c) == 0 for c in simplified):
        return Cnf([()], num_vars=num_vars)
    return Cnf(clause_list, num_vars=num_vars)


def _distribute(nnf: Formula) -> List[frozenset[int]]:
    """Clause sets for an NNF formula (may contain tautologies)."""
    if isinstance(nnf, Constant):
        return [] if nnf.value else [frozenset()]
    if isinstance(nnf, Lit):
        return [frozenset((nnf.literal,))]
    if isinstance(nnf, And):
        clauses: List[frozenset[int]] = []
        for child in nnf.children:
            clauses.extend(_distribute(child))
        return clauses
    if isinstance(nnf, Or):
        result: List[frozenset[int]] = [frozenset()]
        for child in nnf.children:
            child_clauses = _distribute(child)
            result = [acc | clause
                      for acc in result for clause in child_clauses]
        return result
    raise TypeError(f"not in NNF: {nnf!r}")


def _simplify_clauses(clauses: List[frozenset[int]]
                      ) -> List[Tuple[int, ...]] | None:
    """Drop tautologies and subsumed clauses.  None when no clauses remain."""
    kept: List[frozenset[int]] = []
    for clause in clauses:
        if any(-lit in clause for lit in clause):
            continue  # tautology
        kept.append(clause)
    # subsumption (quadratic; fine at this scale)
    minimal: List[frozenset[int]] = []
    for clause in kept:
        if any(other < clause for other in kept):
            continue
        if clause in minimal:
            continue
        minimal.append(clause)
    if not minimal and not any(len(c) == 0 for c in kept):
        if not kept:
            return None
        return None
    return [tuple(sorted(clause, key=abs)) for clause in minimal]


def tseitin(formula: Formula, num_vars: int | None = None
            ) -> Tuple[Cnf, int]:
    """Tseitin transformation.

    Returns ``(cnf, root_literal)`` where ``cnf`` defines every auxiliary
    variable by biconditional clauses and asserts the root.  The CNF's
    models restricted to the original variables are exactly the models of
    ``formula``, and each original model extends to exactly one CNF model
    (auxiliaries are functionally determined), so model counts over the
    full CNF equal model counts of ``formula`` over its variables.

    ``num_vars`` (default: the largest variable in ``formula``) reserves
    the range of original variables; auxiliaries are numbered above it
    and recorded in the returned CNF's :attr:`Cnf.aux_vars` metadata so
    downstream consumers (circuit pruning, per-variable stats) can tell
    them apart from problem variables.
    """
    if num_vars is None:
        num_vars = max(formula.variables(), default=0)
    state = _TseitinState(num_vars)
    root = state.encode(formula.to_nnf())
    clauses = state.clauses + [(root,)]
    return Cnf(clauses, num_vars=state.next_var - 1,
               aux_vars=range(num_vars + 1, state.next_var)), root


class _TseitinState:
    def __init__(self, num_vars: int):
        self.next_var = num_vars + 1
        self.clauses: List[Tuple[int, ...]] = []
        self.cache: Dict[Formula, int] = {}

    def fresh(self) -> int:
        var = self.next_var
        self.next_var += 1
        return var

    def encode(self, nnf: Formula) -> int:
        """Return a literal equivalent to ``nnf`` under the side clauses."""
        if isinstance(nnf, Lit):
            return nnf.literal
        if isinstance(nnf, Constant):
            # encode constants with a fresh, pinned variable
            var = self.fresh()
            self.clauses.append((var,) if nnf.value else (-var,))
            return var if nnf.value else var  # literal "var" pinned to value
        if nnf in self.cache:
            return self.cache[nnf]
        if isinstance(nnf, And):
            lits = [self.encode(child) for child in nnf.children]
            gate = self.fresh()
            for lit in lits:  # gate -> lit
                self.clauses.append((-gate, lit))
            self.clauses.append(tuple([gate] + [-lit for lit in lits]))
            self.cache[nnf] = gate
            return gate
        if isinstance(nnf, Or):
            lits = [self.encode(child) for child in nnf.children]
            gate = self.fresh()
            for lit in lits:  # lit -> gate
                self.clauses.append((-lit, gate))
            self.clauses.append(tuple([-gate] + lits))
            self.cache[nnf] = gate
            return gate
        raise TypeError(f"not in NNF: {nnf!r}")
