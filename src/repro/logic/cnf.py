"""Conjunctive normal form with DIMACS-style integer literals.

A :class:`Cnf` is a conjunction of clauses; each clause is a tuple of
non-zero integer literals.  This is the exchange format between the
modelling layer (:mod:`repro.logic.formula`), the SAT/counting engines
(:mod:`repro.sat`) and the knowledge compilers (:mod:`repro.compile`,
:mod:`repro.sdd`).
"""

from __future__ import annotations

import io
import itertools
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from .formula import Formula, clause_formula, And, TRUE, iter_assignments

__all__ = ["Cnf", "exactly_one", "at_most_one", "at_least_one"]

Clause = Tuple[int, ...]


class Cnf:
    """An immutable CNF formula.

    Parameters
    ----------
    clauses:
        Iterable of clauses; each clause an iterable of non-zero ints.
    num_vars:
        Highest variable index.  Defaults to the largest variable that
        occurs in the clauses; pass explicitly when trailing variables
        do not occur (they then act as unconstrained don't-cares).
    aux_vars:
        Variables introduced by an encoding (e.g. the Tseitin
        transform) rather than present in the source problem.  They
        are functionally determined by the original variables, which
        is what licenses Tseitin-aware circuit pruning downstream.
    """

    __slots__ = ("clauses", "num_vars", "aux_vars")

    def __init__(self, clauses: Iterable[Iterable[int]],
                 num_vars: int | None = None,
                 aux_vars: Iterable[int] = ()):
        normalized: List[Clause] = []
        max_var = 0
        for clause in clauses:
            clause = tuple(clause)
            for lit in clause:
                if not isinstance(lit, int) or lit == 0:
                    raise ValueError(f"bad literal {lit!r}")
                max_var = max(max_var, abs(lit))
            normalized.append(clause)
        if num_vars is None:
            num_vars = max_var
        elif num_vars < max_var:
            raise ValueError("num_vars smaller than largest variable used")
        aux = frozenset(int(v) for v in aux_vars)
        if any(v < 1 or v > num_vars for v in aux):
            raise ValueError("aux_vars outside 1..num_vars")
        object.__setattr__(self, "clauses", tuple(normalized))
        object.__setattr__(self, "num_vars", num_vars)
        object.__setattr__(self, "aux_vars", aux)

    def __setattr__(self, *args):
        raise AttributeError("Cnf objects are immutable")

    # -- basic views ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __eq__(self, other) -> bool:
        return (isinstance(other, Cnf) and self.clauses == other.clauses
                and self.num_vars == other.num_vars
                and self.aux_vars == other.aux_vars)

    def __hash__(self) -> int:
        return hash((self.clauses, self.num_vars, self.aux_vars))

    def __repr__(self) -> str:
        return f"Cnf({len(self.clauses)} clauses, {self.num_vars} vars)"

    def variables(self) -> frozenset[int]:
        """Variables that actually occur in some clause."""
        return frozenset(abs(lit) for clause in self.clauses
                         for lit in clause)

    def original_vars(self) -> frozenset[int]:
        """Problem (non-auxiliary) variables in 1..num_vars."""
        return frozenset(range(1, self.num_vars + 1)) - self.aux_vars

    # -- semantics -----------------------------------------------------------
    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """True iff every clause has a satisfied literal."""
        for clause in self.clauses:
            if not any(self._lit_value(lit, assignment) for lit in clause):
                return False
        return True

    @staticmethod
    def _lit_value(lit: int, assignment: Dict[int, bool]) -> bool:
        value = assignment[abs(lit)]
        return value if lit > 0 else not value

    def models(self) -> Iterator[Dict[int, bool]]:
        """Enumerate satisfying assignments over vars 1..num_vars."""
        for assignment in iter_assignments(range(1, self.num_vars + 1)):
            if self.evaluate(assignment):
                yield assignment

    def model_count(self) -> int:
        """Count models by brute-force enumeration (tests / small inputs)."""
        return sum(1 for _ in self.models())

    # -- operations ----------------------------------------------------------
    def condition(self, assignment: Dict[int, bool]) -> "Cnf":
        """Assert variable values: drop satisfied clauses, shrink others.

        Raises no error on an empty clause; the result simply contains
        the empty clause (i.e. is unsatisfiable).
        """
        new_clauses: List[Clause] = []
        for clause in self.clauses:
            satisfied = False
            kept: List[int] = []
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if self._lit_value(lit, assignment):
                        satisfied = True
                        break
                else:
                    kept.append(lit)
            if not satisfied:
                new_clauses.append(tuple(kept))
        return Cnf(new_clauses, num_vars=self.num_vars,
                   aux_vars=self.aux_vars)

    def extend(self, clauses: Iterable[Iterable[int]],
               num_vars: int | None = None) -> "Cnf":
        """A new CNF with extra clauses appended."""
        extra = [tuple(clause) for clause in clauses]
        max_var = max((abs(lit) for clause in extra for lit in clause),
                      default=0)
        if num_vars is None:
            num_vars = self.num_vars
        return Cnf(itertools.chain(self.clauses, extra),
                   num_vars=max(num_vars, self.num_vars, max_var),
                   aux_vars=self.aux_vars)

    def to_formula(self) -> Formula:
        """Convert to a :class:`Formula` AST."""
        if not self.clauses:
            return TRUE
        return And(*(clause_formula(clause) for clause in self.clauses))

    # -- DIMACS i/o ------------------------------------------------------------
    def to_dimacs(self) -> str:
        """Serialise in DIMACS cnf format.

        Auxiliary-variable metadata survives the round trip via the
        standard projected-counting header ``c p show V1 ... 0``
        listing the *original* variables (everything unlisted is
        auxiliary).
        """
        out = io.StringIO()
        out.write(f"p cnf {self.num_vars} {len(self.clauses)}\n")
        if self.aux_vars:
            shown = " ".join(map(str, sorted(self.original_vars())))
            out.write(f"c p show {shown} 0\n".replace("  ", " "))
        for clause in self.clauses:
            out.write(" ".join(map(str, clause)) + " 0\n")
        return out.getvalue()

    @classmethod
    def from_dimacs(cls, text: str) -> "Cnf":
        """Parse DIMACS cnf format (comments and blank lines allowed)."""
        num_vars = None
        shown: List[int] | None = None
        clauses: List[Clause] = []
        current: List[int] = []
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("c"):
                parts = line.split()
                if parts[:3] == ["c", "p", "show"]:
                    shown = [int(tok) for tok in parts[3:] if tok != "0"]
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"bad problem line: {line!r}")
                num_vars = int(parts[2])
                continue
            for token in line.split():
                lit = int(token)
                if lit == 0:
                    clauses.append(tuple(current))
                    current = []
                else:
                    current.append(lit)
        if current:
            clauses.append(tuple(current))
        if num_vars is None:
            raise ValueError("missing DIMACS problem line")
        aux: Iterable[int] = ()
        if shown is not None:
            aux = set(range(1, num_vars + 1)) - set(shown)
        return cls(clauses, num_vars=num_vars, aux_vars=aux)


# -- cardinality helpers (pairwise encodings; fine at library scale) ----------

def at_least_one(variables: Sequence[int]) -> List[Clause]:
    """Clause set asserting at least one of ``variables`` is true."""
    return [tuple(variables)]


def at_most_one(variables: Sequence[int]) -> List[Clause]:
    """Pairwise at-most-one encoding."""
    return [(-a, -b) for a, b in itertools.combinations(variables, 2)]


def exactly_one(variables: Sequence[int]) -> List[Clause]:
    """Exactly-one-of encoding (at-least-one plus pairwise at-most-one)."""
    return at_least_one(variables) + at_most_one(variables)
