"""Certified circuit-optimization passes over the flattened IR.

The paper's tractability story makes every query linear in circuit
size, so each deleted node is speed for free across *all* queries.
This module is the sanctioned home for circuit rewrites: a
compiler-style pass manager whose every rewrite must re-certify
through :mod:`repro.analyze` before it may replace the original.

Pass catalog
------------

``const-fold``
    Constant propagation and dead-node elimination: ⊥ absorbs
    conjunctions, ⊤ disjunctions, single-child gates collapse, and
    nodes unreachable from the root are dropped.
``cse``
    Structural common-subexpression elimination: hash-consing merges
    structurally identical nodes (duplicate subcircuits produced by
    textual ``.nnf`` round trips or by earlier passes).
``tseitin-prune``
    Existentially quantify the auxiliary variables recorded by the
    Tseitin transform (Derkinderen 2024): each auxiliary literal is
    replaced by ⊤ and the circuit re-simplified.  Because auxiliaries
    are functionally determined by the problem variables, the model
    count over the original variables is unchanged — but a caller that
    still widens over the full variable range would overcount by
    ``2^k`` (``k`` forgotten variables), so the result records the
    forgotten set and query layers exclude it from widening.
``desmooth``
    Strip the ``(v ∨ ¬v)`` padding gates that smoothing added; the
    kernel's or-gap scaling keeps counts and WMC exact on the
    de-smoothed circuit, which is strictly smaller for count-only
    workloads.
``smooth``
    Re-smoothing (migrated here from ``repro.analyze.repair``, which
    now delegates): pad or-gate children with tautologies for missing
    sibling variables.  The one pass allowed to *grow* the circuit.

The certification gate
----------------------

A candidate replaces the input only if

1. it claims no property its twin lost (decomposability and
   determinism must be preserved; smoothness may be dropped only by
   ``desmooth``),
2. :func:`repro.analyze.certify` falsifies none of its claimed flags,
3. exact model counts agree over the original variable universe,
   with the Tseitin ``2^k`` correction applied and cross-checked,
4. weighted model counts with seeded random weights agree (forgotten
   auxiliaries weighted 1.0), and
5. seeded random cross-evaluation finds no Boolean disagreement
   (implication only, for pruned circuits).

Budgets degrade, never error: when a :class:`~repro.limits.budget.
Budget` expires mid-pipeline the best circuit certified *so far* is
returned.
"""

from __future__ import annotations

import hashlib
import random
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, FrozenSet, Iterable, List,
                    Optional, Sequence, Tuple, Union)

from ..limits.budget import Budget, BudgetExceeded
from .core import (CircuitIR, IrBuilder, FLAG_DECOMPOSABLE,
                   FLAG_DETERMINISTIC, FLAG_SMOOTH, FLAG_STRUCTURED,
                   KIND_AND, KIND_FALSE, KIND_LIT, KIND_OR, KIND_PARAM,
                   KIND_TRUE)
from .lower import structural_flags

__all__ = ["PassContext", "PassReport", "PipelineResult", "PassManager",
           "optimize_ir", "parse_passes", "pipeline_signature",
           "certified_equivalent", "const_fold_ir", "cse_ir",
           "forget_vars", "desmooth_ir", "smooth_ir",
           "PASS_NAMES", "DEFAULT_PASSES", "COUNT_ONLY_PASSES"]

#: freestanding property bits (those :func:`repro.analyze.certify`
#: can check without a vtree)
_FREESTANDING = FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC | FLAG_SMOOTH

#: passes applied by default when no explicit pipeline is given
DEFAULT_PASSES: Tuple[str, ...] = ("const-fold", "cse", "tseitin-prune")

#: pipeline for count-only workloads (marginals/derivatives callers
#: should re-smooth afterwards)
COUNT_ONLY_PASSES: Tuple[str, ...] = DEFAULT_PASSES + ("desmooth",)

#: passes allowed to grow the circuit (their value is the property,
#: not the size)
_ALLOW_GROWTH = frozenset(("smooth",))


# -- pure rewrites ------------------------------------------------------------

def _finish_rewrite(builder: IrBuilder, root: int,
                    source: CircuitIR) -> CircuitIR:
    """Freeze a rebuilt circuit, recomputing the structural flags and
    carrying determinism from the source (the gate re-checks it).
    STRUCTURED survives only a structurally identical rebuild."""
    builder.num_params = max(builder.num_params, source.num_params)
    out = builder.finish(root, intern=False)
    flags = structural_flags(out)
    flags |= source.flags & FLAG_DETERMINISTIC
    if (out.kinds == source.kinds and out.lits == source.lits
            and out.child_ids == source.child_ids):
        flags |= source.flags & (FLAG_STRUCTURED | _FREESTANDING)
    out.flags = flags
    return out.intern()


def const_fold_ir(ir: CircuitIR) -> CircuitIR:
    """Constant/dead-node elimination via the builder simplifications."""
    builder = IrBuilder()
    mapped: List[int] = [0] * ir.n
    for i in range(ir.n):
        kind = ir.kinds[i]
        if kind == KIND_LIT:
            mapped[i] = builder.literal(ir.lits[i])
        elif kind == KIND_PARAM:
            mapped[i] = builder.param(ir.lits[i])
        elif kind == KIND_TRUE:
            mapped[i] = builder.true()
        elif kind == KIND_FALSE:
            mapped[i] = builder.false()
        elif kind == KIND_AND:
            mapped[i] = builder.conjoin(
                mapped[c] for c in ir.children(i))
        else:
            mapped[i] = builder.disjoin(
                mapped[c] for c in ir.children(i))
    return _finish_rewrite(builder, mapped[ir.root], ir)


def cse_ir(ir: CircuitIR) -> CircuitIR:
    """Structural dedup: hash-consing merges identical nodes.  Gates
    are rebuilt raw — child *lists* are never deduplicated, because a
    deterministic or-gate sums its children and an and-gate multiplies
    them; only whole identical nodes collapse."""
    builder = IrBuilder()
    mapped: List[int] = [0] * ir.n
    for i in range(ir.n):
        kind = ir.kinds[i]
        if kind == KIND_LIT:
            mapped[i] = builder.literal(ir.lits[i])
        elif kind == KIND_PARAM:
            mapped[i] = builder.param(ir.lits[i])
        elif kind == KIND_TRUE:
            mapped[i] = builder.true()
        elif kind == KIND_FALSE:
            mapped[i] = builder.false()
        elif kind == KIND_AND:
            mapped[i] = builder.raw_and(
                tuple(mapped[c] for c in ir.children(i)))
        else:
            mapped[i] = builder.raw_or(
                tuple(mapped[c] for c in ir.children(i)))
    return _finish_rewrite(builder, mapped[ir.root], ir)


def forget_vars(ir: CircuitIR, variables: Iterable[int]
                ) -> Tuple[CircuitIR, FrozenSet[int]]:
    """Existentially quantify ``variables`` out of a Decision-DNNF.

    Every literal over a target variable becomes ⊤ and the circuit is
    re-simplified.  Sound as a *count-preserving* rewrite only when
    the targets are functionally determined (Tseitin auxiliaries) —
    which is exactly what the certification gate checks.  Returns the
    rewritten circuit and the variables actually forgotten.
    """
    targets = frozenset(int(v) for v in variables) & ir.variables()
    if not targets:
        return ir, frozenset()
    builder = IrBuilder()
    mapped: List[int] = [0] * ir.n
    for i in range(ir.n):
        kind = ir.kinds[i]
        if kind == KIND_LIT:
            if abs(ir.lits[i]) in targets:
                mapped[i] = builder.true()
            else:
                mapped[i] = builder.literal(ir.lits[i])
        elif kind == KIND_PARAM:
            mapped[i] = builder.param(ir.lits[i])
        elif kind == KIND_TRUE:
            mapped[i] = builder.true()
        elif kind == KIND_FALSE:
            mapped[i] = builder.false()
        elif kind == KIND_AND:
            mapped[i] = builder.conjoin(
                mapped[c] for c in ir.children(i))
        else:
            mapped[i] = builder.disjoin(
                mapped[c] for c in ir.children(i))
    return _finish_rewrite(builder, mapped[ir.root], ir), targets


def _tautology_nodes(ir: CircuitIR) -> List[bool]:
    """Mark or-gates of the exact smoothing-padding shape ``v ∨ ¬v``."""
    taut = [False] * ir.n
    for i in range(ir.n):
        if ir.kinds[i] != KIND_OR:
            continue
        kids = ir.children(i)
        if len(kids) != 2:
            continue
        a, b = kids
        if (ir.kinds[a] == KIND_LIT and ir.kinds[b] == KIND_LIT
                and ir.lits[a] == -ir.lits[b]):
            taut[i] = True
    return taut


def desmooth_ir(ir: CircuitIR) -> CircuitIR:
    """Drop smoothing padding: and-gate children of the shape
    ``(v ∨ ¬v)`` are removed (the kernel's or-gap scaling keeps counts
    and WMC exact on the smaller, non-smooth circuit)."""
    taut = _tautology_nodes(ir)
    if not any(taut):
        return ir
    builder = IrBuilder()
    mapped: List[int] = [0] * ir.n
    for i in range(ir.n):
        kind = ir.kinds[i]
        if kind == KIND_LIT:
            mapped[i] = builder.literal(ir.lits[i])
        elif kind == KIND_PARAM:
            mapped[i] = builder.param(ir.lits[i])
        elif kind == KIND_TRUE:
            mapped[i] = builder.true()
        elif kind == KIND_FALSE:
            mapped[i] = builder.false()
        elif kind == KIND_AND:
            mapped[i] = builder.conjoin(
                mapped[c] for c in ir.children(i) if not taut[c])
        else:
            mapped[i] = builder.disjoin(
                mapped[c] for c in ir.children(i))
    return _finish_rewrite(builder, mapped[ir.root], ir)


def smooth_ir(ir: CircuitIR) -> CircuitIR:
    """A smooth IR with the same models (and parameters) as ``ir``.

    Each or-gate child missing sibling variables is conjoined with a
    ``(v ∨ ¬v)`` gate per missing variable (Darwiche & Marquis 2002).
    The result carries the original flags plus SMOOTH, minus
    STRUCTURED.  This is the engine behind the ``repair`` gate mode;
    :func:`repro.analyze.repair.smooth_ir` delegates here.
    """
    if ir.has_flag(FLAG_SMOOTH):
        return ir
    varsets = ir.varsets()
    builder = IrBuilder()
    mapped: List[int] = [0] * ir.n
    tautologies: Dict[int, int] = {}

    def tautology(var: int) -> int:
        gate = tautologies.get(var)
        if gate is None:
            gate = builder.raw_or(
                (builder.literal(var), builder.literal(-var)))
            tautologies[var] = gate
        return gate

    for i in range(ir.n):
        kind = ir.kinds[i]
        if kind == KIND_LIT:
            mapped[i] = builder.literal(ir.lits[i])
        elif kind == KIND_PARAM:
            mapped[i] = builder.param(ir.lits[i])
        elif kind == KIND_TRUE:
            mapped[i] = builder.true()
        elif kind == KIND_AND:
            mapped[i] = builder.raw_and(
                tuple(mapped[c] for c in ir.children(i)))
        elif kind == KIND_OR:
            gate_vars = varsets[i]
            padded: List[int] = []
            for c in ir.children(i):
                missing = gate_vars - varsets[c]
                if missing:
                    padded.append(builder.raw_and(
                        (mapped[c],) + tuple(
                            tautology(v) for v in sorted(missing))))
                else:
                    padded.append(mapped[c])
            mapped[i] = builder.raw_or(tuple(padded))
        else:  # KIND_FALSE
            mapped[i] = builder.false()

    flags = (ir.flags | FLAG_SMOOTH) & ~FLAG_STRUCTURED
    return builder.finish(mapped[ir.root], flags=flags)


# -- the certification gate ---------------------------------------------------

def certified_equivalent(original: CircuitIR, candidate: CircuitIR, *,
                         forgotten: FrozenSet[int] = frozenset(),
                         seed: int = 0, samples: int = 8,
                         max_vars: Optional[int] = None
                         ) -> Optional[str]:
    """``None`` when ``candidate`` is a certified twin of ``original``
    (up to existential quantification of ``forgotten``); otherwise a
    human-readable rejection reason.  Never raises on disagreement —
    the caller keeps the original."""
    from ..analyze.certify import certify
    from ..analyze.gate import gate_scope
    from ..analyze.verify import DEFAULT_MAX_VARS
    from .kernel import ir_kernel
    budget_vars = DEFAULT_MAX_VARS if max_vars is None else max_vars

    orig_vars = original.variables()
    cand_vars = candidate.variables()
    if not cand_vars <= orig_vars:
        return "rewrite introduced new variables"
    forgotten = forgotten & orig_vars

    # 1. decomposability / determinism must survive the rewrite;
    #    smoothness may be dropped (de-smoothing), never invented ---
    required = original.flags & (FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC)
    if (candidate.flags & required) != required:
        return "rewrite lost a certified property flag"

    # 2. the claimed flags must re-certify (no falsification) --------
    claim = candidate.flags & _FREESTANDING
    cert = certify(candidate, flags=claim, max_vars=budget_vars)
    if cert.falsified_mask & claim:
        bad = ", ".join(w.format() for w in cert.witnesses(claim))
        return f"certification falsified claimed flags: {bad}"

    with gate_scope("trust"):
        k_orig = ir_kernel(original)
        k_cand = ir_kernel(candidate)

        # 3. exact model-count agreement over the original universe.
        # The candidate counts over its own (possibly smaller)
        # variable set; widening re-adds dropped *unconstrained*
        # variables but NOT the forgotten auxiliaries — that exclusion
        # is the 2^k Tseitin correction, cross-checked here: widening
        # naively over every dropped variable must overcount by
        # exactly 2^len(forgotten).
        count_orig = k_orig.model_count()
        count_cand = k_cand.model_count()
        dropped = orig_vars - cand_vars
        widen = len(dropped - forgotten)
        corrected = count_cand << widen
        if corrected != count_orig:
            return (f"model count mismatch: {corrected} != "
                    f"{count_orig}")
        naive = count_cand << len(dropped)
        if naive != corrected << len(forgotten & dropped):
            return "2^k Tseitin correction cross-check failed"

        # 4. weighted model counts with seeded random weights
        # (forgotten auxiliaries weighted 1.0 so the functionally
        # determined literal contributes a unit factor) --------------
        rng = random.Random(seed)
        weights: Dict[int, float] = {}
        for v in sorted(orig_vars):
            if v in forgotten:
                weights[v] = weights[-v] = 1.0
            else:
                weights[v] = 0.25 + rng.random()
                weights[-v] = 0.25 + rng.random()
        wmc_orig = k_orig.wmc(weights)
        wmc_cand = k_cand.wmc(weights)
        for v in dropped - forgotten:
            wmc_cand *= weights[v] + weights[-v]
        scale = max(abs(wmc_orig), abs(wmc_cand), 1.0)
        if abs(wmc_orig - wmc_cand) > 1e-6 * scale:
            return (f"weighted count mismatch: {wmc_cand} != "
                    f"{wmc_orig}")

        # 5. randomized cross-evaluation backstop --------------------
        for _ in range(max(0, samples)):
            sigma = {v: rng.random() < 0.5 for v in orig_vars}
            value_orig = k_orig.evaluate(sigma)
            value_cand = k_cand.evaluate(sigma)
            if forgotten:
                # only the implication holds: a model of the original
                # projects to a model of ∃aux.original
                if value_orig and not value_cand:
                    return "cross-evaluation mismatch under forgetting"
            elif value_orig != value_cand:
                return "cross-evaluation mismatch"
    return None


# -- the pass manager ---------------------------------------------------------

@dataclass
class PassContext:
    """Per-pipeline state a pass may consult."""

    aux_vars: FrozenSet[int] = frozenset()
    seed: int = 0
    samples: int = 8
    max_vars: Optional[int] = None


PassFn = Callable[[PassContext, CircuitIR],
                  Tuple[CircuitIR, FrozenSet[int]]]


def _pass_const_fold(ctx: PassContext, ir: CircuitIR
                     ) -> Tuple[CircuitIR, FrozenSet[int]]:
    return const_fold_ir(ir), frozenset()


def _pass_cse(ctx: PassContext, ir: CircuitIR
              ) -> Tuple[CircuitIR, FrozenSet[int]]:
    return cse_ir(ir), frozenset()


def _pass_prune(ctx: PassContext, ir: CircuitIR
                ) -> Tuple[CircuitIR, FrozenSet[int]]:
    return forget_vars(ir, ctx.aux_vars)


def _pass_desmooth(ctx: PassContext, ir: CircuitIR
                   ) -> Tuple[CircuitIR, FrozenSet[int]]:
    return desmooth_ir(ir), frozenset()


def _pass_smooth(ctx: PassContext, ir: CircuitIR
                 ) -> Tuple[CircuitIR, FrozenSet[int]]:
    return smooth_ir(ir), frozenset()


PASSES: Dict[str, PassFn] = {
    "const-fold": _pass_const_fold,
    "cse": _pass_cse,
    "tseitin-prune": _pass_prune,
    "desmooth": _pass_desmooth,
    "smooth": _pass_smooth,
}

PASS_NAMES: Tuple[str, ...] = tuple(PASSES)


def parse_passes(spec: Union[str, Sequence[str], None]
                 ) -> Tuple[str, ...]:
    """Normalise a pipeline spec: ``None`` → the default pipeline, a
    comma-separated string or a sequence otherwise.  Unknown names
    raise ``ValueError``."""
    if spec is None:
        return DEFAULT_PASSES
    if isinstance(spec, str):
        names = tuple(p.strip() for p in spec.split(",") if p.strip())
    else:
        names = tuple(spec)
    if not names:
        return DEFAULT_PASSES
    for name in names:
        if name not in PASSES:
            raise ValueError(
                f"unknown pass {name!r}; available: "
                f"{', '.join(PASS_NAMES)}")
    return names


def pipeline_signature(passes: Sequence[str]) -> str:
    """Short content signature of a pass pipeline (store variant key)."""
    text = "|".join(passes)
    return hashlib.sha256(text.encode()).hexdigest()[:12]


@dataclass
class PassReport:
    """What one pass did (or why it didn't)."""

    name: str
    before_nodes: int
    after_nodes: int
    status: str  # applied | no-change | not-smaller | rejected | budget
    detail: str = ""
    elapsed_s: float = 0.0

    def as_wire(self) -> Dict[str, Any]:
        return {"name": self.name, "before_nodes": self.before_nodes,
                "after_nodes": self.after_nodes, "status": self.status,
                "detail": self.detail,
                "elapsed_s": round(self.elapsed_s, 6)}


@dataclass
class PipelineResult:
    """Outcome of one pipeline run: the certified best circuit plus a
    per-pass audit trail."""

    ir: CircuitIR
    original: CircuitIR
    passes: Tuple[str, ...]
    signature: str
    forgotten: FrozenSet[int] = frozenset()
    reports: List[PassReport] = field(default_factory=list)
    budget_hit: bool = False

    @property
    def before_nodes(self) -> int:
        return self.original.n

    @property
    def after_nodes(self) -> int:
        return self.ir.n

    @property
    def changed(self) -> bool:
        return self.ir is not self.original

    @property
    def reduction(self) -> float:
        """Fraction of nodes removed (0.0 when nothing shrank)."""
        if not self.original.n:
            return 0.0
        return max(0.0, 1.0 - self.ir.n / self.original.n)

    def as_wire(self) -> Dict[str, Any]:
        return {"passes": list(self.passes),
                "signature": self.signature,
                "before_nodes": self.before_nodes,
                "after_nodes": self.after_nodes,
                "reduction": round(self.reduction, 4),
                "forgotten_vars": sorted(self.forgotten),
                "budget_hit": self.budget_hit,
                "reports": [r.as_wire() for r in self.reports]}


class PassManager:
    """Run a pipeline of certification-gated rewrites.

    Each pass produces a candidate twin; the candidate replaces the
    current circuit only if :func:`certified_equivalent` accepts it
    *and* it is strictly smaller (``smooth`` may grow).  A budget, if
    given, is charged per pass and on every kernel query inside the
    gate; expiry degrades to the best circuit certified so far.
    """

    def __init__(self, passes: Union[str, Sequence[str], None] = None,
                 *, aux_vars: Iterable[int] = (), seed: int = 0,
                 samples: int = 8,
                 max_vars: Optional[int] = None) -> None:
        self.passes = parse_passes(passes)
        self.context = PassContext(
            aux_vars=frozenset(int(v) for v in aux_vars),
            seed=seed, samples=samples, max_vars=max_vars)

    @property
    def signature(self) -> str:
        return pipeline_signature(self.passes)

    def run(self, ir: CircuitIR,
            budget: Optional[Budget] = None) -> PipelineResult:
        result = PipelineResult(ir=ir, original=ir, passes=self.passes,
                                signature=self.signature)
        if ir.num_params:
            result.reports.append(PassReport(
                "pipeline", ir.n, ir.n, "no-change",
                "parameterised circuits are not optimised"))
            return result
        if not ir.n:
            return result
        current = ir
        forgotten: FrozenSet[int] = frozenset()
        for name in self.passes:
            started = time.perf_counter()
            report = PassReport(name, current.n, current.n, "no-change")
            try:
                if budget is not None:
                    budget.tick(max(1, current.n))
                with budget.scope() if budget is not None \
                        else nullcontext():
                    candidate, newly = PASSES[name](
                        self.context, current)
                    if candidate is current or candidate == current:
                        report.status = "no-change"
                    elif (candidate.n >= current.n
                            and name not in _ALLOW_GROWTH):
                        report.status = "not-smaller"
                        report.after_nodes = candidate.n
                    else:
                        reason = certified_equivalent(
                            current, candidate,
                            forgotten=newly,
                            seed=self.context.seed,
                            samples=self.context.samples,
                            max_vars=self.context.max_vars)
                        if reason is None:
                            current = candidate
                            forgotten = forgotten | newly
                            report.status = "applied"
                            report.after_nodes = candidate.n
                        else:
                            report.status = "rejected"
                            report.detail = reason
            except BudgetExceeded as error:
                report.status = "budget"
                report.detail = str(error)
                result.budget_hit = True
                report.elapsed_s = time.perf_counter() - started
                result.reports.append(report)
                break
            report.elapsed_s = time.perf_counter() - started
            result.reports.append(report)
        result.ir = current
        result.forgotten = forgotten
        return result


def optimize_ir(ir: CircuitIR,
                passes: Union[str, Sequence[str], None] = None, *,
                aux_vars: Iterable[int] = (),
                budget: Optional[Budget] = None, seed: int = 0,
                samples: int = 8,
                max_vars: Optional[int] = None) -> PipelineResult:
    """One-shot convenience: build a :class:`PassManager` and run it."""
    manager = PassManager(passes, aux_vars=aux_vars, seed=seed,
                          samples=samples, max_vars=max_vars)
    return manager.run(ir, budget=budget)
