"""The flattened circuit IR: immutable CSR arrays plus property flags.

A :class:`CircuitIR` holds one circuit as four parallel arrays in a
fixed topological order (children strictly before parents, root last):

* ``kinds[i]`` — a small int code (literal / ⊤ / ⊥ / and / or / param);
* ``lits[i]`` — the DIMACS literal for literal nodes, the parameter
  index for param nodes, 0 otherwise;
* ``offsets`` / ``child_ids`` — CSR child lists: the children of node
  ``i`` are ``child_ids[offsets[i]:offsets[i+1]]``, each a node index
  smaller than ``i``.

The header carries the property flags the paper's tractability story
is built on (decomposable / deterministic / smooth / structured),
computed once at lowering time, plus the parameter count for weighted
(PSDD-style) circuits.  Instances are immutable and hashable;
:meth:`CircuitIR.intern` deduplicates structurally identical IRs so
repeated lowerings of the same circuit share one object (and hence one
:class:`~repro.ir.kernel.IrKernel`).

``canonical_text`` / ``digest`` give a canonical serialization and its
SHA-256 — the content address used by :mod:`repro.ir.store`.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["CircuitIR", "IrBuilder", "KIND_LIT", "KIND_TRUE",
           "KIND_FALSE", "KIND_AND", "KIND_OR", "KIND_PARAM",
           "FLAG_DECOMPOSABLE", "FLAG_DETERMINISTIC", "FLAG_SMOOTH",
           "FLAG_STRUCTURED"]

# node kind codes (shared with repro.nnf.kernel for compatibility)
KIND_LIT = 0
KIND_TRUE = 1
KIND_FALSE = 2
KIND_AND = 3
KIND_OR = 4
#: a parameter leaf: a multiplicative weight read from a parameter
#: vector at query time (PSDD θs); ``lits[i]`` is the parameter index
KIND_PARAM = 5

_KIND_LETTER = {KIND_LIT: "L", KIND_TRUE: "T", KIND_FALSE: "F",
                KIND_AND: "A", KIND_OR: "O", KIND_PARAM: "P"}

# property flags (bitmask)
FLAG_DECOMPOSABLE = 1
FLAG_DETERMINISTIC = 2
FLAG_SMOOTH = 4
FLAG_STRUCTURED = 8

_FLAG_NAMES = ((FLAG_DECOMPOSABLE, "decomposable"),
               (FLAG_DETERMINISTIC, "deterministic"),
               (FLAG_SMOOTH, "smooth"),
               (FLAG_STRUCTURED, "structured"))

#: interning pool: canonical content key -> CircuitIR
_INTERN_POOL: Dict[Tuple, "CircuitIR"] = {}
_INTERN_LIMIT = 4096


class CircuitIR:
    """One flattened circuit.  Build with :class:`IrBuilder` or a
    family lowering from :mod:`repro.ir.lower`."""

    __slots__ = ("n", "kinds", "lits", "offsets", "child_ids", "flags",
                 "num_params", "_varsets", "_digest", "_kernel",
                 "__weakref__")

    def __init__(self, kinds: Sequence[int], lits: Sequence[int],
                 offsets: Sequence[int], child_ids: Sequence[int],
                 flags: int = 0, num_params: int = 0) -> None:
        self.n = len(kinds)
        self.kinds: Tuple[int, ...] = tuple(kinds)
        self.lits: Tuple[int, ...] = tuple(lits)
        self.offsets: Tuple[int, ...] = tuple(offsets)
        self.child_ids: Tuple[int, ...] = tuple(child_ids)
        self.flags = flags
        self.num_params = num_params
        if len(self.lits) != self.n or len(self.offsets) != self.n + 1:
            raise ValueError("inconsistent IR array lengths")
        self._varsets: Optional[List[frozenset]] = None
        self._digest: Optional[str] = None
        self._kernel = None  # the (single) IrKernel for this IR

    # -- structure -----------------------------------------------------------
    def children(self, i: int) -> Tuple[int, ...]:
        return self.child_ids[self.offsets[i]:self.offsets[i + 1]]

    def child_lists(self) -> List[Tuple[int, ...]]:
        """All child tuples, index-aligned (materialised per call)."""
        offsets, ids = self.offsets, self.child_ids
        return [ids[offsets[i]:offsets[i + 1]] for i in range(self.n)]

    @property
    def root(self) -> int:
        """The root's node index (the last node, by construction)."""
        return self.n - 1

    def node_count(self) -> int:
        return self.n

    def edge_count(self) -> int:
        return len(self.child_ids)

    def varsets(self) -> List[frozenset]:
        """Per-node mentioned-variable sets, bottom-up (cached)."""
        if self._varsets is None:
            varsets: List[frozenset] = [frozenset()] * self.n
            empty = frozenset()
            for i in range(self.n):
                kind = self.kinds[i]
                if kind == KIND_LIT:
                    varsets[i] = frozenset((abs(self.lits[i]),))
                elif kind == KIND_AND or kind == KIND_OR:
                    kids = self.children(i)
                    if kids:
                        varsets[i] = empty.union(
                            *(varsets[c] for c in kids))
            self._varsets = varsets
        return self._varsets

    def variables(self) -> frozenset:
        """Variables mentioned anywhere in the circuit."""
        if not self.n:
            return frozenset()
        return frozenset(abs(self.lits[i]) for i in range(self.n)
                         if self.kinds[i] == KIND_LIT)

    def has_flag(self, flag: int) -> bool:
        return bool(self.flags & flag)

    def flag_names(self) -> List[str]:
        return [name for bit, name in _FLAG_NAMES if self.flags & bit]

    # -- identity ------------------------------------------------------------
    def _content_key(self) -> Tuple:
        return (self.kinds, self.lits, self.offsets, self.child_ids,
                self.flags, self.num_params)

    def canonical_text(self) -> str:
        """A canonical line-based serialization (digest input).

        One line per node: a kind letter plus the literal / parameter
        index / child indices; the header records node count, flags and
        parameter count.  Two IRs have equal canonical text iff they
        are structurally identical.
        """
        lines = [f"ir {self.n} {self.flags} {self.num_params}"]
        for i in range(self.n):
            kind = self.kinds[i]
            letter = _KIND_LETTER[kind]
            if kind == KIND_LIT or kind == KIND_PARAM:
                lines.append(f"{letter} {self.lits[i]}")
            elif kind == KIND_AND or kind == KIND_OR:
                kids = " ".join(map(str, self.children(i)))
                lines.append(f"{letter} {kids}".rstrip())
            else:
                lines.append(letter)
        return "\n".join(lines) + "\n"

    def digest(self) -> str:
        """SHA-256 of the canonical text — the content address."""
        if self._digest is None:
            self._digest = hashlib.sha256(
                self.canonical_text().encode()).hexdigest()
        return self._digest

    def intern(self) -> "CircuitIR":
        """The pooled structurally-identical IR (self if first seen).

        Interning gives structural sharing across lowerings: the pooled
        instance carries the cached kernel, so two independently
        lowered but identical circuits share memoised query results.
        """
        key = self._content_key()
        pooled = _INTERN_POOL.get(key)
        if pooled is not None:
            return pooled
        if len(_INTERN_POOL) >= _INTERN_LIMIT:
            _INTERN_POOL.clear()
        _INTERN_POOL[key] = self
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CircuitIR) and \
            self._content_key() == other._content_key()

    def __hash__(self) -> int:
        return hash((self.n, self.kinds, self.child_ids))

    def __repr__(self) -> str:
        props = ",".join(self.flag_names()) or "none"
        return (f"CircuitIR({self.n} nodes, {self.edge_count()} edges, "
                f"props={props})")


class IrBuilder:
    """Incremental CircuitIR construction with hash-consing and the
    same constant simplifications as :class:`repro.nnf.node.NnfManager`
    (⊥ absorbs conjunctions, ⊤ disjunctions; units collapse), so
    family lowerings produce the IR their NNF export would.
    """

    def __init__(self) -> None:
        self._kinds: List[int] = []
        self._lits: List[int] = []
        self._children: List[Tuple[int, ...]] = []
        self._unique: Dict[Tuple, int] = {}
        self._true: Optional[int] = None
        self._false: Optional[int] = None
        self.num_params = 0

    def __len__(self) -> int:
        return len(self._kinds)

    def _make(self, kind: int, lit: int,
              children: Tuple[int, ...]) -> int:
        key = (kind, lit, children)
        idx = self._unique.get(key)
        if idx is None:
            idx = len(self._kinds)
            self._kinds.append(kind)
            self._lits.append(lit)
            self._children.append(children)
            self._unique[key] = idx
        return idx

    # -- leaves --------------------------------------------------------------
    def true(self) -> int:
        if self._true is None:
            self._true = self._make(KIND_TRUE, 0, ())
        return self._true

    def false(self) -> int:
        if self._false is None:
            self._false = self._make(KIND_FALSE, 0, ())
        return self._false

    def literal(self, literal: int) -> int:
        if literal == 0:
            raise ValueError("literal must be non-zero")
        return self._make(KIND_LIT, literal, ())

    def param(self, index: Optional[int] = None) -> int:
        """A fresh (or explicit-index) parameter leaf."""
        if index is None:
            index = self.num_params
        self.num_params = max(self.num_params, index + 1)
        return self._make(KIND_PARAM, index, ())

    # -- gates ---------------------------------------------------------------
    def conjoin(self, children: Iterable[int]) -> int:
        kept: List[int] = []
        for child in children:
            kind = self._kinds[child]
            if kind == KIND_FALSE:
                return self.false()
            if kind == KIND_TRUE:
                continue
            kept.append(child)
        if not kept:
            return self.true()
        if len(kept) == 1:
            return kept[0]
        return self._make(KIND_AND, 0, tuple(kept))

    def disjoin(self, children: Iterable[int]) -> int:
        kept: List[int] = []
        for child in children:
            kind = self._kinds[child]
            if kind == KIND_TRUE:
                return self.true()
            if kind == KIND_FALSE:
                continue
            kept.append(child)
        if not kept:
            return self.false()
        if len(kept) == 1:
            return kept[0]
        return self._make(KIND_OR, 0, tuple(kept))

    def raw_and(self, children: Tuple[int, ...]) -> int:
        """An and-gate with no simplification (serialization fidelity)."""
        return self._make(KIND_AND, 0, children)

    def raw_or(self, children: Tuple[int, ...]) -> int:
        """An or-gate with no simplification (serialization fidelity)."""
        return self._make(KIND_OR, 0, children)

    # -- finish --------------------------------------------------------------
    def finish(self, root: int, flags: int = 0,
               intern: bool = True) -> CircuitIR:
        """Freeze into a CircuitIR rooted at ``root``.

        Nodes unreachable from the root are dropped; the remaining
        nodes are renumbered in (construction-stable) topological
        order with the root last.
        """
        reachable = [False] * len(self._kinds)
        stack = [root]
        reachable[root] = True
        while stack:
            i = stack.pop()
            for c in self._children[i]:
                if not reachable[c]:
                    reachable[c] = True
                    stack.append(c)
        # construction order is already children-before-parents; keep
        # it (minus unreachable nodes), then move the root to the end
        order = [i for i in range(len(self._kinds))
                 if reachable[i] and i != root]
        order.append(root)
        remap = {old: new for new, old in enumerate(order)}
        kinds = [self._kinds[i] for i in order]
        lits = [self._lits[i] for i in order]
        offsets = [0]
        child_ids: List[int] = []
        for i in order:
            child_ids.extend(remap[c] for c in self._children[i])
            offsets.append(len(child_ids))
        ir = CircuitIR(kinds, lits, offsets, child_ids, flags,
                       self.num_params)
        return ir.intern() if intern else ir
