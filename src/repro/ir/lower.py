"""Lowerings from every circuit family onto the flattened IR.

Each family keeps its construction-time representation (hash-consed
NNF DAGs, reduced OBDDs, canonical SDDs, parameterised PSDDs, smoothed
arithmetic circuits) and lowers to one :class:`~repro.ir.core.CircuitIR`
for execution:

* :func:`nnf_to_ir` — structurally 1:1 (raw gates, no simplification),
  so the dense arrays match what the per-family kernel used to build;
  :func:`ir_to_nnf` lifts back, preserving structure;
* :func:`obdd_to_ir` — each decision node becomes
  ``(¬v ∧ low) ∨ (v ∧ high)``; reduction guarantees determinism;
* :func:`sdd_to_ir` — each decision node becomes the or-of-ands over
  its elements (false subs dropped), exactly the Fig 9 multiplexer;
* :func:`psdd_to_ir` — SDD structure plus ``KIND_PARAM`` leaves for
  the θs: a Bernoulli is ``(θ⁺ ∧ v) ∨ (θ⁻ ∧ ¬v)``, a decision element
  ``θₖ ∧ primeₖ ∧ subₖ``.  The lowering returns the parameter vector
  read from the *live* nodes, so in-place learning/EM updates are
  picked up by the next query without rebuilding (no stale memos);
* :func:`ac_to_ir` — the smoothed d-DNNF under an arithmetic circuit.

Property flags are computed once here and carried in the IR header;
the OBDD/SDD/PSDD lowerings assert determinism/structure from their
construction invariants rather than re-deriving them semantically.

Lowerings of the manager-owned families (OBDD, SDD) are cached on the
manager; PSDD lowerings are cached in a bounded module-level table
keyed by the globally-unique node id.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .core import (CircuitIR, IrBuilder, FLAG_DECOMPOSABLE,
                   FLAG_DETERMINISTIC, FLAG_SMOOTH, FLAG_STRUCTURED,
                   KIND_AND, KIND_LIT, KIND_OR, KIND_PARAM, KIND_TRUE)

__all__ = ["nnf_to_ir", "ir_to_nnf", "obdd_to_ir", "sdd_to_ir",
           "psdd_to_ir", "ac_to_ir", "structural_flags"]


def structural_flags(ir: CircuitIR) -> int:
    """The flags checkable in one structural pass: decomposability
    (and-children mention disjoint variables) and smoothness
    (or-children mention equal variables).  Determinism and
    structuredness are semantic; the family lowerings assert them from
    construction invariants instead."""
    varsets = ir.varsets()
    flags = FLAG_DECOMPOSABLE | FLAG_SMOOTH
    for i in range(ir.n):
        kind = ir.kinds[i]
        if kind == KIND_AND and flags & FLAG_DECOMPOSABLE:
            kids = ir.children(i)
            total = sum(len(varsets[c]) for c in kids)
            if total != len(varsets[i]):
                flags &= ~FLAG_DECOMPOSABLE
        elif kind == KIND_OR and flags & FLAG_SMOOTH:
            kids = ir.children(i)
            if kids:
                first = varsets[kids[0]]
                for c in kids[1:]:
                    if varsets[c] != first:
                        flags &= ~FLAG_SMOOTH
                        break
        if not flags:
            break
    return flags


# -- NNF ---------------------------------------------------------------------

def nnf_to_ir(root: Any, flags: Optional[int] = None,
              intern: bool = True) -> CircuitIR:
    """Lower an :class:`~repro.nnf.node.NnfNode` DAG, structurally 1:1.

    Gates are lowered raw (no constant simplification), so node ``i``
    of the IR corresponds exactly to node ``i`` of
    ``root.topological()`` — the alignment the
    :class:`~repro.nnf.kernel.CircuitKernel` adapter relies on.
    ``flags`` defaults to the structurally checkable properties;
    callers that know more (compiler output is deterministic by
    construction) pass the full set.
    """
    builder = IrBuilder()
    index: Dict[int, int] = {}
    for node in root.topological():
        kind = node.kind
        if kind == "lit":
            idx = builder.literal(node.literal)
        elif kind == "true":
            idx = builder.true()
        elif kind == "false":
            idx = builder.false()
        elif kind == "and":
            idx = builder.raw_and(
                tuple(index[c.id] for c in node.children))
        else:
            idx = builder.raw_or(
                tuple(index[c.id] for c in node.children))
        index[node.id] = idx
    ir = builder.finish(index[root.id], intern=False)
    if flags is None:
        flags = structural_flags(ir)
    ir.flags = flags
    return ir.intern() if intern else ir


def ir_to_nnf(ir: CircuitIR, manager: Any = None) -> Any:
    """Lift an IR back into an NNF DAG (structure-preserving).

    Parameterised circuits (``KIND_PARAM`` leaves) have no Boolean
    lifting and are rejected.
    """
    from ..nnf.node import NnfManager
    if manager is None:
        manager = NnfManager()
    nodes = []
    for i in range(ir.n):
        kind = ir.kinds[i]
        if kind == KIND_LIT:
            nodes.append(manager.literal(ir.lits[i]))
        elif kind == KIND_PARAM:
            raise ValueError(
                "cannot lift a parameterised circuit to Boolean NNF")
        elif kind == KIND_AND:
            nodes.append(manager._make(
                "and", 0, tuple(nodes[c] for c in ir.children(i))))
        elif kind == KIND_OR:
            nodes.append(manager._make(
                "or", 0, tuple(nodes[c] for c in ir.children(i))))
        else:
            nodes.append(manager.true() if kind == KIND_TRUE
                         else manager.false())
    return nodes[-1]


# -- OBDD --------------------------------------------------------------------

def obdd_to_ir(node: Any, intern: bool = True) -> CircuitIR:
    """Lower a reduced OBDD: decision nodes become the deterministic
    or-of-ands ``(¬v ∧ low) ∨ (v ∧ high)``.  Cached on the manager."""
    manager = node.manager
    cache = getattr(manager, "_ir_cache", None)
    if cache is None:
        cache = manager._ir_cache = {}
    ir = cache.get(node.id)
    if ir is not None:
        return ir
    builder = IrBuilder()
    index: Dict[int, int] = {}
    for n in node.topological():
        if n.is_terminal:
            index[n.id] = builder.true() if n.terminal_value \
                else builder.false()
        else:
            low_arm = builder.conjoin(
                (builder.literal(-n.var), index[n.low.id]))
            high_arm = builder.conjoin(
                (builder.literal(n.var), index[n.high.id]))
            index[n.id] = builder.disjoin((low_arm, high_arm))
    # reduction makes every or-gate a decision on a tested variable:
    # deterministic by construction; a right-linear vtree structures it
    flags = (FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC | FLAG_STRUCTURED)
    ir = builder.finish(index[node.id], flags=flags, intern=intern)
    cache[node.id] = ir
    return ir


# -- SDD ---------------------------------------------------------------------

def sdd_to_ir(node: Any, intern: bool = True) -> CircuitIR:
    """Lower a canonical SDD: each decision node is the or-of-ands of
    its elements (Fig 9); elements with a false sub vanish.  Mutually
    exclusive primes make the or-gates deterministic.  Cached on the
    manager."""
    manager = node.manager
    cache = getattr(manager, "_ir_cache", None)
    if cache is None:
        cache = manager._ir_cache = {}
    ir = cache.get(node.id)
    if ir is not None:
        return ir
    builder = IrBuilder()
    index: Dict[int, int] = {}
    for n in node.descendants():
        if n.is_true:
            index[n.id] = builder.true()
        elif n.is_false:
            index[n.id] = builder.false()
        elif n.is_literal:
            index[n.id] = builder.literal(n.literal)
        else:
            index[n.id] = builder.disjoin(
                builder.conjoin((index[p.id], index[s.id]))
                for p, s in n.elements)
    flags = (FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC | FLAG_STRUCTURED)
    ir = builder.finish(index[node.id], flags=flags, intern=intern)
    cache[node.id] = ir
    return ir


# -- PSDD --------------------------------------------------------------------

#: bounded cache psdd-node-id → (ir, parameter slots); PSDD ids are
#: globally unique, so collisions are impossible
_PSDD_IR_CACHE: Dict[int, Tuple[CircuitIR, List[Tuple]]] = {}
_PSDD_IR_LIMIT = 256


def _psdd_param(slot: Tuple) -> float:
    tag, node, extra = slot
    if tag == "b+":
        return node.theta
    if tag == "b-":
        return 1.0 - node.theta
    return node.elements[extra][2]


def psdd_to_ir(root: Any) -> Tuple[CircuitIR, List[float]]:
    """Lower a PSDD to (structure, current parameter vector).

    The structure carries ``KIND_PARAM`` leaves indexing the returned
    vector; the vector is re-read from the live nodes on every call, so
    learning/EM updates that mutate θs in place are always reflected —
    the structural IR (and its kernel, and its memoised *pure* results)
    can never go stale under parameter updates.
    """
    cached = _PSDD_IR_CACHE.get(root.id)
    if cached is None:
        builder = IrBuilder()
        slots: List[Tuple] = []
        index: Dict[int, int] = {}

        def param(slot: Tuple) -> int:
            slots.append(slot)
            return builder.param(len(slots) - 1)

        for node in root.descendants():
            if node.is_literal:
                index[node.id] = builder.literal(node.literal)
            elif node.is_bernoulli:
                var = abs(node.literal)
                index[node.id] = builder.disjoin((
                    builder.conjoin((param(("b+", node, None)),
                                     builder.literal(var))),
                    builder.conjoin((param(("b-", node, None)),
                                     builder.literal(-var)))))
            else:
                index[node.id] = builder.disjoin(
                    builder.conjoin((param(("el", node, k)),
                                     index[prime.id], index[sub.id]))
                    for k, (prime, sub, _theta)
                    in enumerate(node.elements))
        # full-vtree normalization makes PSDDs smooth by construction
        flags = (FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC | FLAG_SMOOTH |
                 FLAG_STRUCTURED)
        ir = builder.finish(index[root.id], flags=flags, intern=False)
        if len(_PSDD_IR_CACHE) >= _PSDD_IR_LIMIT:
            _PSDD_IR_CACHE.clear()
        cached = _PSDD_IR_CACHE[root.id] = (ir, slots)
    ir, slots = cached
    return ir, [_psdd_param(slot) for slot in slots]


# -- arithmetic circuits -----------------------------------------------------

def ac_to_ir(ac: Any, intern: bool = True) -> CircuitIR:
    """Lower an :class:`~repro.wmc.arithmetic_circuit.ArithmeticCircuit`:
    its root is a smoothed d-DNNF (compiler output), so the full flag
    set applies.  Free variables stay the AC's own bookkeeping."""
    return nnf_to_ir(
        ac.root,
        flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC | FLAG_SMOOTH,
        intern=intern)
