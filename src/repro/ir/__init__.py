"""repro.ir — the flattened circuit intermediate representation.

Every circuit family in the repo (NNF DAGs, OBDDs, SDDs, PSDDs and
arithmetic circuits) is, following Darwiche's *Tractable Boolean and
Arithmetic Circuits* framing, one circuit class distinguished only by
its properties.  This package makes that concrete:

* :mod:`repro.ir.core` — :class:`CircuitIR`, an immutable,
  topologically-ordered, CSR-flattened circuit (node kind codes,
  literal ids, child offset arrays) with property flags computed at
  lowering time and an interning pool for structural sharing;
* :mod:`repro.ir.kernel` — :class:`IrKernel`, the single execution
  engine (sat / count / WMC / MPE / marginals, scalar and batched)
  every family's queries dispatch through;
* :mod:`repro.ir.codegen` — the native-speed backend: per-circuit
  generated numpy evaluators (levelized segment reductions), cached as
  sealed source next to the circuit's ``.cert`` sidecar, selected by
  ``$REPRO_BACKEND`` / :meth:`IrKernel.set_backend` with automatic
  interpreter fallback (:class:`CodegenUnsupported`);
* :mod:`repro.ir.lower` — lowerings ``*_to_ir`` from each family and
  the ``ir_to_nnf`` lifting;
* :mod:`repro.ir.serialize` — canonical c2d ``.nnf`` and libsdd-style
  ``.sdd``/``.vtree`` readers and writers round-tripping through the IR;
* :mod:`repro.ir.store` — the content-addressed compilation cache
  keyed by SHA-256 of (DIMACS CNF, compiler name, config);
* :mod:`repro.ir.passes` — the certified circuit-optimization pass
  manager: verification-gated rewrites (constant folding, CSE,
  Tseitin-auxiliary pruning, de-/re-smoothing) that only ever replace
  a circuit with a provably equivalent smaller one
  (``docs/optimization.md``).
"""

from .codegen import (CodegenUnsupported, CompiledCircuit,
                      compile_circuit, resolve_backend)
from .core import (CircuitIR, IrBuilder, FLAG_DECOMPOSABLE,
                   FLAG_DETERMINISTIC, FLAG_SMOOTH, FLAG_STRUCTURED,
                   KIND_AND, KIND_FALSE, KIND_LIT, KIND_OR, KIND_PARAM,
                   KIND_TRUE)
from .kernel import IrKernel, ir_kernel
from .lower import (ac_to_ir, ir_to_nnf, nnf_to_ir, obdd_to_ir,
                    psdd_to_ir, sdd_to_ir)
from .serialize import (ir_from_csr_buffer, ir_from_nnf_text,
                        ir_to_csr_bytes, ir_to_nnf_text, read_sdd_file,
                        read_vtree_text, write_sdd_file,
                        write_vtree_text)
from .passes import (DEFAULT_PASSES, PASS_NAMES, PassManager,
                     PipelineResult, certified_equivalent, optimize_ir,
                     parse_passes, pipeline_signature)
from .store import ArtifactStore, artifact_key, default_store

__all__ = [
    "CircuitIR", "IrBuilder", "IrKernel", "ir_kernel",
    "KIND_LIT", "KIND_TRUE", "KIND_FALSE", "KIND_AND", "KIND_OR",
    "KIND_PARAM",
    "FLAG_DECOMPOSABLE", "FLAG_DETERMINISTIC", "FLAG_SMOOTH",
    "FLAG_STRUCTURED",
    "nnf_to_ir", "ir_to_nnf", "obdd_to_ir", "sdd_to_ir", "psdd_to_ir",
    "ac_to_ir",
    "ir_to_nnf_text", "ir_from_nnf_text", "write_vtree_text",
    "read_vtree_text", "write_sdd_file", "read_sdd_file",
    "ir_to_csr_bytes", "ir_from_csr_buffer",
    "ArtifactStore", "artifact_key", "default_store",
    "CodegenUnsupported", "CompiledCircuit", "compile_circuit",
    "resolve_backend",
    "PassManager", "PipelineResult", "optimize_ir", "parse_passes",
    "pipeline_signature", "certified_equivalent", "PASS_NAMES",
    "DEFAULT_PASSES",
]
