"""Canonical circuit serialization: c2d ``.nnf`` and libsdd-style
``.sdd``/``.vtree`` texts.

The ``.nnf`` side is IR-native: :func:`ir_to_nnf_text` emits exactly
the c2d format the seed's :mod:`repro.nnf.io` wrote (so files are
interchangeable), and :func:`ir_from_nnf_text` parses straight into a
:class:`~repro.ir.core.CircuitIR` without building node objects.
Writing then re-reading is the identity on the text (byte-stable):
the reader preserves node order and raw gate structure.

The ``.sdd``/``.vtree`` side follows the libsdd text formats::

    c ...                      c ...
    vtree <count>              sdd <count>
    L <id> <var>               F <id> / T <id>
    I <id> <left> <right>      L <id> <vtree-id> <literal>
                               D <id> <vtree-id> <n> <p1> <s1> ...

Vtree ids are in-order positions (libsdd's convention); SDD ids are
assigned by a post-order walk that follows element order, and the
reader rebuilds nodes *preserving the file's element order* while
registering them under the manager's canonical unique-table keys — so
``write(read(text)) == text`` and freshly read SDDs keep full apply
compatibility.  SDD texts lower to the IR via
:func:`repro.ir.lower.sdd_to_ir` for execution.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Dict, List, Optional, Tuple

from ..vtree.vtree import Vtree
from .core import (CircuitIR, KIND_AND, KIND_FALSE, KIND_LIT, KIND_OR,
                   KIND_TRUE)
from .lower import structural_flags

__all__ = ["ir_to_nnf_text", "ir_from_nnf_text", "ir_to_csr_bytes",
           "ir_from_csr_buffer", "write_vtree_text", "read_vtree_text",
           "write_sdd_file", "read_sdd_file"]


# -- c2d .nnf ----------------------------------------------------------------

def ir_to_nnf_text(ir: CircuitIR) -> str:
    """Serialise an IR in c2d ``.nnf`` format (byte-identical to the
    seed's node-object writer on the same circuit)."""
    lines: List[str] = []
    max_var = 0
    for i in range(ir.n):
        kind = ir.kinds[i]
        if kind == KIND_LIT:
            lit = ir.lits[i]
            max_var = max(max_var, abs(lit))
            lines.append(f"L {lit}")
        elif kind == KIND_TRUE:
            lines.append("A 0")
        elif kind == KIND_FALSE:
            lines.append("O 0 0")
        elif kind == KIND_AND:
            kids = ir.children(i)
            body = " ".join(map(str, kids))
            lines.append(f"A {len(kids)} {body}".rstrip())
        elif kind == KIND_OR:
            kids = ir.children(i)
            body = " ".join(map(str, kids))
            lines.append(f"O 0 {len(kids)} {body}".rstrip())
        else:
            raise ValueError(
                "parameterised circuits have no .nnf serialization")
    header = f"nnf {ir.n} {ir.edge_count()} {max_var}"
    return "\n".join([header] + lines) + "\n"


def ir_from_nnf_text(text: str, flags: Optional[int] = None,
                     intern: bool = True) -> CircuitIR:
    """Parse a c2d ``.nnf`` text straight into a CircuitIR.

    The format's node ids *are* line positions with children first and
    the root last — exactly the IR's layout — so the CSR arrays are
    filled directly, with no builder, renumbering or node objects.
    Node order and raw gate structure are preserved, so writing the
    result back yields the input text byte-for-byte (this is the hot
    half of a warm artifact-store hit; see :mod:`repro.ir.store`).

    ``flags`` skips the structural property scan when the caller knows
    the circuit's properties (e.g. compiler output).
    """
    lines: List[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if line and not line.startswith("c"):
            lines.append(line)
    if not lines or not lines[0].startswith("nnf"):
        raise ValueError("missing nnf header")
    header = lines[0].split()
    if len(header) != 4:
        raise ValueError(f"bad header: {lines[0]!r}")
    declared_nodes = int(header[1])
    if len(lines) - 1 != declared_nodes:
        raise ValueError(f"header declares {declared_nodes} nodes, "
                         f"found {len(lines) - 1}")
    if declared_nodes == 0:
        raise ValueError("empty nnf text")
    kinds: List[int] = []
    lits: List[int] = []
    offsets: List[int] = [0]
    child_ids: List[int] = []
    index = 0
    for line in lines[1:]:
        parts = line.split()
        kind = parts[0]
        if kind == "L":
            kinds.append(KIND_LIT)
            lits.append(int(parts[1]))
        elif kind == "A":
            if parts[1] == "0":
                kinds.append(KIND_TRUE)
            else:
                kinds.append(KIND_AND)
                kids = [int(token) for token in parts[2:]]
                if len(kids) != int(parts[1]) or max(kids) >= index:
                    raise ValueError(f"bad A line: {line!r}")
                child_ids.extend(kids)
            lits.append(0)
        elif kind == "O":
            if parts[2] == "0":
                kinds.append(KIND_FALSE)
            else:
                kinds.append(KIND_OR)
                kids = [int(token) for token in parts[3:]]
                if len(kids) != int(parts[2]) or max(kids) >= index:
                    raise ValueError(f"bad O line: {line!r}")
                child_ids.extend(kids)
            lits.append(0)
        else:
            raise ValueError(f"unknown node kind {kind!r}")
        offsets.append(len(child_ids))
        index += 1
    ir = CircuitIR(kinds, lits, offsets, child_ids,
                   flags=0 if flags is None else flags)
    if flags is None:
        ir.flags = structural_flags(ir)
    return ir.intern() if intern else ir


# -- binary CSR sidecar (.csr) -----------------------------------------------
# The IR's four parallel arrays, verbatim, in a fixed little-endian
# layout — the zero-parse twin of the ``.nnf`` text that warm
# artifact-store loads memory-map instead of re-parsing:
#
#   magic(8) | n,edges,flags,num_params (4 × u64 LE)
#   | text_hash (32 raw bytes: sha256 of the .nnf text, .cert binding)
#   | kinds  i8 × n | lits i32 × n | offsets i64 × (n+1)
#   | child_ids i32 × edges | trailer (sha256 of everything above)
#
# The trailer makes truncation and bit rot self-evident; the embedded
# text hash lets the store certify a mapped load against the same
# ``.cert`` sidecar the text write produced, without touching the text.

CSR_MAGIC = b"RCSR1\x00\x00\x00"
_CSR_HEADER = struct.Struct("<QQQQ")


def ir_to_csr_bytes(ir: CircuitIR, text_hash: str) -> bytes:
    """Serialise an IR as the binary CSR sidecar (deterministic:
    write∘read∘write is byte-stable).  ``text_hash`` is the content
    hash of the artifact's canonical text, carried for certificate
    binding on memory-mapped loads."""
    n = ir.n
    edges = ir.edge_count()
    parts = [
        CSR_MAGIC,
        _CSR_HEADER.pack(n, edges, ir.flags, ir.num_params),
        bytes.fromhex(text_hash),
        struct.pack(f"<{n}b", *ir.kinds),
        struct.pack(f"<{n}i", *ir.lits),
        struct.pack(f"<{n + 1}q", *ir.offsets),
        struct.pack(f"<{edges}i", *ir.child_ids),
    ]
    body = b"".join(parts)
    return body + hashlib.sha256(body).digest()


def ir_from_csr_buffer(buf: "bytes | memoryview"
                       ) -> Tuple[CircuitIR, str]:
    """Parse a binary CSR sidecar into ``(ir, text_hash)``.

    Accepts any buffer (typically a memory-mapped file): the arrays are
    decoded through zero-copy numpy views when numpy is available, and
    the trailing hash is verified first so truncated or rotted sidecars
    raise ``ValueError`` instead of yielding a wrong circuit.  Flags
    come from the header (written by the store, certified at load
    time); no structural re-scan happens here.
    """
    view = memoryview(buf)
    head = len(CSR_MAGIC) + _CSR_HEADER.size + 32
    if len(view) < head + 32:
        raise ValueError("truncated csr sidecar")
    if bytes(view[:len(CSR_MAGIC)]) != CSR_MAGIC:
        raise ValueError("bad csr magic")
    n, edges, flags, num_params = _CSR_HEADER.unpack(
        view[len(CSR_MAGIC):len(CSR_MAGIC) + _CSR_HEADER.size])
    body_len = head + n + 4 * n + 8 * (n + 1) + 4 * edges
    if len(view) != body_len + 32:
        raise ValueError("csr sidecar length mismatch")
    if hashlib.sha256(view[:body_len]).digest() != \
            bytes(view[body_len:]):
        raise ValueError("csr sidecar integrity hash mismatch")
    text_hash = bytes(view[len(CSR_MAGIC) + _CSR_HEADER.size:
                           head]).hex()
    kinds: Any
    try:
        import numpy as np
        offset = head
        kinds = np.frombuffer(view, dtype="<i1", count=n,
                              offset=offset).tolist()
        offset += n
        lits = np.frombuffer(view, dtype="<i4", count=n,
                             offset=offset).tolist()
        offset += 4 * n
        offsets = np.frombuffer(view, dtype="<i8", count=n + 1,
                                offset=offset).tolist()
        offset += 8 * (n + 1)
        child_ids = np.frombuffer(view, dtype="<i4", count=edges,
                                  offset=offset).tolist()
    except ImportError:
        offset = head
        kinds = list(struct.unpack_from(f"<{n}b", view, offset))
        offset += n
        lits = list(struct.unpack_from(f"<{n}i", view, offset))
        offset += 4 * n
        offsets = list(struct.unpack_from(f"<{n + 1}q", view, offset))
        offset += 8 * (n + 1)
        child_ids = list(struct.unpack_from(f"<{edges}i", view, offset))
    ir = CircuitIR(kinds, lits, offsets, child_ids, flags=int(flags),
                   num_params=int(num_params))
    return ir, text_hash


# -- libsdd .vtree -----------------------------------------------------------

def _post_order(vtree: Vtree) -> List[Vtree]:
    order: List[Vtree] = []
    stack: List[Tuple[Vtree, bool]] = [(vtree, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        stack.append((node, True))
        if not node.is_leaf():
            stack.append((node.right, False))
            stack.append((node.left, False))
    return order


def write_vtree_text(vtree: Vtree) -> str:
    """Serialise a vtree in the libsdd text format (ids are in-order
    positions, nodes listed children-first, root last)."""
    lines = [f"vtree {vtree.node_count()}"]
    for node in _post_order(vtree):
        if node.is_leaf():
            lines.append(f"L {node.position} {node.var}")
        else:
            lines.append(f"I {node.position} {node.left.position} "
                         f"{node.right.position}")
    return "\n".join(lines) + "\n"


def read_vtree_text(text: str) -> Vtree:
    """Parse a libsdd vtree text (any id scheme, children-first)."""
    lines = [line.strip() for line in text.splitlines()
             if line.strip() and not line.startswith("c")]
    if not lines or not lines[0].startswith("vtree"):
        raise ValueError("missing vtree header")
    declared = int(lines[0].split()[1])
    specs: Dict[int, Tuple] = {}
    referenced: set = set()
    for line in lines[1:]:
        parts = line.split()
        if parts[0] == "L":
            specs[int(parts[1])] = ("L", int(parts[2]))
        elif parts[0] == "I":
            left, right = int(parts[2]), int(parts[3])
            specs[int(parts[1])] = ("I", left, right)
            referenced.update((left, right))
        else:
            raise ValueError(f"unknown vtree line {line!r}")
    if len(specs) != declared:
        raise ValueError(
            f"header declares {declared} vtree nodes, found {len(specs)}")
    roots = [i for i in specs if i not in referenced]
    if len(roots) != 1:
        raise ValueError("vtree text must have exactly one root")
    built: Dict[int, Vtree] = {}
    stack = [roots[0]]
    while stack:
        node_id = stack[-1]
        spec = specs[node_id]
        if spec[0] == "L":
            built[node_id] = Vtree.leaf(spec[1])
            stack.pop()
            continue
        pending = [c for c in spec[1:] if c not in built]
        if pending:
            stack.extend(pending)
            continue
        built[node_id] = Vtree.internal(built[spec[1]], built[spec[2]])
        stack.pop()
    return built[roots[0]]


# -- libsdd .sdd -------------------------------------------------------------

def write_sdd_file(node: Any) -> str:
    """Serialise an SDD in the libsdd text format.

    Ids come from a post-order walk following element order (prime
    before sub), which makes the output deterministic and the
    write∘read composition byte-stable.  Save the manager's vtree
    alongside with :func:`write_vtree_text`.
    """
    order = []
    seen: set = set()
    stack = [(node, False)]
    while stack:
        n, expanded = stack.pop()
        if expanded:
            order.append(n)
            continue
        if n.id in seen:
            continue
        seen.add(n.id)
        stack.append((n, True))
        for prime, sub in reversed(n.elements):
            if sub.id not in seen:
                stack.append((sub, False))
            if prime.id not in seen:
                stack.append((prime, False))
    ids = {n.id: i for i, n in enumerate(order)}
    lines = [f"sdd {len(order)}"]
    for n in order:
        if n.is_true:
            lines.append(f"T {ids[n.id]}")
        elif n.is_false:
            lines.append(f"F {ids[n.id]}")
        elif n.is_literal:
            lines.append(f"L {ids[n.id]} {n.vtree.position} {n.literal}")
        else:
            body = " ".join(f"{ids[p.id]} {ids[s.id]}"
                            for p, s in n.elements)
            lines.append(f"D {ids[n.id]} {n.vtree.position} "
                         f"{len(n.elements)} {body}")
    return "\n".join(lines) + "\n"


def read_sdd_file(text: str, vtree: Any,
                  manager: Any = None) -> Tuple[Any, Any]:
    """Parse a libsdd ``.sdd`` text into (root, manager).

    ``vtree`` is the matching vtree (object or ``.vtree`` text).  Nodes
    are rebuilt preserving the file's element order and registered in
    the manager's unique table, so the result supports apply
    operations and re-serialises byte-identically.
    """
    from ..sdd.manager import SddManager
    from ..sdd.node import SddNode
    if isinstance(vtree, str):
        vtree = read_vtree_text(vtree)
    if manager is None:
        manager = SddManager(vtree)
    elif manager.vtree is not vtree:
        raise ValueError("manager must own the provided vtree")
    by_position = {v.position: v for v in vtree.nodes()}
    lines = [line.strip() for line in text.splitlines()
             if line.strip() and not line.startswith("c")]
    if not lines or not lines[0].startswith("sdd"):
        raise ValueError("missing sdd header")
    declared = int(lines[0].split()[1])
    nodes: Dict[int, SddNode] = {}
    last = None
    for line in lines[1:]:
        parts = line.split()
        kind = parts[0]
        node_id = int(parts[1])
        if kind == "T":
            node = manager.true
        elif kind == "F":
            node = manager.false
        elif kind == "L":
            node = manager.literal(int(parts[3]))
        elif kind == "D":
            v = by_position[int(parts[2])]
            count = int(parts[3])
            refs = [int(token) for token in parts[4:]]
            if len(refs) != 2 * count:
                raise ValueError(f"bad D line: {line!r}")
            elements = tuple((nodes[refs[2 * k]], nodes[refs[2 * k + 1]])
                             for k in range(count))
            key = (v.position,
                   tuple(sorted((p.id, s.id) for p, s in elements)))
            node = manager._unique.get(key)
            if node is None:
                node = manager._fresh(SddNode.DECISION, v, 0, elements)
                manager._unique[key] = node
        else:
            raise ValueError(f"unknown sdd line {line!r}")
        nodes[node_id] = node
        last = node
    if len(nodes) != declared:
        raise ValueError(
            f"header declares {declared} sdd nodes, found {len(nodes)}")
    if last is None:
        raise ValueError("empty sdd text")
    return last, manager
