"""Per-circuit compiled evaluators: the codegen backend of the kernel.

The paper's bargain is *compile once, query fast many times* — but an
interpreted Python loop over the CSR arrays pays per-node dispatch on
every query.  This module walks the arrays **once per circuit digest**
and emits a specialized straight-line numpy program: nodes are
levelized and permuted so every run of same-kind gates at one depth
becomes a single sliced segment reduction
(``np.multiply.reduceat`` / ``np.add.reduceat`` /
``np.maximum.reduceat`` / ``np.logaddexp.reduceat``) writing directly
into a contiguous slice of the value vector.  One generated source
serves scalar *and* batched calls (a value row per node), in linear
and log space.

The generated text is deterministic for a given circuit, sealed with a
self-hash header, cached in the :class:`~repro.ir.store.ArtifactStore`
next to the ``.cert`` sidecar under the same sha256 digest, and only
ever turned into code through :func:`audited_compile` — the single
``compile()`` entry point the invariant lint
(``tools/lint_invariants.py``, rule ``audited-compile``) pins down.

Supported queries: sat, model count, WMC (scalar / batch / log-batch),
MPE (vectorized upward pass + exact interpreter-style traceback) and
evaluation (scalar / batch).  Anything else — parameterised circuits
(``KIND_PARAM`` leaves mid-EM), counts past float64's exact-integer
range, empty circuits — raises :class:`CodegenUnsupported` and the
kernel falls back to the interpreter (see
``docs/architecture.md`` for the full fallback table).

Budget charging does not bypass the governor: every generated function
charges one kernel pass through the injected hook
(:func:`repro.limits.budget.pass_charge_hook`) before touching the
arrays.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import (TYPE_CHECKING, Any, Dict, List, Mapping, Optional,
                    Sequence, Tuple)

from ..perf.instrument import Counter
from .core import (KIND_AND, KIND_FALSE, KIND_LIT, KIND_OR, KIND_PARAM,
                   KIND_TRUE)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .kernel import IrKernel
    from .store import ArtifactStore

__all__ = ["BACKEND_ENV", "BACKENDS", "CodegenUnsupported",
           "resolve_backend", "generate_source", "audited_compile",
           "check_source", "CompiledCircuit", "compile_circuit"]

#: environment variable selecting the default kernel backend
BACKEND_ENV = "REPRO_BACKEND"

BACKENDS = ("codegen", "interp")

#: first-line schema tag of a sealed generated source; the version
#: names the emission contract — bumped when the generated text's shape
#: changes, so stale cached sources regenerate instead of being reused
SOURCE_SCHEMA = "repro-codegen/2"
_SOURCE_SCHEMA_FAMILY = "repro-codegen/"

#: model counts are run through the float64 pipeline only while every
#: intermediate is an exact integer: counts are bounded by 2**|vars|,
#: so this is safe up to 52 circuit variables (< 2**53)
_EXACT_COUNT_VARS = 52

#: an arity class is split into its own uniform-arity step (fast
#: elementwise path) only when it spans at least this many edges —
#: below that, the saved reduceat time does not pay for the extra
#: per-step dispatch the split adds to every scalar pass
_MIN_UNIFORM_EDGES = 512


class CodegenUnsupported(Exception):
    """The circuit or query is outside the compiled evaluator's domain;
    the caller falls back to the interpreter."""


def _numpy() -> Any:
    """numpy, imported on first use (keeps the scalar interpreter
    importable without numpy)."""
    import numpy
    return numpy


def resolve_backend(explicit: Optional[str] = None) -> str:
    """The active backend: an explicit kernel override wins, then
    ``$REPRO_BACKEND``, then the default (``codegen``)."""
    value = explicit if explicit is not None else \
        os.environ.get(BACKEND_ENV, "codegen").strip().lower()
    if value not in BACKENDS:
        raise ValueError(f"unknown backend {value!r}; "
                         f"expected one of {BACKENDS}")
    return value


# -- plan construction --------------------------------------------------------

class _Plan:
    """The levelized layout of one circuit: a node permutation that
    makes every (level, kind) run contiguous, plus the index arrays the
    generated segment reductions gather through."""

    __slots__ = ("n", "root", "pos", "lit_list", "lit_pos", "lit_idx",
                 "one_pos", "zero_pos", "gv_pos", "gv_neg", "steps",
                 "arrays", "edges")

    def __init__(self, kernel: "IrKernel") -> None:
        np = _numpy()
        ir = kernel.ir
        n = ir.n
        if n == 0:
            raise CodegenUnsupported("empty circuit")
        kinds = kernel.kinds
        if KIND_PARAM in kinds:
            raise CodegenUnsupported(
                "parameterised circuit (KIND_PARAM leaves are read "
                "per call; the interpreter serves them)")
        children = kernel.children
        level = [0] * n
        for i in range(n):
            kids = children[i]
            if kids:
                level[i] = max(level[c] for c in kids) + 1
        # arity classes big enough to pay for their own step (in saved
        # reduceat time) are split out of their (level, kind) run so
        # the emitter can use the uniform-arity fast paths; stragglers
        # stay merged in one segmented-reduction step per run, keeping
        # the step count (= fixed per-pass overhead) bounded
        class_count: Dict[Tuple[int, int, int], int] = {}
        for i in range(n):
            if children[i] and (kinds[i] == KIND_AND or
                                kinds[i] == KIND_OR):
                ckey = (level[i], kinds[i], len(children[i]))
                class_count[ckey] = class_count.get(ckey, 0) + 1

        def sort_key(i: int) -> Tuple[int, int, int, int]:
            kids = children[i]
            if kids and (kinds[i] == KIND_AND or kinds[i] == KIND_OR):
                arity = len(kids)
                if class_count[(level[i], kinds[i], arity)] * arity \
                        >= _MIN_UNIFORM_EDGES:
                    return (level[i], kinds[i], 0, arity)
                return (level[i], kinds[i], 1, arity)
            return (level[i], kinds[i], 0, 0)

        order = sorted(range(n), key=sort_key)
        pos = [0] * n
        for new, old in enumerate(order):
            pos[old] = new
        self.n = n
        self.root = pos[n - 1]
        self.pos = pos

        # literal codes: every literal the circuit mentions plus both
        # phases of every or-gate gap variable (the W(v)+W(-v) factor)
        lit_list: List[int] = sorted(
            {ir.lits[i] for i in range(n) if kinds[i] == KIND_LIT})
        lit_index = {lit: j for j, lit in enumerate(lit_list)}
        gap_vars = sorted({var for i in range(n) if kinds[i] == KIND_OR
                           for gv in kernel.or_gap_vars[i] or ()
                           for var in gv})
        for var in gap_vars:
            for lit in (var, -var):
                if lit not in lit_index:
                    lit_index[lit] = len(lit_list)
                    lit_list.append(lit)
        self.lit_list = lit_list
        self.lit_pos = np.array(
            [pos[i] for i in range(n) if kinds[i] == KIND_LIT],
            dtype=np.int64)
        self.lit_idx = np.array(
            [lit_index[ir.lits[i]] for i in range(n)
             if kinds[i] == KIND_LIT], dtype=np.int64)
        gap_index = {var: j for j, var in enumerate(gap_vars)}
        self.gv_pos = np.array([lit_index[v] for v in gap_vars],
                               dtype=np.int64)
        self.gv_neg = np.array([lit_index[-v] for v in gap_vars],
                               dtype=np.int64)

        # constant positions: TRUE and childless AND are the semiring
        # one; FALSE and childless OR the semiring zero
        ones: List[int] = []
        zeros: List[int] = []
        for i in range(n):
            kind = kinds[i]
            if kind == KIND_TRUE or \
                    (kind == KIND_AND and not children[i]):
                ones.append(pos[i])
            elif kind == KIND_FALSE or \
                    (kind == KIND_OR and not children[i]):
                zeros.append(pos[i])
        self.one_pos = np.array(ones, dtype=np.int64)
        self.zero_pos = np.array(zeros, dtype=np.int64)

        # one step per contiguous (level, kind) run of internal gates
        steps: List[Tuple[bool, int, int, bool, int]] = []
        arrays: Dict[str, Any] = {}
        edges = 0
        by_group: Dict[Tuple[int, int, int, int], List[int]] = {}
        for i in order:
            if children[i] and (kinds[i] == KIND_AND or
                                kinds[i] == KIND_OR):
                gkey = sort_key(i)
                if gkey[2] == 1:  # stragglers: one mixed run, any arity
                    gkey = (gkey[0], gkey[1], 1, 0)
                by_group.setdefault(gkey, []).append(i)
        for index, (group, ids) in enumerate(sorted(by_group.items())):
            is_or = group[1] == KIND_OR
            lo, hi = pos[ids[0]], pos[ids[-1]] + 1
            child_ids: List[int] = []
            offs = [0]
            egaps: List[Tuple[int, ...]] = []
            for i in ids:
                child_ids.extend(pos[c] for c in children[i])
                offs.append(len(child_ids))
                if is_or:
                    egaps.extend(kernel.or_gap_vars[i] or ())
            edges += len(child_ids)
            arities = {len(children[i]) for i in ids}
            arity = arities.pop() if len(arities) == 1 else 0
            arrays[f"_CH{index}"] = np.array(child_ids, dtype=np.int64)
            arrays[f"_OF{index}"] = np.array(offs[:-1], dtype=np.int64)
            if arity == 2:
                # binary runs (the d-DNNF common case) skip reduceat
                # for one elementwise ufunc over two strided gathers
                arrays[f"_CA{index}"] = np.array(child_ids[0::2],
                                                 dtype=np.int64)
                arrays[f"_CB{index}"] = np.array(child_ids[1::2],
                                                 dtype=np.int64)
            gap_edges = [e for e, gv in enumerate(egaps) if gv]
            has_gaps = bool(gap_edges)
            if has_gaps:
                gidx: List[int] = []
                goffs = [0]
                for e in gap_edges:
                    gidx.extend(gap_index[v] for v in egaps[e])
                    goffs.append(len(gidx))
                arrays[f"_GE{index}"] = np.array(gap_edges,
                                                 dtype=np.int64)
                arrays[f"_GI{index}"] = np.array(gidx, dtype=np.int64)
                arrays[f"_GO{index}"] = np.array(goffs[:-1],
                                                 dtype=np.int64)
            steps.append((is_or, lo, hi, has_gaps, arity))
        self.steps = steps
        self.arrays = arrays
        self.edges = edges


# -- source generation --------------------------------------------------------

def _emit_forward(name: str, plan: _Plan, and_fam: str, or_fam: str,
                  gap_line: Optional[str]) -> List[str]:
    """One straight-line forward pass: a charge, then one gather +
    segment reduction per (level, kind) run, writing into the run's
    contiguous slice.  ``gap_line`` folds the per-edge or-gap factor
    in (None for passes that ignore gaps, e.g. evaluation).

    Uniform-arity runs specialize away ``reduceat``: arity 1 is a
    sliced copy, arity 2 one elementwise ufunc call (over two strided
    gathers when no gap factor intervenes), arity ``a`` a
    ``reshape(-1, a, ...)`` + axis-1 ``ufunc.reduce`` — an order of
    magnitude faster than the segmented reduction on the binary runs
    that dominate d-DNNFs.  Mixed-arity runs keep ``reduceat``."""
    lines = [f"def {name}(values, gapvals):", "    _charge(1)"]
    for index, (is_or, lo, hi, has_gaps, arity) in \
            enumerate(plan.steps):
        fam = or_fam if is_or else and_fam
        out = f"values[{lo}:{hi}]"
        gapped = is_or and has_gaps and gap_line is not None
        if arity == 2 and not gapped:
            lines.append(
                f"    _{fam}b(_take(values, _CA{index}, 0), "
                f"_take(values, _CB{index}, 0), out={out})")
            continue
        lines.append(f"    cv = _take(values, _CH{index}, 0)")
        if gapped:
            assert gap_line is not None
            lines.append("    " + gap_line.format(i=index))
        if arity == 1:
            lines.append(f"    {out} = cv")
        elif arity == 2:
            lines.append(f"    _{fam}b(cv[0::2], cv[1::2], out={out})")
        elif arity > 2:
            # explicit gate count (not -1): a zero-width batch axis
            # makes -1 ambiguous on a size-0 gather
            lines.append(
                f"    _{fam}r(cv.reshape(({hi - lo}, {arity}) + "
                f"cv.shape[1:]), axis=1, out={out})")
        else:
            lines.append(f"    _{fam}(cv, _OF{index}, out={out})")
    lines.append(f"    return values[{plan.root}]")
    lines.append("")
    return lines


def generate_source(plan: _Plan, digest: str) -> str:
    """The sealed evaluator source for one circuit: four specialized
    forward passes over the levelized layout, deterministic for a
    given circuit digest (cache it under that digest)."""
    body: List[str] = [
        f"# circuit {digest} n={plan.n} edges={plan.edges} "
        f"steps={len(plan.steps)}",
        "",
    ]
    # linear semiring: WMC, model count, sat (all weights 1)
    body += _emit_forward(
        "forward_wmc", plan, and_fam="mul", or_fam="add",
        gap_line="cv[_GE{i}] *= _mul(gapvals[_GI{i}], _GO{i})")
    # log semiring: log-space WMC (gapvals pre-combined per variable)
    body += _emit_forward(
        "forward_log", plan, and_fam="add", or_fam="lse",
        gap_line="cv[_GE{i}] += _add(gapvals[_GI{i}], _GO{i})")
    # max-product semiring: the MPE upward pass
    body += _emit_forward(
        "forward_max", plan, and_fam="mul", or_fam="max",
        gap_line="cv[_GE{i}] *= _mul(gapvals[_GI{i}], _GO{i})")
    # boolean evaluation on 0/1 floats (gaps are irrelevant)
    body += _emit_forward(
        "forward_eval", plan, and_fam="mul", or_fam="max",
        gap_line=None)
    text = "\n".join(body)
    return seal_source(text)


def seal_source(body: str) -> str:
    """Prefix ``body`` with the schema + self-hash header line."""
    tag = hashlib.sha256(body.encode()).hexdigest()
    return f"# {SOURCE_SCHEMA} sha256:{tag}\n{body}"


def check_source(text: str) -> bool:
    """True when ``text`` is a sealed source whose self-hash matches —
    the integrity gate for store-loaded generated code.  Integrity is
    version-agnostic (any ``repro-codegen/N`` seal counts): an older
    emission is *stale*, not corrupt — version currency is the
    caller's call (:class:`CompiledCircuit` regenerates)."""
    head, sep, body = text.partition("\n")
    parts = head.split()
    if not sep or len(parts) != 3 or parts[0] != "#" or \
            not parts[1].startswith(_SOURCE_SCHEMA_FAMILY) or \
            not parts[2].startswith("sha256:"):
        return False
    return parts[2][7:] == hashlib.sha256(body.encode()).hexdigest()


def source_digest(text: str) -> Optional[str]:
    """The circuit digest recorded in a sealed source's second line."""
    lines = text.splitlines()
    if len(lines) < 2:
        return None
    parts = lines[1].split()
    if len(parts) >= 3 and parts[0] == "#" and parts[1] == "circuit":
        return parts[2]
    return None


def audited_compile(text: str, namespace: Dict[str, Any]) -> None:
    """THE one entry point that turns generated text into code.

    Refuses anything that is not a sealed, self-hash-intact source
    (:func:`check_source`), then compiles and executes it into
    ``namespace``.  The invariant lint's ``audited-compile`` rule
    forbids ``eval`` / ``exec`` / ``compile`` on artifact-derived
    strings anywhere else in the tree, so every byte of generated code
    is integrity-checked right here before it can run.
    """
    if not check_source(text):
        raise CodegenUnsupported(
            "generated source failed its integrity check")
    code = compile(text, "<repro-codegen>", "exec")
    exec(code, namespace)  # noqa: S102 - the audited entry point


# -- the compiled circuit -----------------------------------------------------

class CompiledCircuit:
    """The specialized evaluators of one circuit.

    Construction builds the levelized plan, fetches (or generates and
    caches) the sealed source, and compiles it once; each query method
    packs the per-call weights into the plan's literal layout, runs the
    matching generated forward pass, and unpacks the root value.

    ``stats`` counts ``codegen_compiles`` / ``codegen_source_hits`` /
    ``codegen_fallbacks`` and the compile-vs-eval time split
    (``codegen_compile_us`` / ``codegen_eval_us``).
    """

    __slots__ = ("kernel", "n", "plan", "stats", "_fns", "_sat_root",
                 "_count")

    def __init__(self, kernel: "IrKernel",
                 store: "Optional[ArtifactStore]" = None) -> None:
        np = _numpy()
        t0 = time.perf_counter()
        self.kernel = kernel
        self.n = kernel.n
        self.stats = Counter()
        self._sat_root: Optional[bool] = None
        self._count: Optional[int] = None
        plan = _Plan(kernel)
        self.plan = plan
        digest = kernel.ir.digest()
        if store is None:
            from .store import default_store
            store = default_store()
        source: Optional[str] = None
        if store is not None:
            source = store.load_codegen(digest)
            if source is not None and (
                    source_digest(source) != digest or
                    not source.startswith(f"# {SOURCE_SCHEMA} ")):
                source = None  # foreign / older emission: regenerate
            if source is not None:
                self.stats.incr("codegen_source_hits")
        if source is None:
            source = generate_source(plan, digest)
            if store is not None:
                store.save_codegen(digest, source)
        from ..limits.budget import pass_charge_hook
        namespace: Dict[str, Any] = dict(plan.arrays)
        namespace.update({
            "_take": np.take,
            "_mul": np.multiply.reduceat,
            "_add": np.add.reduceat,
            "_max": np.maximum.reduceat,
            "_lse": np.logaddexp.reduceat,
            "_mulb": np.multiply,
            "_addb": np.add,
            "_maxb": np.maximum,
            "_lseb": np.logaddexp,
            "_mulr": np.multiply.reduce,
            "_addr": np.add.reduce,
            "_maxr": np.maximum.reduce,
            "_lser": np.logaddexp.reduce,
            "_charge": pass_charge_hook(kernel, self.n),
            "__builtins__": {},
        })
        audited_compile(source, namespace)
        self._fns = {name: namespace[name]
                     for name in ("forward_wmc", "forward_log",
                                  "forward_max", "forward_eval")}
        self.stats.incr("codegen_compiles")
        self.stats.incr("codegen_compile_us",
                        int((time.perf_counter() - t0) * 1e6))

    # -- packing helpers -----------------------------------------------------
    def _weight_vec(self, weights: Mapping[int, Any]) -> Any:
        """Literal-code layout of one weight map (scalar calls)."""
        np = _numpy()
        lit_list = self.plan.lit_list
        return np.fromiter((weights[lit] for lit in lit_list),
                           dtype=float, count=len(lit_list))

    def _weight_rows(self, weights: Mapping[int, Any]) -> Any:
        """Literal-code layout of a weight batch: (lits, N) rows."""
        np = _numpy()
        self.kernel._batch_size(weights)  # empty-batch ValueError parity
        if not self.plan.lit_list:
            # no literal rows to carry the batch axis through: the
            # interpreter's broadcast handling serves this edge case
            raise CodegenUnsupported("literal-free circuit batch")
        return np.array([weights[lit] for lit in self.plan.lit_list],
                        dtype=float)

    def _values(self, wvec: Any, zero: float, one: float) -> Any:
        """A fresh value buffer with constants and literals filled; the
        trailing batch axes of ``wvec`` carry through."""
        np = _numpy()
        plan = self.plan
        shape = (self.n,) + wvec.shape[1:]
        values = np.empty(shape)
        if len(plan.one_pos):
            values[plan.one_pos] = one
        if len(plan.zero_pos):
            values[plan.zero_pos] = zero
        values[plan.lit_pos] = wvec[plan.lit_idx]
        return values

    def _pass_stats(self, stats: Optional[Counter],
                    batch: Optional[int] = None) -> None:
        if stats is not None:
            stats.incr("nodes_visited", self.n)
            if batch is not None:
                stats.incr("batch_columns", batch)

    def _timed(self, fn: str, values: Any, gapvals: Any) -> Any:
        t0 = time.perf_counter()
        self._fns[fn](values, gapvals)
        self.stats.incr("codegen_eval_us",
                        int((time.perf_counter() - t0) * 1e6))
        return values

    # -- queries -------------------------------------------------------------
    def wmc(self, weights: Mapping[int, float],
            stats: Optional[Counter] = None) -> float:
        plan = self.plan
        wvec = self._weight_vec(weights)
        gapvals = wvec[plan.gv_pos] + wvec[plan.gv_neg]
        values = self._values(wvec, zero=0.0, one=1.0)
        self._pass_stats(stats)
        self._timed("forward_wmc", values, gapvals)
        return float(values[plan.root])

    def wmc_batch(self, weights: Mapping[int, Any],
                  stats: Optional[Counter] = None) -> Any:
        plan = self.plan
        wvec = self._weight_rows(weights)
        gapvals = wvec[plan.gv_pos] + wvec[plan.gv_neg]
        values = self._values(wvec, zero=0.0, one=1.0)
        self._pass_stats(stats, batch=wvec.shape[1])
        self._timed("forward_wmc", values, gapvals)
        return values[plan.root].copy()

    def wmc_log_batch(self, log_weights: Mapping[int, Any],
                      stats: Optional[Counter] = None) -> Any:
        np = _numpy()
        plan = self.plan
        wvec = self._weight_rows(log_weights)
        gapvals = np.logaddexp(wvec[plan.gv_pos], wvec[plan.gv_neg])
        values = self._values(wvec, zero=-np.inf, one=0.0)
        self._pass_stats(stats, batch=wvec.shape[1])
        self._timed("forward_log", values, gapvals)
        return values[plan.root].copy()

    def model_count(self, stats: Optional[Counter] = None) -> int:
        """#SAT through the float64 pipeline: exact while every
        intermediate stays an integer below 2**53 (counts are bounded
        by 2**|vars|), unsupported beyond that."""
        if self._count is not None:
            return self._count
        kernel = self.kernel
        num_vars = len(kernel.varsets[self.n - 1]) if self.n else 0
        if num_vars > _EXACT_COUNT_VARS:
            raise CodegenUnsupported(
                f"model count over {num_vars} variables exceeds "
                f"float64's exact-integer range")
        np = _numpy()
        plan = self.plan
        wvec = np.ones(len(plan.lit_list))
        gapvals = wvec[plan.gv_pos] + wvec[plan.gv_neg]
        values = self._values(wvec, zero=0.0, one=1.0)
        self._pass_stats(stats)
        self._timed("forward_wmc", values, gapvals)
        self._count = int(round(float(values[plan.root])))
        return self._count

    def sat(self, stats: Optional[Counter] = None) -> bool:
        """Root satisfiability: the all-ones forward pass is positive
        iff some model survives (sums and products of non-negatives;
        float overflow saturates to +inf and stays positive)."""
        if self._sat_root is not None:
            return self._sat_root
        np = _numpy()
        plan = self.plan
        wvec = np.ones(len(plan.lit_list))
        gapvals = wvec[plan.gv_pos] + wvec[plan.gv_neg]
        values = self._values(wvec, zero=0.0, one=1.0)
        self._pass_stats(stats)
        self._timed("forward_wmc", values, gapvals)
        self._sat_root = bool(values[plan.root] > 0.0)
        return self._sat_root

    def mpe(self, weights: Mapping[int, float],
            stats: Optional[Counter] = None
            ) -> Tuple[float, Dict[int, bool]]:
        """Vectorized max-product upward pass; the traceback re-reads
        edge scores exactly as the interpreter does, so the returned
        assignment is bit-identical to the interpreted one."""
        np = _numpy()
        plan = self.plan
        kernel = self.kernel
        wvec = self._weight_vec(weights)
        gapvals = np.maximum(wvec[plan.gv_pos], wvec[plan.gv_neg])
        values = self._values(wvec, zero=-np.inf, one=1.0)
        self._pass_stats(stats)
        self._timed("forward_max", values, gapvals)
        pos = plan.pos

        def best_literal(var: int) -> int:
            return var if weights[var] >= weights[-var] else -var

        assignment: Dict[int, bool] = {}
        kinds = kernel.kinds
        children = kernel.children
        gap_vars = kernel.or_gap_vars
        neg_inf = float("-inf")
        stack = [self.n - 1]
        while stack:
            i = stack.pop()
            kind = kinds[i]
            if kind == KIND_LIT:
                lit = kernel.lits[i]
                assignment[abs(lit)] = lit > 0
            elif kind == KIND_AND:
                stack.extend(children[i])
            elif kind == KIND_OR:
                gaps = gap_vars[i]
                kids = children[i]
                best_k, best_value = -1, neg_inf
                for k in range(len(kids)):
                    value = float(values[pos[kids[k]]])
                    for var in gaps[k]:  # type: ignore[index]
                        value *= weights[best_literal(var)]
                    if value > best_value:
                        best_k, best_value = k, value
                if best_k >= 0:
                    for var in gaps[best_k]:  # type: ignore[index]
                        lit = best_literal(var)
                        assignment[abs(lit)] = lit > 0
                    stack.append(kids[best_k])
        return float(values[plan.root]), assignment

    def evaluate(self, assignment: Mapping[int, bool],
                 stats: Optional[Counter] = None) -> bool:
        np = _numpy()
        plan = self.plan
        wvec = np.fromiter(
            (float(bool(assignment[abs(lit)]) == (lit > 0))
             for lit in plan.lit_list),
            dtype=float, count=len(plan.lit_list))
        values = self._values(wvec, zero=0.0, one=1.0)
        self._pass_stats(stats)
        self._timed("forward_eval", values, None)
        return bool(values[plan.root] > 0.5)

    def evaluate_batch(self, assignment: Mapping[int, Any],
                       stats: Optional[Counter] = None) -> Any:
        np = _numpy()
        plan = self.plan
        self.kernel._batch_size(assignment)
        if not plan.lit_list:
            raise CodegenUnsupported("literal-free circuit batch")
        rows = []
        for lit in plan.lit_list:
            column = np.asarray(assignment[abs(lit)], dtype=bool)
            rows.append(column if lit > 0 else ~column)
        wvec = np.array(rows, dtype=float)
        values = self._values(wvec, zero=0.0, one=1.0)
        self._pass_stats(stats, batch=wvec.shape[1])
        self._timed("forward_eval", values, None)
        return values[plan.root] > 0.5


def compile_circuit(kernel: "IrKernel",
                    store: "Optional[ArtifactStore]" = None
                    ) -> CompiledCircuit:
    """Compile ``kernel``'s circuit, or raise :class:`CodegenUnsupported`
    (no numpy, parameterised or empty circuit)."""
    try:
        # probe the attributes the generated code gathers through, so a
        # missing *or broken* numpy (e.g. a stub module) falls back to
        # the interpreter instead of failing mid-query
        np = _numpy()
        np.take, np.multiply.reduceat, np.logaddexp.reduceat
    except Exception as error:
        raise CodegenUnsupported("numpy unavailable") from error
    return CompiledCircuit(kernel, store=store)
