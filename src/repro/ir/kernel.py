"""The single circuit execution engine over the flattened IR.

One :class:`IrKernel` per :class:`~repro.ir.core.CircuitIR` (obtain it
with :func:`ir_kernel`; it is cached on the IR object, and IR interning
makes structurally identical circuits share it).  The kernel owns the
derived evaluation data — per-node variable sets and, for every
or-gate edge, the *gap* variables the child is missing — and runs all
scalar and batched query passes the per-family walkers used to
implement separately:

* sat / sat model (decomposability),
* model count and WMC (determinism; non-smooth circuits handled by
  scaling or-gate gaps),
* MPE upward max-product pass plus traceback,
* marginal derivatives (smoothness),
* evaluation under complete assignments,
* the numpy batch variants of WMC / evaluation / derivatives (one
  length-N row per node, linear and log space).

Weighted circuit families (PSDDs) lower their parameters into
``KIND_PARAM`` leaves; every weighted pass takes an optional ``params``
vector read *at query time*, so in-place parameter updates (EM,
closed-form learning) are reflected without rebuilding anything.

Pure, weight-independent results (model count, sat flags, integer
derivatives) are memoised on the kernel; :meth:`IrKernel.invalidate`
drops those memos explicitly.  Conditioning-style queries are pure
functions of the per-call weights and never write to the memos — see
``tests/test_ir_roundtrip.py`` for the staleness regression tests.

Every query first consults the codegen backend
(:mod:`repro.ir.codegen`): unless ``$REPRO_BACKEND=interp`` (or
:meth:`IrKernel.set_backend`) pins the interpreter, supported circuits
run through a per-circuit compiled straight-line evaluator and only
fall back to the interpreted loops below on
:class:`~repro.ir.codegen.CodegenUnsupported` (parameterised circuits,
counts beyond float64's exact range, literal-free batches, no numpy).
Both backends charge the same budget and pass the same gate.

numpy is imported lazily on the first batch call, so the scalar kernel
works (and this module imports) without numpy.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..perf.instrument import Counter
from .codegen import CodegenUnsupported, resolve_backend
from .core import (CircuitIR, KIND_AND, KIND_FALSE, KIND_LIT, KIND_OR,
                   KIND_PARAM)

__all__ = ["IrKernel", "ir_kernel", "pack_weight_batch",
           "pack_assignment_batch"]

#: sentinel cached on kernels whose circuit the codegen backend
#: declined (parameterised, empty, numpy-less) — skip retrying
_CODEGEN_UNSUPPORTED = object()

Weights = Mapping[int, float]
#: a batch of weight (or assignment) vectors: literal/variable → the
#: value of every batch member, as a length-N numpy array
WeightBatch = Mapping[int, "object"]
Params = Optional[Sequence[float]]


def _numpy() -> Any:
    """numpy, imported on first use (batch paths only)."""
    import numpy
    return numpy


def pack_weight_batch(weight_maps: Sequence[Weights],
                      variables: Sequence[int]) -> Dict[int, "object"]:
    """Stack per-query weight dicts into literal → length-N arrays."""
    np = _numpy()
    batch: Dict[int, object] = {}
    for var in variables:
        for lit in (var, -var):
            batch[lit] = np.array([w[lit] for w in weight_maps],
                                  dtype=float)
    return batch


def pack_assignment_batch(assignments: Sequence[Mapping[int, bool]],
                          variables: Sequence[int]
                          ) -> Dict[int, "object"]:
    """Stack per-query assignments into variable → length-N bool arrays."""
    np = _numpy()
    return {var: np.array([a[var] for a in assignments], dtype=bool)
            for var in variables}


class IrKernel:
    """Dense-array evaluation engine for one flattened circuit."""

    __slots__ = ("ir", "n", "kinds", "lits", "children", "varsets",
                 "or_gap_bits", "or_gap_vars", "budget", "backend",
                 "codegen_store", "_codegen", "_scratch",
                 "_model_count", "_sat", "_derivatives", "_certificate")

    def __init__(self, ir: CircuitIR) -> None:
        self.ir = ir
        #: optional Budget; every query pass charges it the circuit
        #: size up front (queries are linear, so one coarse charge per
        #: pass is the whole cost).  With no explicit budget the
        #: ambient one (Budget.scope()) governs.  Kernels are shared
        #: via ir._kernel — prefer the ambient scope unless the IR is
        #: private to the caller.
        self.budget = None
        self.n = n = ir.n
        self.kinds: Tuple[int, ...] = ir.kinds
        self.lits: Tuple[int, ...] = ir.lits
        self.children: List[Tuple[int, ...]] = ir.child_lists()
        varsets = ir.varsets()
        self.varsets = varsets
        # per-or-gate gap data, aligned with self.children[i]
        self.or_gap_bits: List[Optional[Tuple[int, ...]]] = [None] * n
        self.or_gap_vars: List[Optional[Tuple[Tuple[int, ...], ...]]] = \
            [None] * n
        for i in range(n):
            if self.kinds[i] != KIND_OR:
                continue
            node_vars = varsets[i]
            gaps = []
            gap_vars = []
            for c in self.children[i]:
                missing = node_vars - varsets[c]
                gaps.append(len(missing))
                gap_vars.append(tuple(sorted(missing)))
            self.or_gap_bits[i] = tuple(gaps)
            self.or_gap_vars[i] = tuple(gap_vars)
        self._scratch: List = [None] * n
        #: backend override: None defers to ``$REPRO_BACKEND``
        #: (default ``codegen``); see :meth:`set_backend`
        self.backend: Optional[str] = None
        #: ArtifactStore for cached generated sources: None defers to
        #: ``$REPRO_CACHE_DIR`` (callers with an explicit store — e.g.
        #: ``repro query --cache-dir`` — set this so the ``.gen.py``
        #: source lands next to the circuit's ``.nnf``/``.cert``)
        self.codegen_store: Any = None
        self._codegen: Any = None
        self._model_count: Optional[int] = None
        self._sat: Optional[List[bool]] = None
        self._derivatives: Optional[List[int]] = None
        #: memoized analyze.Certificate (populated by the query gate)
        self._certificate = None

    def invalidate(self) -> None:
        """Drop the memoised pure results (model count, sat flags,
        integer derivatives) *and* any codegen-compiled evaluators, so
        a structurally regenerated circuit can never be served by a
        stale compiled program.  Weighted passes take their weights and
        parameters per call and are never memoised, so this is only
        needed when the *structure* behind a non-interned IR is
        regenerated in place — interned IRs are immutable and never go
        stale."""
        self._model_count = None
        self._sat = None
        self._derivatives = None
        self._codegen = None

    # -- backend selection ---------------------------------------------------
    def set_backend(self, backend: Optional[str]) -> None:
        """Pin this kernel to ``"codegen"`` or ``"interp"``; ``None``
        defers back to ``$REPRO_BACKEND`` (default ``codegen``).  Any
        compiled evaluator is dropped so the choice takes effect
        immediately."""
        if backend is not None:
            resolve_backend(backend)  # validate
        self.backend = backend
        self._codegen = None

    def backend_name(self) -> str:
        """The backend this kernel resolves to right now."""
        return resolve_backend(self.backend)

    def _compiled(self) -> Any:
        """The circuit's CompiledCircuit, or None when the interpreter
        should run (interp backend, unsupported circuit, no numpy).
        The compiled program is cached until :meth:`invalidate` or
        :meth:`set_backend`."""
        if resolve_backend(self.backend) != "codegen":
            return None
        cg = self._codegen
        if cg is None:
            from .codegen import compile_circuit
            try:
                cg = compile_circuit(self, store=self.codegen_store)
            except CodegenUnsupported:
                cg = _CODEGEN_UNSUPPORTED
            self._codegen = cg
        return None if cg is _CODEGEN_UNSUPPORTED else cg

    def _charge(self, passes: int = 1) -> None:
        """Charge the (explicit or ambient) budget for ``passes`` full
        sweeps of the circuit; raises BudgetExceeded on exhaustion."""
        from ..limits.budget import resolve_budget
        budget = resolve_budget(self.budget)
        if budget is not None:
            budget.tick(passes * self.n,
                        partial={"operation": "kernel-pass",
                                 "circuit_nodes": self.n})

    def _gated(self, query: str) -> "IrKernel":
        """The query gate (:mod:`repro.analyze.gate`): the kernel the
        query should run on.  ``trust`` mode returns ``self``
        untouched; ``strict`` raises PropertyViolation when the
        query's required properties are not certified; ``repair``
        may return the kernel of a smoothed twin circuit instead."""
        from ..analyze.gate import check_kernel
        return check_kernel(self, query)

    def _params(self, params: Params, i: int) -> float:
        if params is None:
            raise ValueError(
                "circuit has parameter leaves; pass params= (one value "
                "per KIND_PARAM index)")
        return params[self.lits[i]]

    # -- satisfiability ------------------------------------------------------
    def sat_flags(self, stats: Counter | None = None) -> List[bool]:
        """Per-node satisfiability of a DNNF (memoised)."""
        if self._sat is None:
            self._charge()
            if stats is not None:
                stats.incr("nodes_visited", self.n)
            flags: List[bool] = [False] * self.n
            kinds = self.kinds
            children = self.children
            for i in range(self.n):
                kind = kinds[i]
                if kind == KIND_AND:
                    flags[i] = all(flags[c] for c in children[i])
                elif kind == KIND_OR:
                    flags[i] = any(flags[c] for c in children[i])
                else:
                    flags[i] = kind != KIND_FALSE
            self._sat = flags
        return self._sat

    def sat(self, stats: Counter | None = None) -> bool:
        kernel = self._gated("sat")
        if kernel is not self:
            return kernel.sat(stats)
        if self._sat is None:
            cg = self._compiled()
            if cg is not None:
                try:
                    return cg.sat(stats)
                except CodegenUnsupported:
                    cg.stats.incr("codegen_fallbacks")
        return self.sat_flags(stats)[self.n - 1] if self.n else False

    def sat_model(self, stats: Counter | None = None
                  ) -> Optional[Dict[int, bool]]:
        """A partial satisfying assignment of a DNNF, or None."""
        kernel = self._gated("sat_model")
        if kernel is not self:
            return kernel.sat_model(stats)
        flags = self.sat_flags(stats)
        if not self.n or not flags[self.n - 1]:
            return None
        model: Dict[int, bool] = {}
        stack = [self.n - 1]
        kinds = self.kinds
        while stack:
            i = stack.pop()
            kind = kinds[i]
            if kind == KIND_LIT:
                lit = self.lits[i]
                model[abs(lit)] = lit > 0
            elif kind == KIND_AND:
                stack.extend(self.children[i])
            elif kind == KIND_OR:
                for c in self.children[i]:
                    if flags[c]:
                        stack.append(c)
                        break
        return model

    # -- counting ------------------------------------------------------------
    def model_count(self, stats: Counter | None = None) -> int:
        """#SAT of a d-DNNF over the circuit's own variables (memoised).
        Parameter leaves count as 1 (the support of a weighted circuit).
        """
        kernel = self._gated("count")
        if kernel is not self:
            return kernel.model_count(stats)
        if self._model_count is None:
            cg = self._compiled()
            if cg is not None:
                try:
                    self._model_count = cg.model_count(stats)
                    return self._model_count
                except CodegenUnsupported:
                    cg.stats.incr("codegen_fallbacks")
            self._model_count = self._count_pass(stats)
        elif stats is not None:
            stats.incr("kernel_memo_hits")
        return self._model_count

    def _count_pass(self, stats: Counter | None = None) -> int:
        self._charge()
        if stats is not None:
            stats.incr("nodes_visited", self.n)
        counts = self._scratch
        kinds = self.kinds
        children = self.children
        gap_bits = self.or_gap_bits
        for i in range(self.n):
            kind = kinds[i]
            if kind == KIND_AND:
                value = 1
                for c in children[i]:
                    value *= counts[c]
                counts[i] = value
            elif kind == KIND_OR:
                total = 0
                gaps = gap_bits[i]
                kids = children[i]
                for k in range(len(kids)):
                    total += counts[kids[k]] << gaps[k]
                counts[i] = total
            else:
                counts[i] = 0 if kind == KIND_FALSE else 1
        return counts[self.n - 1] if self.n else 0

    def wmc(self, weights: Weights, stats: Counter | None = None,
            params: Params = None) -> float:
        """Weighted model count of a d-DNNF over the circuit variables.

        Or-gate gap variables contribute ``W(v) + W(-v)``; the caller
        widens to extra variables the same way.  Parameter leaves read
        ``params`` (PSDD θs) at call time.
        """
        kernel = self._gated("wmc")
        if kernel is not self:
            return kernel.wmc(weights, stats, params)
        cg = self._compiled()
        if cg is not None:
            try:
                return cg.wmc(weights, stats)
            except CodegenUnsupported:
                cg.stats.incr("codegen_fallbacks")
        self._charge()
        if stats is not None:
            stats.incr("nodes_visited", self.n)
        values = self._scratch
        kinds = self.kinds
        children = self.children
        gap_vars = self.or_gap_vars
        lits = self.lits
        for i in range(self.n):
            kind = kinds[i]
            if kind == KIND_LIT:
                values[i] = weights[lits[i]]
            elif kind == KIND_AND:
                value = 1.0
                for c in children[i]:
                    value *= values[c]
                values[i] = value
            elif kind == KIND_OR:
                total = 0.0
                gaps = gap_vars[i]
                kids = children[i]
                for k in range(len(kids)):
                    factor = values[kids[k]]
                    for var in gaps[k]:
                        factor *= weights[var] + weights[-var]
                    total += factor
                values[i] = total
            elif kind == KIND_PARAM:
                values[i] = self._params(params, i)
            else:
                values[i] = 0.0 if kind == KIND_FALSE else 1.0
        return values[self.n - 1] if self.n else 0.0

    # -- optimisation --------------------------------------------------------
    def mpe(self, weights: Weights, stats: Counter | None = None,
            params: Params = None) -> Tuple[float, Dict[int, bool]]:
        """Max-product upward pass plus traceback on a d-DNNF."""
        kernel = self._gated("mpe")
        if kernel is not self:
            return kernel.mpe(weights, stats, params)
        cg = self._compiled()
        if cg is not None:
            try:
                return cg.mpe(weights, stats)
            except CodegenUnsupported:
                cg.stats.incr("codegen_fallbacks")
        self._charge()
        if stats is not None:
            stats.incr("nodes_visited", self.n)

        def best_literal(var: int) -> int:
            return var if weights[var] >= weights[-var] else -var

        values: List[float] = [0.0] * self.n
        kinds = self.kinds
        children = self.children
        gap_vars = self.or_gap_vars
        neg_inf = float("-inf")
        for i in range(self.n):
            kind = kinds[i]
            if kind == KIND_LIT:
                values[i] = weights[self.lits[i]]
            elif kind == KIND_AND:
                value = 1.0
                for c in children[i]:
                    value *= values[c]
                values[i] = value
            elif kind == KIND_OR:
                best = neg_inf
                gaps = gap_vars[i]
                kids = children[i]
                for k in range(len(kids)):
                    value = values[kids[k]]
                    for var in gaps[k]:
                        value *= weights[best_literal(var)]
                    if value > best:
                        best = value
                values[i] = best
            elif kind == KIND_PARAM:
                values[i] = self._params(params, i)
            else:
                values[i] = neg_inf if kind == KIND_FALSE else 1.0
        assignment: Dict[int, bool] = {}
        if not self.n:
            return 0.0, assignment
        stack = [self.n - 1]
        while stack:
            i = stack.pop()
            kind = kinds[i]
            if kind == KIND_LIT:
                lit = self.lits[i]
                assignment[abs(lit)] = lit > 0
            elif kind == KIND_AND:
                stack.extend(children[i])
            elif kind == KIND_OR:
                gaps = gap_vars[i]
                kids = children[i]
                best_k, best_value = -1, neg_inf
                for k in range(len(kids)):
                    value = values[kids[k]]
                    for var in gaps[k]:
                        value *= weights[best_literal(var)]
                    if value > best_value:
                        best_k, best_value = k, value
                if best_k >= 0:
                    for var in gaps[best_k]:
                        lit = best_literal(var)
                        assignment[abs(lit)] = lit > 0
                    stack.append(kids[best_k])
        return values[self.n - 1], assignment

    # -- marginals -----------------------------------------------------------
    def smooth_or_gates(self) -> bool:
        """True when every or-gate's children share one variable set."""
        for i in range(self.n):
            if self.kinds[i] == KIND_OR and self.children[i]:
                gaps = self.or_gap_bits[i]
                if any(gaps):
                    return False
                first = self.varsets[self.children[i][0]]
                for c in self.children[i][1:]:
                    if self.varsets[c] != first:
                        return False
        return True

    def derivatives(self, stats: Counter | None = None) -> List[int]:
        """d(root count)/d(node) for every node of a smooth d-DNNF
        (memoised): the downward differential pass of the marginals
        algorithm."""
        # gate only (never delegated: the result is indexed by this
        # kernel's node ids — repair mode callers use marginals())
        self._gated("derivatives")
        if self._derivatives is not None:
            if stats is not None:
                stats.incr("kernel_memo_hits")
            return self._derivatives
        self._charge(2)
        if stats is not None:
            stats.incr("nodes_visited", 2 * self.n)
        counts: List[int] = [0] * self.n
        kinds = self.kinds
        children = self.children
        for i in range(self.n):
            kind = kinds[i]
            if kind == KIND_AND:
                value = 1
                for c in children[i]:
                    value *= counts[c]
                counts[i] = value
            elif kind == KIND_OR:
                if self.children[i] and \
                        len({self.varsets[c] for c in children[i]}) != 1:
                    raise ValueError(
                        "marginal_counts requires a smooth circuit")
                counts[i] = sum(counts[c] for c in children[i])
            else:
                counts[i] = 0 if kind == KIND_FALSE else 1
        derivative: List[int] = [0] * self.n
        if self.n:
            derivative[self.n - 1] = 1
        for i in range(self.n - 1, -1, -1):
            d = derivative[i]
            kind = kinds[i]
            if d == 0 or (kind != KIND_AND and kind != KIND_OR):
                continue
            kids = children[i]
            if kind == KIND_OR:
                for c in kids:
                    derivative[c] += d
            else:
                for c in kids:
                    partial = d
                    for s in kids:
                        if s != c:
                            partial *= counts[s]
                    derivative[c] += partial
        self._derivatives = derivative
        return derivative

    def marginals(self, stats: Counter | None = None) -> Dict[int, int]:
        """Literal → number of root models containing it (smooth
        d-DNNF); unmentioned variables are the caller's concern."""
        kernel = self._gated("marginals")
        if kernel is not self:
            return kernel.marginals(stats)
        derivative = self.derivatives(stats)
        result: Dict[int, int] = {}
        for i in range(self.n):
            if self.kinds[i] == KIND_LIT:
                lit = self.lits[i]
                result[lit] = result.get(lit, 0) + derivative[i]
        return result

    # -- evaluation ----------------------------------------------------------
    def evaluate(self, assignment: Mapping[int, bool],
                 stats: Counter | None = None) -> bool:
        cg = self._compiled()
        if cg is not None:
            try:
                return cg.evaluate(assignment, stats)
            except CodegenUnsupported:
                cg.stats.incr("codegen_fallbacks")
        self._charge()
        if stats is not None:
            stats.incr("nodes_visited", self.n)
        values = self._scratch
        kinds = self.kinds
        children = self.children
        for i in range(self.n):
            kind = kinds[i]
            if kind == KIND_LIT:
                lit = self.lits[i]
                value = assignment[abs(lit)]
                values[i] = value if lit > 0 else not value
            elif kind == KIND_AND:
                values[i] = all(values[c] for c in children[i])
            elif kind == KIND_OR:
                values[i] = any(values[c] for c in children[i])
            else:
                values[i] = kind != KIND_FALSE
        return bool(values[self.n - 1]) if self.n else False

    # -- batched passes ------------------------------------------------------
    # One numpy row of length N per node: the Python loop stays O(nodes)
    # while every gate covers the whole batch in C.

    @staticmethod
    def _batch_size(batch: WeightBatch) -> int:
        for value in batch.values():
            return len(value)
        raise ValueError("cannot infer the batch size from an empty "
                         "weight/assignment batch")

    def _count_batch_stats(self, stats: Counter | None, batch: int,
                           passes: int = 1) -> None:
        self._charge(passes)
        if stats is not None:
            stats.incr("nodes_visited", passes * self.n)
            stats.incr("batch_columns", batch)

    def wmc_batch(self, weights: WeightBatch,
                  stats: Counter | None = None,
                  params: Params = None) -> Any:
        """Weighted model counts of N weight vectors in one pass.

        ``weights`` maps every needed literal to a length-N array (see
        :func:`pack_weight_batch`).  Returns a length-N float array;
        column ``j`` equals ``self.wmc(column j of weights)``.
        """
        kernel = self._gated("wmc")
        if kernel is not self:
            return kernel.wmc_batch(weights, stats, params)
        cg = self._compiled()
        if cg is not None:
            try:
                return cg.wmc_batch(weights, stats)
            except CodegenUnsupported:
                cg.stats.incr("codegen_fallbacks")
        np = _numpy()
        batch = self._batch_size(weights)
        self._count_batch_stats(stats, batch)
        values: List = [None] * self.n
        kinds = self.kinds
        children = self.children
        gap_vars = self.or_gap_vars
        lits = self.lits
        ones = np.ones(batch)
        zeros = np.zeros(batch)
        for i in range(self.n):
            kind = kinds[i]
            if kind == KIND_LIT:
                values[i] = weights[lits[i]]
            elif kind == KIND_AND:
                value = ones
                for c in children[i]:
                    value = value * values[c]
                values[i] = value
            elif kind == KIND_OR:
                total = zeros
                gaps = gap_vars[i]
                kids = children[i]
                for k in range(len(kids)):
                    factor = values[kids[k]]
                    for var in gaps[k]:
                        factor = factor * (weights[var] + weights[-var])
                    total = total + factor
                values[i] = total
            elif kind == KIND_PARAM:
                values[i] = ones * self._params(params, i)
            else:
                values[i] = zeros if kind == KIND_FALSE else ones
        return values[self.n - 1].copy() if self.n else zeros

    def wmc_log_batch(self, log_weights: WeightBatch,
                      stats: Counter | None = None,
                      params: Params = None) -> Any:
        """Log-space :meth:`wmc_batch`: inputs and output are log
        weights (``-inf`` for weight zero), so deep circuits with tiny
        per-model weights cannot underflow.  ``params`` stays linear
        and is logged here.
        """
        kernel = self._gated("wmc")
        if kernel is not self:
            return kernel.wmc_log_batch(log_weights, stats, params)
        cg = self._compiled()
        if cg is not None:
            try:
                return cg.wmc_log_batch(log_weights, stats)
            except CodegenUnsupported:
                cg.stats.incr("codegen_fallbacks")
        np = _numpy()
        batch = self._batch_size(log_weights)
        self._count_batch_stats(stats, batch)
        values: List = [None] * self.n
        kinds = self.kinds
        children = self.children
        gap_vars = self.or_gap_vars
        lits = self.lits
        zeros = np.zeros(batch)
        neg_inf = np.full(batch, -np.inf)
        for i in range(self.n):
            kind = kinds[i]
            if kind == KIND_LIT:
                values[i] = log_weights[lits[i]]
            elif kind == KIND_AND:
                value = zeros
                for c in children[i]:
                    value = value + values[c]
                values[i] = value
            elif kind == KIND_OR:
                gaps = gap_vars[i]
                kids = children[i]
                if not kids:
                    values[i] = neg_inf
                    continue
                rows = []
                for k in range(len(kids)):
                    row = values[kids[k]]
                    for var in gaps[k]:
                        row = row + np.logaddexp(log_weights[var],
                                                 log_weights[-var])
                    rows.append(row)
                total = rows[0]
                for row in rows[1:]:
                    total = np.logaddexp(total, row)
                values[i] = total
            elif kind == KIND_PARAM:
                theta = self._params(params, i)
                with np.errstate(divide="ignore"):
                    values[i] = zeros + np.log(theta)
            else:
                values[i] = neg_inf if kind == KIND_FALSE else zeros
        return values[self.n - 1].copy() if self.n else neg_inf

    def evaluate_batch(self, assignment: WeightBatch,
                       stats: Counter | None = None) -> Any:
        """Evaluate N complete assignments in one pass.

        ``assignment`` maps every circuit variable to a length-N bool
        array (see :func:`pack_assignment_batch`); returns a length-N
        bool array.
        """
        cg = self._compiled()
        if cg is not None:
            try:
                return cg.evaluate_batch(assignment, stats)
            except CodegenUnsupported:
                cg.stats.incr("codegen_fallbacks")
        np = _numpy()
        batch = self._batch_size(assignment)
        self._count_batch_stats(stats, batch)
        values: List = [None] * self.n
        kinds = self.kinds
        children = self.children
        true_row = np.ones(batch, dtype=bool)
        false_row = np.zeros(batch, dtype=bool)
        for i in range(self.n):
            kind = kinds[i]
            if kind == KIND_LIT:
                lit = self.lits[i]
                column = assignment[abs(lit)]
                values[i] = column if lit > 0 else ~column
            elif kind == KIND_AND:
                value = true_row
                for c in children[i]:
                    value = value & values[c]
                values[i] = value
            elif kind == KIND_OR:
                value = false_row
                for c in children[i]:
                    value = value | values[c]
                values[i] = value
            else:
                values[i] = false_row if kind == KIND_FALSE else true_row
        return values[self.n - 1].copy() if self.n else false_row

    def derivatives_batch(self, weights: WeightBatch,
                          stats: Counter | None = None,
                          params: Params = None) -> Tuple[Any, Any]:
        """Upward values and downward derivatives for N weight vectors.

        Returns ``(values, derivatives)``, two lists of length-N arrays
        indexed by dense node id: ``derivatives[i][j]`` is
        ∂(root value)/∂(node i value) under weight vector ``j``.  And
        gates distribute to their children with linear prefix/suffix
        products (no sibling re-multiplication); or-gate gap variables
        contribute their ``W(v) + W(-v)`` factor on the edge.
        """
        self._gated("derivatives")  # gate only: node-indexed result
        np = _numpy()
        batch = self._batch_size(weights)
        self._count_batch_stats(stats, batch, passes=2)
        values: List = [None] * self.n
        kinds = self.kinds
        children = self.children
        gap_vars = self.or_gap_vars
        lits = self.lits
        ones = np.ones(batch)
        zeros = np.zeros(batch)
        for i in range(self.n):
            kind = kinds[i]
            if kind == KIND_LIT:
                values[i] = weights[lits[i]]
            elif kind == KIND_AND:
                value = ones
                for c in children[i]:
                    value = value * values[c]
                values[i] = value
            elif kind == KIND_OR:
                total = zeros
                gaps = gap_vars[i]
                kids = children[i]
                for k in range(len(kids)):
                    factor = values[kids[k]]
                    for var in gaps[k]:
                        factor = factor * (weights[var] + weights[-var])
                    total = total + factor
                values[i] = total
            elif kind == KIND_PARAM:
                values[i] = ones * self._params(params, i)
            else:
                values[i] = zeros if kind == KIND_FALSE else ones
        derivative: List = [zeros] * self.n
        if self.n:
            derivative[self.n - 1] = ones
        for i in range(self.n - 1, -1, -1):
            kind = kinds[i]
            if kind != KIND_AND and kind != KIND_OR:
                continue
            d = derivative[i]
            kids = children[i]
            if kind == KIND_OR:
                gaps = gap_vars[i]
                for k in range(len(kids)):
                    edge = d
                    for var in gaps[k]:
                        edge = edge * (weights[var] + weights[-var])
                    derivative[kids[k]] = derivative[kids[k]] + edge
            else:
                k = len(kids)
                # prefix[j] = Π values of kids < j; suffix from the right
                prefix = ones
                prefixes = [None] * k
                for j in range(k):
                    prefixes[j] = prefix
                    prefix = prefix * values[kids[j]]
                suffix = ones
                for j in range(k - 1, -1, -1):
                    derivative[kids[j]] = derivative[kids[j]] + \
                        d * prefixes[j] * suffix
                    suffix = suffix * values[kids[j]]
        return values, derivative

    def derivatives_log_batch(self, log_weights: WeightBatch,
                              stats: Counter | None = None,
                              params: Params = None) -> Tuple[Any, Any]:
        """Log-space :meth:`derivatives_batch` (values and derivatives
        are logs; ``-inf`` encodes zero)."""
        self._gated("derivatives")  # gate only: node-indexed result
        np = _numpy()
        batch = self._batch_size(log_weights)
        self._count_batch_stats(stats, batch, passes=2)
        values: List = [None] * self.n
        kinds = self.kinds
        children = self.children
        gap_vars = self.or_gap_vars
        lits = self.lits
        zeros = np.zeros(batch)
        neg_inf = np.full(batch, -np.inf)
        for i in range(self.n):
            kind = kinds[i]
            if kind == KIND_LIT:
                values[i] = log_weights[lits[i]]
            elif kind == KIND_AND:
                value = zeros
                for c in children[i]:
                    value = value + values[c]
                values[i] = value
            elif kind == KIND_OR:
                gaps = gap_vars[i]
                kids = children[i]
                if not kids:
                    values[i] = neg_inf
                    continue
                total = None
                for k in range(len(kids)):
                    row = values[kids[k]]
                    for var in gaps[k]:
                        row = row + np.logaddexp(log_weights[var],
                                                 log_weights[-var])
                    total = row if total is None else \
                        np.logaddexp(total, row)
                values[i] = total
            elif kind == KIND_PARAM:
                theta = self._params(params, i)
                with np.errstate(divide="ignore"):
                    values[i] = zeros + np.log(theta)
            else:
                values[i] = neg_inf if kind == KIND_FALSE else zeros
        derivative: List = [neg_inf] * self.n
        if self.n:
            derivative[self.n - 1] = zeros
        for i in range(self.n - 1, -1, -1):
            kind = kinds[i]
            if kind != KIND_AND and kind != KIND_OR:
                continue
            d = derivative[i]
            kids = children[i]
            if kind == KIND_OR:
                gaps = gap_vars[i]
                for k in range(len(kids)):
                    edge = d
                    for var in gaps[k]:
                        edge = edge + np.logaddexp(log_weights[var],
                                                   log_weights[-var])
                    derivative[kids[k]] = np.logaddexp(
                        derivative[kids[k]], edge)
            else:
                k = len(kids)
                prefix = zeros
                prefixes = [None] * k
                for j in range(k):
                    prefixes[j] = prefix
                    prefix = prefix + values[kids[j]]
                suffix = zeros
                for j in range(k - 1, -1, -1):
                    derivative[kids[j]] = np.logaddexp(
                        derivative[kids[j]], d + prefixes[j] + suffix)
                    suffix = suffix + values[kids[j]]
        return values, derivative


def ir_kernel(ir: CircuitIR) -> IrKernel:
    """The (cached) kernel for ``ir``.

    Cached on the IR object itself; since interned IRs are shared, two
    structurally identical circuits lowered independently get the same
    kernel (and its memoised pure results).
    """
    kernel = ir._kernel
    if kernel is None:
        kernel = ir._kernel = IrKernel(ir)
    return kernel
