"""The content-addressed compilation cache (artifact store).

Compilation is the expensive phase of every knowledge-compilation
pipeline; queries on the compiled circuit are linear.  The store makes
compilation *cacheable across processes*: an artifact is addressed by
the SHA-256 of everything that determines the compiler's output —

    key = sha256(compiler name ‖ canonical config JSON ‖ DIMACS text)

— and persisted to disk as canonical text (``.nnf`` for d-DNNF
compilers, ``.sdd`` + ``.vtree`` for SDD compilation).  A warm lookup
is a file read plus a parse, which is O(circuit) instead of
O(search); the benchmark harness records the resulting hit rates and
the warm/cold compile ratio.

Layout: ``<root>/<key[:2]>/<key>.<ext>`` — two-level fan-out keeps
directories small.  Writes go through a same-directory temp file +
rename, so concurrent writers of the same key are safe (last rename
wins, both contents are identical by construction).

:func:`default_store` reads the ``REPRO_CACHE_DIR`` environment
variable, so the CLI and benchmarks can opt in without plumbing.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping, Optional, Tuple

from ..perf.instrument import Counter
from .core import CircuitIR
from .serialize import (ir_from_csr_buffer, ir_from_nnf_text,
                        ir_to_csr_bytes, ir_to_nnf_text, read_sdd_file,
                        write_sdd_file, write_vtree_text)

__all__ = ["ArtifactStore", "artifact_key", "default_store"]

#: environment variable naming the default artifact-store directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def artifact_key(dimacs: str, compiler: str,
                 config: Optional[Mapping] = None) -> str:
    """The content address of a compilation: SHA-256 over the compiler
    name, its canonicalised config and the DIMACS input text."""
    blob = "\n".join([
        compiler,
        json.dumps(dict(config or {}), sort_keys=True,
                   separators=(",", ":"), default=str),
        dimacs,
    ])
    return hashlib.sha256(blob.encode()).hexdigest()


class ArtifactStore:
    """A directory of compiled circuits addressed by content key.

    ``stats`` counts ``artifact_hits`` / ``artifact_misses`` /
    ``artifact_writes`` / ``artifact_corrupt`` over the store's
    lifetime.

    A cached artifact that fails to parse (truncated write, bit rot,
    foreign file) is treated as a miss, not an error: the bad file is
    quarantined by renaming it to ``<name>.corrupt`` (so the next
    lookup recompiles and rewrites cleanly, and the evidence survives
    for inspection) and counted in ``artifact_corrupt``.

    With ``verify=True`` (the default) the store also refuses to serve
    *parseable-but-wrong* artifacts: every load re-checks the claimed
    tractability properties through :mod:`repro.analyze` and
    quarantines on certificate failure (``artifact_cert_fail``).  The
    verification result is memoised in a ``.cert`` sidecar keyed by
    the artifact's content hash, so re-certification happens once —
    warm loads are back to file-read + parse cost
    (``artifact_cert_hits``).
    """

    def __init__(self, root: "str | Path", verify: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = Counter()
        self.verify = verify

    def path_for(self, key: str, ext: str) -> Path:
        return self.root / key[:2] / f"{key}.{ext}"

    @staticmethod
    def _atomic_replace(path: Path, data: "str | bytes") -> Path:
        """Publish ``data`` at ``path`` atomically: write a private
        ``*.tmp`` in the same directory, fsync, then ``os.replace``.

        THE single write primitive for every artifact extension
        (``.nnf``/``.sdd``/``.vtree``/``.cert``/``.csr``/``.gen.py``)
        — a reader concurrent with any writer sees either the old
        complete file or the new complete file, never a torn prefix
        (which would land a perfectly good artifact in quarantine).
        Concurrent writers of the same content-addressed key both win:
        last rename shows, and the bytes are identical by construction.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            mode = "wb" if isinstance(data, bytes) else "w"
            with os.fdopen(fd, mode) as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def _write(self, path: Path, text: str) -> Path:
        self._atomic_replace(path, text)
        self.stats.incr("artifact_writes")
        return path

    def _write_bytes(self, path: Path, blob: bytes) -> Path:
        """:meth:`_write` for binary sidecars (same atomic rename).
        Sidecars are bookkeeping, not artifact traffic: counted under
        ``artifact_sidecar_writes``, like ``.cert`` files."""
        self._atomic_replace(path, blob)
        self.stats.incr("artifact_sidecar_writes")
        return path

    @staticmethod
    def _move_aside(*paths: Path) -> None:
        for path in paths:
            try:
                os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
            except OSError:
                pass  # already gone or unmovable: the miss still stands

    def _quarantine(self, *paths: Path) -> None:
        """Move unparseable artifacts aside and account the corruption
        as a miss, so the caller recompiles instead of crashing."""
        self._move_aside(*paths)
        self.stats.incr("artifact_corrupt")
        self.stats.incr("artifact_misses")

    # -- property certificates (.cert sidecars) ------------------------------
    @staticmethod
    def _content_hash(*texts: str) -> str:
        """Content hash of an artifact's raw text(s) — certificate
        binding.  Independent of parse flags, so mutated bytes always
        invalidate the certificate."""
        return hashlib.sha256("\x00".join(texts).encode()).hexdigest()

    def _read_cert(self, key: str) -> Optional[dict]:
        try:
            raw = json.loads(self.path_for(key, "cert").read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(raw, dict) or \
                raw.get("schema") != "repro-cert/1":
            return None
        return raw

    def _write_cert(self, key: str, digest: str, flags: int,
                    status: Mapping[str, str], method: str,
                    ir_digest: Optional[str] = None,
                    variants: Optional[Mapping[str, Any]] = None) -> None:
        cert = {"schema": "repro-cert/1", "digest": digest,
                "flags": flags, "status": dict(status),
                "method": method}
        if ir_digest is not None:
            cert["ir_digest"] = ir_digest
        # preserve recorded optimized variants and the proof verdict
        # across certificate rewrites — but only while they describe
        # the same base artifact (digest unchanged)
        old = self._read_cert(key)
        if old is not None and old.get("digest") == digest:
            if old.get("proof") is not None:
                cert["proof"] = old["proof"]
            if variants is None:
                variants = old.get("variants")
                if ir_digest is None:
                    cert_ir = old.get("ir_digest")
                    if cert_ir is not None:
                        cert["ir_digest"] = cert_ir
        if variants:
            cert["variants"] = dict(variants)
        # certificates are bookkeeping, not artifact traffic: bypass
        # the artifact_writes stat but keep the atomic rename
        self._atomic_replace(self.path_for(key, "cert"),
                             json.dumps(cert, sort_keys=True) + "\n")

    def _certify_load(self, key: str, ir: CircuitIR, claimed: int,
                      digest: str, vtree: Any = None,
                      *paths: Path) -> bool:
        """Serve-time certification: trust a digest-matching ``.cert``
        covering the claimed flags, otherwise re-verify; falsified
        claims quarantine the artifact (and certificate).  Returns
        True when the artifact may be served."""
        cert = self._read_cert(key)
        if cert is not None and cert.get("digest") == digest and \
                (claimed & int(cert.get("flags", 0))) == claimed:
            self.stats.incr("artifact_cert_hits")
            return True
        from ..analyze.certify import certify
        result = certify(ir, flags=claimed, vtree=vtree)
        if claimed & result.falsified_mask:
            self._quarantine(*paths)
            cert_path = self.path_for(key, "cert")
            try:
                os.unlink(cert_path)
            except OSError:
                pass
            self.stats.incr("artifact_cert_fail")
            return False
        self._write_cert(key, digest, claimed, result.summary(),
                         "verified", ir_digest=ir.digest())
        self.stats.incr("artifact_verified")
        return True

    # -- equivalence proofs (.proof sidecars) --------------------------------
    def save_proof(self, key: str, trace: str) -> Path:
        """File a ``repro-proof/1`` equivalence trace next to the
        artifact (``artifact_proof_writes``).  The trace is opaque to
        the store — verification is the checker's job
        (:func:`repro.analyze.proofs.verify_stored_proof`)."""
        path = self._atomic_replace(self.path_for(key, "proof"), trace)
        self.stats.incr("artifact_proof_writes")
        return path

    def load_proof(self, key: str) -> Optional[str]:
        """The stored equivalence trace for ``key``, or None
        (``artifact_proof_hits`` / ``artifact_proof_misses``)."""
        try:
            text = self.path_for(key, "proof").read_text()
        except OSError:
            self.stats.incr("artifact_proof_misses")
            return None
        self.stats.incr("artifact_proof_hits")
        return text

    def proof_status(self, key: str) -> Optional[str]:
        """The recorded checker verdict for ``key``'s trace, with its
        bindings re-checked: the ``.cert`` must describe the current
        ``.nnf`` bytes and the recorded trace hash must match the
        current ``.proof`` bytes.  Returns ``"PROVED"`` (or another
        recorded verdict) only when both bindings hold, else None —
        so a mutated artifact or trace silently demotes to
        'unproved', never to a stale 'proved'."""
        cert = self._read_cert(key)
        proof = (cert or {}).get("proof")
        if not isinstance(proof, dict):
            return None
        try:
            nnf_text = self.path_for(key, "nnf").read_text()
            trace = self.path_for(key, "proof").read_text()
        except OSError:
            return None
        if cert.get("digest") != self._content_hash(nnf_text):
            return None
        if proof.get("trace_sha") != self._content_hash(trace):
            return None
        verdict = proof.get("verdict")
        return str(verdict) if verdict else None

    def record_proof_verdict(self, key: str, verdict: str,
                             steps: int = 0) -> None:
        """Memoise a checker verdict in the ``.cert`` sidecar, bound
        to the current trace bytes (so a later trace mutation voids
        it)."""
        cert = self._read_cert(key)
        if cert is None:
            return
        try:
            trace = self.path_for(key, "proof").read_text()
        except OSError:
            return
        cert["proof"] = {"verdict": str(verdict),
                         "trace_sha": self._content_hash(trace),
                         "steps": int(steps)}
        self._atomic_replace(self.path_for(key, "cert"),
                             json.dumps(cert, sort_keys=True) + "\n")

    def quarantine_refuted(self, key: str) -> None:
        """A refuted proof means the *artifact* cannot be trusted:
        move the ``.nnf``/``.csr``/``.proof`` trio aside as
        ``*.corrupt`` evidence, drop the certificate, and count
        ``artifact_proof_refuted``."""
        self._move_aside(self.path_for(key, "nnf"),
                         self.path_for(key, "csr"),
                         self.path_for(key, "proof"))
        try:
            os.unlink(self.path_for(key, "cert"))
        except OSError:
            pass
        self.stats.incr("artifact_proof_refuted")
        self.stats.incr("artifact_corrupt")

    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when unused)."""
        hits = self.stats["artifact_hits"]
        total = hits + self.stats["artifact_misses"]
        return hits / total if total else 0.0

    # -- d-DNNF artifacts (.nnf + .csr) -------------------------------------
    def _load_csr(self, key: str,
                  flags: Optional[int]) -> Optional[CircuitIR]:
        """The memory-mapped warm path: decode the binary ``.csr``
        sidecar (written at store time) instead of parsing text.  A
        missing sidecar returns None silently (the text path decides
        hit or miss); a corrupt one is quarantined — ``.csr.corrupt``
        alongside, ``artifact_corrupt`` counted — and the load falls
        back to the text artifact, which re-parses from scratch.

        The ``.nnf`` text stays authoritative: the sidecar embeds the
        hash of the text it was decoded from, and a mismatch (the text
        was rewritten or mutated underneath the sidecar) silently
        defers to the text path, whose parse + serve-time
        certification sees the *current* bytes.
        """
        path = self.path_for(key, "csr")
        try:
            with open(path, "rb") as handle:
                mapped = mmap.mmap(handle.fileno(), 0,
                                   access=mmap.ACCESS_READ)
                try:
                    ir, text_hash = ir_from_csr_buffer(mapped)
                finally:
                    mapped.close()
        except OSError:
            return None
        except Exception:
            self._move_aside(path)
            self.stats.incr("artifact_corrupt")
            return None
        try:
            raw = self.path_for(key, "nnf").read_bytes()
        except OSError:
            return None  # orphan sidecar: the text path rules it a miss
        if hashlib.sha256(raw).hexdigest() != text_hash:
            return None  # stale sidecar: text changed underneath it
        if self.verify:
            claimed = ir.flags if flags is None else flags
            if not self._certify_load(key, ir, claimed, text_hash,
                                      None, path):
                return None
        self.stats.incr("artifact_mmap_hits")
        return ir.intern()

    def load_nnf(self, key: str,
                 flags: Optional[int] = None) -> Optional[CircuitIR]:
        """The cached IR for ``key``, or None on a miss.

        Warm loads prefer the binary ``.csr`` sidecar — a memory-mapped
        decode of the CSR arrays that skips text parsing entirely
        (``artifact_mmap_hits``) — and fall back to reading and parsing
        the ``.nnf`` text when the sidecar is missing or quarantined.

        ``flags`` is forwarded to :func:`ir_from_nnf_text`: a caller
        that knows the stored circuit's properties (a compiler loading
        its own output) passes them to skip the structural scan, which
        keeps the warm path at file-read + parse cost.
        """
        ir = self._load_csr(key, flags)
        if ir is not None:
            self.stats.incr("artifact_hits")
            return ir
        path = self.path_for(key, "nnf")
        try:
            text = path.read_text()
        except OSError:
            self.stats.incr("artifact_misses")
            return None
        try:
            ir = ir_from_nnf_text(text, flags=flags)
        except Exception:
            self._quarantine(path)
            return None
        if self.verify:
            claimed = ir.flags if flags is None else flags
            if not self._certify_load(key, ir, claimed,
                                      self._content_hash(text), None,
                                      path):
                return None
        self.stats.incr("artifact_hits")
        return ir

    def save_nnf(self, key: str, ir: CircuitIR) -> Path:
        text = ir_to_nnf_text(ir)
        path = self._write(self.path_for(key, "nnf"), text)
        # the binary CSR twin serves memory-mapped warm loads; its
        # embedded text hash binds it to the same .cert sidecar
        self._write_bytes(self.path_for(key, "csr"),
                          ir_to_csr_bytes(ir, self._content_hash(text)))
        if self.verify:
            # the writer's flags are asserted by construction; loads
            # claiming more will re-verify and widen the certificate
            status = {name: "construction" for name in ir.flag_names()}
            self._write_cert(key, self._content_hash(text), ir.flags,
                             status, "construction",
                             ir_digest=ir.digest())
        return path

    # -- optimized variants (.opt-<sig>.nnf, keyed in the .cert) -------------
    def save_variant(self, key: str, ir: CircuitIR, signature: str,
                     passes: "list[str] | Tuple[str, ...]" = (),
                     forgotten: "Any" = ()) -> Path:
        """Record a certified optimized twin of artifact ``key``.

        The circuit is written to ``<key>.opt-<signature>.nnf`` (plus a
        ``.csr`` mmap twin) and indexed in the base artifact's ``.cert``
        sidecar under ``variants[signature]`` with its node count,
        content digest, pass list and forgotten-variable set — enough
        for :meth:`load_smallest` to pick the best certified variant
        without parsing every file.
        """
        text = ir_to_nnf_text(ir)
        ext = f"opt-{signature}.nnf"
        path = self._write(self.path_for(key, ext), text)
        self._write_bytes(
            self.path_for(key, f"opt-{signature}.csr"),
            ir_to_csr_bytes(ir, self._content_hash(text)))
        cert = self._read_cert(key)
        if cert is None:
            # no certificate yet (verify=False store): anchor the
            # variants map to the current base artifact's content
            try:
                base_digest = self._content_hash(
                    self.path_for(key, "nnf").read_text())
            except OSError:
                base_digest = ""
            cert = {"digest": base_digest, "flags": 0, "status": {},
                    "method": "construction"}
        variants = dict(cert.get("variants") or {})
        variants[signature] = {
            "nodes": ir.n, "flags": ir.flags,
            "digest": self._content_hash(text),
            "ir_digest": ir.digest(),
            "passes": list(passes),
            "forgotten": sorted(int(v) for v in forgotten),
            "verified": "construction",
        }
        self._write_cert(key, cert.get("digest", ""),
                         int(cert.get("flags", 0)), cert.get("status", {}),
                         str(cert.get("method", "construction")),
                         ir_digest=cert.get("ir_digest"),
                         variants=variants)
        self.stats.incr("artifact_variant_writes")
        return path

    def _drop_variant(self, key: str, signature: str) -> None:
        cert = self._read_cert(key)
        if cert is None:
            return
        variants = dict(cert.get("variants") or {})
        variants.pop(signature, None)
        self._write_cert(key, cert.get("digest", ""),
                         int(cert.get("flags", 0)), cert.get("status", {}),
                         str(cert.get("method", "construction")),
                         ir_digest=cert.get("ir_digest"),
                         variants=variants)

    def load_variant(self, key: str, signature: str
                     ) -> Optional[Tuple[CircuitIR, dict]]:
        """One recorded optimized variant: ``(ir, info)`` or None.

        The variant's content hash must match the ``.cert`` record;
        with ``verify=True`` the claimed flags are re-certified on
        first load (falsification quarantines the variant and drops it
        from the index — the base artifact is untouched).
        """
        cert = self._read_cert(key)
        info = dict(((cert or {}).get("variants") or {})
                    .get(signature) or {})
        if not info:
            return None
        path = self.path_for(key, f"opt-{signature}.nnf")
        try:
            text = path.read_text()
        except OSError:
            return None
        if self._content_hash(text) != info.get("digest"):
            self._quarantine(path)
            self._drop_variant(key, signature)
            return None
        try:
            ir = ir_from_nnf_text(text, flags=int(info.get("flags", 0)))
        except Exception:
            self._quarantine(path)
            self._drop_variant(key, signature)
            return None
        if self.verify:
            from ..analyze.certify import certify
            claimed = int(info.get("flags", 0))
            result = certify(ir, flags=claimed)
            if claimed & result.falsified_mask:
                self._quarantine(path)
                self._drop_variant(key, signature)
                self.stats.incr("artifact_cert_fail")
                return None
        self.stats.incr("artifact_variant_hits")
        return ir.intern(), info

    def load_smallest(self, key: str, flags: Optional[int] = None
                      ) -> Optional[Tuple[CircuitIR, dict]]:
        """The smallest certified circuit for ``key``: the best
        optimized variant when one beats the base artifact, else the
        base itself.  ``info`` carries ``signature`` (None for the
        base) and ``forgotten`` (variables the query layer must exclude
        from count widening — the Tseitin 2^k correction)."""
        base = self.load_nnf(key, flags=flags)
        if base is None:
            return None
        cert = self._read_cert(key)
        variants = (cert or {}).get("variants") or {}
        ranked = sorted(
            (info.get("nodes", base.n), sig)
            for sig, info in variants.items()
            if isinstance(info, dict))
        for nodes, sig in ranked:
            if nodes >= base.n:
                break
            got = self.load_variant(key, sig)
            if got is not None:
                ir, info = got
                return ir, {"signature": sig,
                            "forgotten": [int(v) for v in
                                          info.get("forgotten", [])],
                            "passes": list(info.get("passes", []))}
        return base, {"signature": None, "forgotten": [], "passes": []}

    # -- generated evaluator sources (.gen.py) -------------------------------
    def load_codegen(self, key: str) -> Optional[str]:
        """The sealed generated-evaluator source for circuit digest
        ``key``, or None.  A source whose self-hash no longer matches
        is quarantined (``*.corrupt``) and reported as a miss — it is
        regenerated, never compiled."""
        path = self.path_for(key, "gen.py")
        try:
            text = path.read_text()
        except OSError:
            self.stats.incr("codegen_source_misses")
            return None
        from .codegen import check_source
        if not check_source(text):
            self._move_aside(path)
            self.stats.incr("artifact_corrupt")
            self.stats.incr("codegen_source_misses")
            return None
        self.stats.incr("codegen_source_hits")
        return text

    def save_codegen(self, key: str, source: str) -> Path:
        """Cache a sealed generated source next to the circuit's
        ``.cert`` sidecar, under the same digest."""
        return self._write(self.path_for(key, "gen.py"), source)

    # -- SDD artifacts (.sdd + .vtree) --------------------------------------
    def load_sdd(self, key: str) -> Optional[Tuple[object, object]]:
        """The cached (root, manager) for ``key``, or None on a miss.
        The SDD is rebuilt into a fresh manager over the stored vtree."""
        sdd_path = self.path_for(key, "sdd")
        vtree_path = self.path_for(key, "vtree")
        try:
            sdd_text = sdd_path.read_text()
            vtree_text = vtree_path.read_text()
        except OSError:
            self.stats.incr("artifact_misses")
            return None
        try:
            loaded = read_sdd_file(sdd_text, vtree_text)
        except Exception:
            # either file may be the bad one; quarantine the pair so
            # the recompile rewrites a consistent sdd/vtree couple
            self._quarantine(sdd_path, vtree_path)
            return None
        if self.verify:
            from .core import (FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC,
                               FLAG_STRUCTURED)
            from .lower import sdd_to_ir
            root, manager = loaded
            claimed = (FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC |
                       FLAG_STRUCTURED)
            digest = self._content_hash(sdd_text, vtree_text)
            if not self._certify_load(key, sdd_to_ir(root), claimed,
                                      digest, manager.vtree,
                                      sdd_path, vtree_path):
                return None
        self.stats.incr("artifact_hits")
        return loaded

    def save_sdd(self, key: str, node: Any) -> Path:
        vtree_text = write_vtree_text(node.manager.vtree)
        sdd_text = write_sdd_file(node)
        self._write(self.path_for(key, "vtree"), vtree_text)
        path = self._write(self.path_for(key, "sdd"), sdd_text)
        if self.verify:
            from .core import (FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC,
                               FLAG_STRUCTURED)
            flags = (FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC |
                     FLAG_STRUCTURED)
            status = {"decomposable": "construction",
                      "deterministic": "construction",
                      "structured": "construction"}
            self._write_cert(key, self._content_hash(sdd_text,
                                                     vtree_text),
                             flags, status, "construction")
        return path

    # -- garbage collection --------------------------------------------------
    def gc(self, *, now: float, max_corrupt_age_days: float = 7.0,
           dry_run: bool = False) -> dict:
        """Sweep the store for orphaned/stale sidecars and report
        reclaimed bytes.

        Removed classes (the primary ``.nnf``/``.sdd`` artifacts are
        never touched):

        * leftover ``*.tmp`` files from interrupted atomic writes;
        * quarantined ``*.corrupt`` evidence older than
          ``max_corrupt_age_days`` (mtime against the caller-supplied
          ``now`` — the store itself never reads the clock);
        * ``.csr`` sidecars whose ``.nnf`` text is gone;
        * ``.proof`` equivalence traces whose ``.nnf`` is gone;
        * ``.vtree`` files whose ``.sdd`` is gone;
        * ``.cert`` sidecars with neither a ``.nnf`` nor an ``.sdd``;
        * ``.opt-*.nnf``/``.csr`` variants whose base artifact is gone
          or that no ``.cert`` references any more;
        * ``.gen.py`` sources whose circuit digest no certificate
          (base or variant) references — legacy certificates written
          before digests were recorded cannot vouch for their sources,
          so those are reaped too and simply regenerate on next use.

        With ``dry_run=True`` nothing is deleted; the report is
        identical.  Returns ``{"scanned", "removed", "reclaimed_bytes",
        "by_class", "dry_run"}``.
        """
        cutoff = now - max_corrupt_age_days * 86400.0
        files = [p for p in self.root.glob("*/*") if p.is_file()]
        nnf_keys = set()
        sdd_keys = set()
        cert_keys = set()
        live_ir_digests = set()
        variant_sigs: dict = {}
        for path in files:
            name = path.name
            if name.endswith(".tmp") or ".corrupt" in name:
                continue
            key, _, ext = name.partition(".")
            if ext == "nnf":
                nnf_keys.add(key)
            elif ext == "sdd":
                sdd_keys.add(key)
            elif ext == "cert":
                cert_keys.add(key)
                cert = self._read_cert(key)
                if cert is None:
                    continue
                digest = cert.get("ir_digest")
                if digest:
                    live_ir_digests.add(digest)
                variants = cert.get("variants") or {}
                sigs = variant_sigs.setdefault(key, set())
                for sig, info in variants.items():
                    sigs.add(sig)
                    if isinstance(info, dict) and info.get("ir_digest"):
                        live_ir_digests.add(info["ir_digest"])

        def classify(path: Path) -> Optional[str]:
            name = path.name
            if name.endswith(".tmp"):
                return "tmp"
            if ".corrupt" in name:
                if path.stat().st_mtime < cutoff:
                    return "corrupt"
                return None
            key, _, ext = name.partition(".")
            if ext.startswith("opt-"):
                sig = ext[4:].split(".", 1)[0]
                if key not in nnf_keys:
                    return "orphan_variant"
                if sig not in variant_sigs.get(key, set()):
                    return "orphan_variant"
                if ext.endswith(".csr") and not self.path_for(
                        key, f"opt-{sig}.nnf").exists():
                    return "orphan_variant"
                return None
            if ext == "csr":
                return None if key in nnf_keys else "orphan_csr"
            if ext == "proof":
                return None if key in nnf_keys else "orphan_proof"
            if ext == "vtree":
                return None if key in sdd_keys else "orphan_vtree"
            if ext == "cert":
                if key in nnf_keys or key in sdd_keys:
                    return None
                return "orphan_cert"
            if ext == "gen.py":
                return None if key in live_ir_digests else "orphan_gen"
            return None

        report = {"scanned": len(files), "removed": 0,
                  "reclaimed_bytes": 0, "by_class": {},
                  "dry_run": bool(dry_run)}
        for path in files:
            reason = classify(path)
            if reason is None:
                continue
            try:
                size = path.stat().st_size
            except OSError:
                continue
            if not dry_run:
                try:
                    os.unlink(path)
                except OSError:
                    continue
            report["removed"] += 1
            report["reclaimed_bytes"] += size
            bucket = report["by_class"].setdefault(
                reason, {"files": 0, "bytes": 0})
            bucket["files"] += 1
            bucket["bytes"] += size
        if not dry_run:
            self.stats.incr("gc_removed", report["removed"])
            self.stats.incr("gc_reclaimed_bytes",
                            report["reclaimed_bytes"])
        return report


def default_store() -> Optional[ArtifactStore]:
    """The store named by ``$REPRO_CACHE_DIR``, or None when unset."""
    root = os.environ.get(CACHE_DIR_ENV)
    return ArtifactStore(root) if root else None
