"""The content-addressed compilation cache (artifact store).

Compilation is the expensive phase of every knowledge-compilation
pipeline; queries on the compiled circuit are linear.  The store makes
compilation *cacheable across processes*: an artifact is addressed by
the SHA-256 of everything that determines the compiler's output —

    key = sha256(compiler name ‖ canonical config JSON ‖ DIMACS text)

— and persisted to disk as canonical text (``.nnf`` for d-DNNF
compilers, ``.sdd`` + ``.vtree`` for SDD compilation).  A warm lookup
is a file read plus a parse, which is O(circuit) instead of
O(search); the benchmark harness records the resulting hit rates and
the warm/cold compile ratio.

Layout: ``<root>/<key[:2]>/<key>.<ext>`` — two-level fan-out keeps
directories small.  Writes go through a same-directory temp file +
rename, so concurrent writers of the same key are safe (last rename
wins, both contents are identical by construction).

:func:`default_store` reads the ``REPRO_CACHE_DIR`` environment
variable, so the CLI and benchmarks can opt in without plumbing.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping, Optional, Tuple

from ..perf.instrument import Counter
from .core import CircuitIR
from .serialize import (ir_from_csr_buffer, ir_from_nnf_text,
                        ir_to_csr_bytes, ir_to_nnf_text, read_sdd_file,
                        write_sdd_file, write_vtree_text)

__all__ = ["ArtifactStore", "artifact_key", "default_store"]

#: environment variable naming the default artifact-store directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def artifact_key(dimacs: str, compiler: str,
                 config: Optional[Mapping] = None) -> str:
    """The content address of a compilation: SHA-256 over the compiler
    name, its canonicalised config and the DIMACS input text."""
    blob = "\n".join([
        compiler,
        json.dumps(dict(config or {}), sort_keys=True,
                   separators=(",", ":"), default=str),
        dimacs,
    ])
    return hashlib.sha256(blob.encode()).hexdigest()


class ArtifactStore:
    """A directory of compiled circuits addressed by content key.

    ``stats`` counts ``artifact_hits`` / ``artifact_misses`` /
    ``artifact_writes`` / ``artifact_corrupt`` over the store's
    lifetime.

    A cached artifact that fails to parse (truncated write, bit rot,
    foreign file) is treated as a miss, not an error: the bad file is
    quarantined by renaming it to ``<name>.corrupt`` (so the next
    lookup recompiles and rewrites cleanly, and the evidence survives
    for inspection) and counted in ``artifact_corrupt``.

    With ``verify=True`` (the default) the store also refuses to serve
    *parseable-but-wrong* artifacts: every load re-checks the claimed
    tractability properties through :mod:`repro.analyze` and
    quarantines on certificate failure (``artifact_cert_fail``).  The
    verification result is memoised in a ``.cert`` sidecar keyed by
    the artifact's content hash, so re-certification happens once —
    warm loads are back to file-read + parse cost
    (``artifact_cert_hits``).
    """

    def __init__(self, root: "str | Path", verify: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = Counter()
        self.verify = verify

    def path_for(self, key: str, ext: str) -> Path:
        return self.root / key[:2] / f"{key}.{ext}"

    @staticmethod
    def _atomic_replace(path: Path, data: "str | bytes") -> Path:
        """Publish ``data`` at ``path`` atomically: write a private
        ``*.tmp`` in the same directory, fsync, then ``os.replace``.

        THE single write primitive for every artifact extension
        (``.nnf``/``.sdd``/``.vtree``/``.cert``/``.csr``/``.gen.py``)
        — a reader concurrent with any writer sees either the old
        complete file or the new complete file, never a torn prefix
        (which would land a perfectly good artifact in quarantine).
        Concurrent writers of the same content-addressed key both win:
        last rename shows, and the bytes are identical by construction.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            mode = "wb" if isinstance(data, bytes) else "w"
            with os.fdopen(fd, mode) as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def _write(self, path: Path, text: str) -> Path:
        self._atomic_replace(path, text)
        self.stats.incr("artifact_writes")
        return path

    def _write_bytes(self, path: Path, blob: bytes) -> Path:
        """:meth:`_write` for binary sidecars (same atomic rename).
        Sidecars are bookkeeping, not artifact traffic: counted under
        ``artifact_sidecar_writes``, like ``.cert`` files."""
        self._atomic_replace(path, blob)
        self.stats.incr("artifact_sidecar_writes")
        return path

    @staticmethod
    def _move_aside(*paths: Path) -> None:
        for path in paths:
            try:
                os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
            except OSError:
                pass  # already gone or unmovable: the miss still stands

    def _quarantine(self, *paths: Path) -> None:
        """Move unparseable artifacts aside and account the corruption
        as a miss, so the caller recompiles instead of crashing."""
        self._move_aside(*paths)
        self.stats.incr("artifact_corrupt")
        self.stats.incr("artifact_misses")

    # -- property certificates (.cert sidecars) ------------------------------
    @staticmethod
    def _content_hash(*texts: str) -> str:
        """Content hash of an artifact's raw text(s) — certificate
        binding.  Independent of parse flags, so mutated bytes always
        invalidate the certificate."""
        return hashlib.sha256("\x00".join(texts).encode()).hexdigest()

    def _read_cert(self, key: str) -> Optional[dict]:
        try:
            raw = json.loads(self.path_for(key, "cert").read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(raw, dict) or \
                raw.get("schema") != "repro-cert/1":
            return None
        return raw

    def _write_cert(self, key: str, digest: str, flags: int,
                    status: Mapping[str, str], method: str) -> None:
        cert = {"schema": "repro-cert/1", "digest": digest,
                "flags": flags, "status": dict(status),
                "method": method}
        # certificates are bookkeeping, not artifact traffic: bypass
        # the artifact_writes stat but keep the atomic rename
        self._atomic_replace(self.path_for(key, "cert"),
                             json.dumps(cert, sort_keys=True) + "\n")

    def _certify_load(self, key: str, ir: CircuitIR, claimed: int,
                      digest: str, vtree: Any = None,
                      *paths: Path) -> bool:
        """Serve-time certification: trust a digest-matching ``.cert``
        covering the claimed flags, otherwise re-verify; falsified
        claims quarantine the artifact (and certificate).  Returns
        True when the artifact may be served."""
        cert = self._read_cert(key)
        if cert is not None and cert.get("digest") == digest and \
                (claimed & int(cert.get("flags", 0))) == claimed:
            self.stats.incr("artifact_cert_hits")
            return True
        from ..analyze.certify import certify
        result = certify(ir, flags=claimed, vtree=vtree)
        if claimed & result.falsified_mask:
            self._quarantine(*paths)
            cert_path = self.path_for(key, "cert")
            try:
                os.unlink(cert_path)
            except OSError:
                pass
            self.stats.incr("artifact_cert_fail")
            return False
        self._write_cert(key, digest, claimed, result.summary(),
                         "verified")
        self.stats.incr("artifact_verified")
        return True

    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when unused)."""
        hits = self.stats["artifact_hits"]
        total = hits + self.stats["artifact_misses"]
        return hits / total if total else 0.0

    # -- d-DNNF artifacts (.nnf + .csr) -------------------------------------
    def _load_csr(self, key: str,
                  flags: Optional[int]) -> Optional[CircuitIR]:
        """The memory-mapped warm path: decode the binary ``.csr``
        sidecar (written at store time) instead of parsing text.  A
        missing sidecar returns None silently (the text path decides
        hit or miss); a corrupt one is quarantined — ``.csr.corrupt``
        alongside, ``artifact_corrupt`` counted — and the load falls
        back to the text artifact, which re-parses from scratch.

        The ``.nnf`` text stays authoritative: the sidecar embeds the
        hash of the text it was decoded from, and a mismatch (the text
        was rewritten or mutated underneath the sidecar) silently
        defers to the text path, whose parse + serve-time
        certification sees the *current* bytes.
        """
        path = self.path_for(key, "csr")
        try:
            with open(path, "rb") as handle:
                mapped = mmap.mmap(handle.fileno(), 0,
                                   access=mmap.ACCESS_READ)
                try:
                    ir, text_hash = ir_from_csr_buffer(mapped)
                finally:
                    mapped.close()
        except OSError:
            return None
        except Exception:
            self._move_aside(path)
            self.stats.incr("artifact_corrupt")
            return None
        try:
            raw = self.path_for(key, "nnf").read_bytes()
        except OSError:
            return None  # orphan sidecar: the text path rules it a miss
        if hashlib.sha256(raw).hexdigest() != text_hash:
            return None  # stale sidecar: text changed underneath it
        if self.verify:
            claimed = ir.flags if flags is None else flags
            if not self._certify_load(key, ir, claimed, text_hash,
                                      None, path):
                return None
        self.stats.incr("artifact_mmap_hits")
        return ir.intern()

    def load_nnf(self, key: str,
                 flags: Optional[int] = None) -> Optional[CircuitIR]:
        """The cached IR for ``key``, or None on a miss.

        Warm loads prefer the binary ``.csr`` sidecar — a memory-mapped
        decode of the CSR arrays that skips text parsing entirely
        (``artifact_mmap_hits``) — and fall back to reading and parsing
        the ``.nnf`` text when the sidecar is missing or quarantined.

        ``flags`` is forwarded to :func:`ir_from_nnf_text`: a caller
        that knows the stored circuit's properties (a compiler loading
        its own output) passes them to skip the structural scan, which
        keeps the warm path at file-read + parse cost.
        """
        ir = self._load_csr(key, flags)
        if ir is not None:
            self.stats.incr("artifact_hits")
            return ir
        path = self.path_for(key, "nnf")
        try:
            text = path.read_text()
        except OSError:
            self.stats.incr("artifact_misses")
            return None
        try:
            ir = ir_from_nnf_text(text, flags=flags)
        except Exception:
            self._quarantine(path)
            return None
        if self.verify:
            claimed = ir.flags if flags is None else flags
            if not self._certify_load(key, ir, claimed,
                                      self._content_hash(text), None,
                                      path):
                return None
        self.stats.incr("artifact_hits")
        return ir

    def save_nnf(self, key: str, ir: CircuitIR) -> Path:
        text = ir_to_nnf_text(ir)
        path = self._write(self.path_for(key, "nnf"), text)
        # the binary CSR twin serves memory-mapped warm loads; its
        # embedded text hash binds it to the same .cert sidecar
        self._write_bytes(self.path_for(key, "csr"),
                          ir_to_csr_bytes(ir, self._content_hash(text)))
        if self.verify:
            # the writer's flags are asserted by construction; loads
            # claiming more will re-verify and widen the certificate
            status = {name: "construction" for name in ir.flag_names()}
            self._write_cert(key, self._content_hash(text), ir.flags,
                             status, "construction")
        return path

    # -- generated evaluator sources (.gen.py) -------------------------------
    def load_codegen(self, key: str) -> Optional[str]:
        """The sealed generated-evaluator source for circuit digest
        ``key``, or None.  A source whose self-hash no longer matches
        is quarantined (``*.corrupt``) and reported as a miss — it is
        regenerated, never compiled."""
        path = self.path_for(key, "gen.py")
        try:
            text = path.read_text()
        except OSError:
            self.stats.incr("codegen_source_misses")
            return None
        from .codegen import check_source
        if not check_source(text):
            self._move_aside(path)
            self.stats.incr("artifact_corrupt")
            self.stats.incr("codegen_source_misses")
            return None
        self.stats.incr("codegen_source_hits")
        return text

    def save_codegen(self, key: str, source: str) -> Path:
        """Cache a sealed generated source next to the circuit's
        ``.cert`` sidecar, under the same digest."""
        return self._write(self.path_for(key, "gen.py"), source)

    # -- SDD artifacts (.sdd + .vtree) --------------------------------------
    def load_sdd(self, key: str) -> Optional[Tuple[object, object]]:
        """The cached (root, manager) for ``key``, or None on a miss.
        The SDD is rebuilt into a fresh manager over the stored vtree."""
        sdd_path = self.path_for(key, "sdd")
        vtree_path = self.path_for(key, "vtree")
        try:
            sdd_text = sdd_path.read_text()
            vtree_text = vtree_path.read_text()
        except OSError:
            self.stats.incr("artifact_misses")
            return None
        try:
            loaded = read_sdd_file(sdd_text, vtree_text)
        except Exception:
            # either file may be the bad one; quarantine the pair so
            # the recompile rewrites a consistent sdd/vtree couple
            self._quarantine(sdd_path, vtree_path)
            return None
        if self.verify:
            from .core import (FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC,
                               FLAG_STRUCTURED)
            from .lower import sdd_to_ir
            root, manager = loaded
            claimed = (FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC |
                       FLAG_STRUCTURED)
            digest = self._content_hash(sdd_text, vtree_text)
            if not self._certify_load(key, sdd_to_ir(root), claimed,
                                      digest, manager.vtree,
                                      sdd_path, vtree_path):
                return None
        self.stats.incr("artifact_hits")
        return loaded

    def save_sdd(self, key: str, node: Any) -> Path:
        vtree_text = write_vtree_text(node.manager.vtree)
        sdd_text = write_sdd_file(node)
        self._write(self.path_for(key, "vtree"), vtree_text)
        path = self._write(self.path_for(key, "sdd"), sdd_text)
        if self.verify:
            from .core import (FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC,
                               FLAG_STRUCTURED)
            flags = (FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC |
                     FLAG_STRUCTURED)
            status = {"decomposable": "construction",
                      "deterministic": "construction",
                      "structured": "construction"}
            self._write_cert(key, self._content_hash(sdd_text,
                                                     vtree_text),
                             flags, status, "construction")
        return path


def default_store() -> Optional[ArtifactStore]:
    """The store named by ``$REPRO_CACHE_DIR``, or None when unset."""
    root = os.environ.get(CACHE_DIR_ENV)
    return ArtifactStore(root) if root else None
