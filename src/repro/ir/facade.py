"""The service facade: compile-to-store and query-by-key.

This module is the *only* surface the serving layer
(:mod:`repro.serve`) is allowed to drive circuit work through (the
``serve-isolation`` rule in ``tools/lint_invariants.py`` enforces it):
DIMACS text goes in, content-addressed artifacts land in an
:class:`~repro.ir.store.ArtifactStore`, and queries run on the store's
circuits through :class:`~repro.ir.kernel.IrKernel` — never through
engine internals.

The pay-once/query-many economics of the paper (Darwiche, PODS 2020)
become three calls:

* :func:`compile_ticket` — canonicalise a request: parse the DIMACS,
  normalise the compiler config, and derive the SHA-256 content key
  that both the in-flight dedup registry and the artifact store use;
* :func:`compile_or_bounds` — run the (budgeted) compilation; when the
  request's deadline or node budget expires mid-search, degrade to the
  certified anytime interval (Darwiche 2000) instead of failing, so a
  server can answer ``s bounds L U`` rather than 500;
* :func:`query_artifact` / :func:`query_ir` — answer
  count/sat/wmc/mpe/marginals (scalar and batched WMC) on a stored
  circuit, widening counts to ``num_vars`` exactly like the CLI does,
  with marginals routed through the repair gate so a non-smooth
  artifact is auto-smoothed rather than answered wrongly.

Budgets are request-scoped: the compile share of the request budget is
carved with :meth:`repro.limits.budget.Budget.slice` and the remainder
is reserved for the anytime fallback, so an expiring compile still has
budget left to produce non-trivial bounds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import (Any, Dict, FrozenSet, Iterable, List, Mapping,
                    Optional, Sequence, Union)

from ..limits.anytime import anytime_count
from ..limits.budget import Budget, BudgetExceeded
from ..logic.cnf import Cnf
from .core import CircuitIR
from .kernel import IrKernel, ir_kernel, pack_weight_batch
from .store import ArtifactStore, artifact_key

__all__ = ["CompileTicket", "CompileOutcome", "BoundsOutcome",
           "compile_ticket", "compile_to_store", "compile_or_bounds",
           "load_artifact", "optimize_artifact", "query_artifact",
           "query_ir", "explain_ir", "explain_artifact",
           "QUERY_KINDS"]

#: compiler-config keys a service request may override
ALLOWED_CONFIG = ("use_components", "use_cache", "cache_mode",
                  "priority")

#: query kinds :func:`query_ir` answers
QUERY_KINDS = ("count", "sat", "wmc", "mpe", "marginals")

#: fraction of an expiring request budget reserved for the anytime
#: bounds fallback (the compile gets the rest)
DEFAULT_ANYTIME_RESERVE = 0.35

#: floor on the anytime fallback's own deadline: even a request whose
#: compile burnt the whole allowance gets a short, bounded interval
#: search instead of the trivial (0, 2^n) answer
MIN_BOUNDS_DEADLINE_S = 0.02


@dataclass(frozen=True)
class CompileTicket:
    """A canonicalised compile request.

    ``key`` is the artifact content address — SHA-256 over the
    compiler name, the normalised config and the *canonical* DIMACS
    re-serialisation (so formatting differences in client payloads
    dedup to one compilation).
    """

    key: str
    num_vars: int
    dimacs: str
    config: Dict[str, Any]

    def as_wire(self) -> Dict[str, Any]:
        return {"key": self.key, "num_vars": self.num_vars,
                "dimacs": self.dimacs, "config": dict(self.config)}


@dataclass(frozen=True)
class CompileOutcome:
    """A completed compilation: the artifact is in the store.

    When the request asked for post-compile optimization,
    ``optimized_nodes``/``pass_signature`` describe the certified
    smaller variant that landed next to the base artifact (both None
    when the pipeline made no certified improvement — the request
    still succeeds on the base circuit, never errors).
    """

    key: str
    num_vars: int
    circuit_nodes: int
    cached: bool
    elapsed_s: float
    optimized_nodes: Optional[int] = None
    pass_signature: Optional[str] = None
    #: proof-mode verdict: True = equivalence PROVED by the
    #: independent checker, False = REFUTED (artifact quarantined),
    #: None = no proof requested or check INCOMPLETE under budget
    proved: Optional[bool] = None

    def as_wire(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "status": "ok", "key": self.key,
            "num_vars": self.num_vars,
            "circuit_nodes": self.circuit_nodes,
            "cached": self.cached,
            "elapsed_s": round(self.elapsed_s, 6)}
        if self.optimized_nodes is not None:
            out["optimized_nodes"] = self.optimized_nodes
            out["pass_signature"] = self.pass_signature
        if self.proved is not None:
            out["proved"] = self.proved
        return out


@dataclass(frozen=True)
class BoundsOutcome:
    """A budget-expired compilation degraded to certified bounds:
    ``lower <= exact model count <= upper`` (Darwiche 2000)."""

    key: str
    num_vars: int
    lower: int
    upper: int
    reason: str
    decisions: int
    elapsed_s: float

    def as_wire(self) -> Dict[str, Any]:
        return {"status": "bounds", "key": self.key,
                "num_vars": self.num_vars,
                "lower": int(self.lower), "upper": int(self.upper),
                "reason": self.reason, "decisions": self.decisions,
                "elapsed_s": round(self.elapsed_s, 6)}


def _normalise_config(config: Optional[Mapping[str, Any]]
                      ) -> Dict[str, Any]:
    """The full compiler config a request resolves to; unknown keys
    are rejected (a typo must not silently fork the content key)."""
    out: Dict[str, Any] = {"use_components": True, "use_cache": True,
                           "cache_mode": "hash",
                           "propagator": "watched", "priority": []}
    for name, value in dict(config or {}).items():
        if name not in ALLOWED_CONFIG:
            raise ValueError(
                f"unknown compiler config key {name!r}; allowed: "
                f"{sorted(ALLOWED_CONFIG)}")
        if name in ("use_components", "use_cache"):
            if not isinstance(value, bool):
                raise ValueError(f"config {name} must be a bool")
        elif name == "cache_mode":
            if value not in ("hash", "exact"):
                raise ValueError("config cache_mode must be "
                                 "'hash' or 'exact'")
        else:  # priority
            if not isinstance(value, (list, tuple)) or \
                    not all(isinstance(v, int) and v > 0 for v in value):
                raise ValueError(
                    "config priority must be a list of positive ints")
            value = list(value)
        out[name] = value
    return out


def compile_ticket(dimacs: str,
                   config: Optional[Mapping[str, Any]] = None
                   ) -> CompileTicket:
    """Parse + canonicalise a compile request into its content key.

    Raises ``ValueError`` on unparseable DIMACS or a bad config — the
    server maps that to a 400, never to a worker crash.
    """
    cnf = Cnf.from_dimacs(dimacs)
    full = _normalise_config(config)
    canonical = cnf.to_dimacs()
    key = artifact_key(canonical, "dnnf",
                       {"use_components": full["use_components"],
                        "use_cache": full["use_cache"],
                        "cache_mode": full["cache_mode"],
                        "propagator": full["propagator"],
                        "priority": list(full["priority"])})
    return CompileTicket(key=key, num_vars=cnf.num_vars,
                         dimacs=canonical, config=full)


def _compiler(ticket: CompileTicket, store: ArtifactStore,
              budget: Optional[Budget],
              proof: bool = False) -> Any:
    from ..compile.dnnf_compiler import DnnfCompiler
    cfg = ticket.config
    return DnnfCompiler(use_components=bool(cfg["use_components"]),
                        use_cache=bool(cfg["use_cache"]),
                        cache_mode=str(cfg["cache_mode"]),
                        propagator=str(cfg["propagator"]),
                        priority=list(cfg["priority"]),
                        store=store, budget=budget, proof=proof)


def compile_to_store(ticket: CompileTicket, store: ArtifactStore,
                     budget: Optional[Budget] = None,
                     proof: bool = False) -> CompileOutcome:
    """Compile the ticket's CNF into the store (warm hits included).

    With ``proof=True`` the compiler emits an equivalence trace
    (``.proof`` sidecar) and the independent checker verifies it
    before the outcome is reported: ``outcome.proved`` is True on
    ``PROVED`` (memoised in the ``.cert``, so a warm key skips both
    the search and the re-check), False on ``REFUTED`` (the artifact
    is quarantined — the caller decides whether that is fatal) and
    None when the check ran out of budget.

    Raises :class:`~repro.limits.budget.BudgetExceeded` when the
    budget expires — :func:`compile_or_bounds` is the non-raising
    service entry point.
    """
    start = time.perf_counter()
    if proof:
        from ..analyze.proofs import mark_proved, verify_stored_proof
        if store.proof_status(ticket.key) == "PROVED":
            ir = store.load_nnf(ticket.key)
            if ir is not None:
                mark_proved(ir.digest())
                return CompileOutcome(
                    key=ticket.key, num_vars=ticket.num_vars,
                    circuit_nodes=int(ir.n), cached=True,
                    elapsed_s=time.perf_counter() - start,
                    proved=True)
    cnf = Cnf.from_dimacs(ticket.dimacs)
    compiler = _compiler(ticket, store, budget, proof=proof)
    if compiler.artifact_key_for(cnf) != ticket.key:
        raise ValueError("ticket key does not match compiler config")
    root = compiler.compile(cnf)
    proved: Optional[bool] = None
    if proof:
        # the checker runs unbudgeted: it is linear in the trace and
        # must not inherit a compile budget already near expiry
        result = verify_stored_proof(store, ticket.key, ticket.dimacs)
        proved = {"PROVED": True, "REFUTED": False}.get(result.verdict)
    return CompileOutcome(
        key=ticket.key, num_vars=ticket.num_vars,
        circuit_nodes=int(root.node_count()),
        cached=compiler.stats["artifact_cache_hits"] > 0,
        elapsed_s=time.perf_counter() - start,
        proved=proved)


def compile_or_bounds(
        ticket: CompileTicket, store: ArtifactStore,
        deadline_s: Optional[float] = None,
        max_nodes: Optional[int] = None,
        anytime_reserve: float = DEFAULT_ANYTIME_RESERVE,
        optimize: Union[bool, str, Sequence[str], None] = None,
        proof: bool = False
) -> Union[CompileOutcome, BoundsOutcome]:
    """Budgeted compile that degrades to certified anytime bounds.

    With no caps this is exactly :func:`compile_to_store`.  With caps,
    the compile runs on ``1 - anytime_reserve`` of the request budget
    (:meth:`Budget.slice`); if it expires, the reserved remainder
    funds a partial-decomposition interval search whose bounds are
    certified to bracket the exact model count for *any* budget.

    ``optimize`` (True for the default pipeline, or an explicit pass
    list) runs :func:`optimize_artifact` after a successful compile on
    whatever slack the request budget has left; an expiring or
    non-improving pipeline silently leaves the base artifact as the
    answer — optimization can shrink the response, never fail it.

    ``proof=True`` is forwarded to :func:`compile_to_store`; a
    compile that degrades to bounds carries no proof (a partial
    search trace proves nothing — the ``BoundsOutcome`` certificate
    is the anytime interval itself).
    """
    start = time.perf_counter()
    if deadline_s is None and max_nodes is None:
        outcome = compile_to_store(ticket, store, proof=proof)
        return _maybe_optimize(outcome, ticket, store, optimize, None)
    request = Budget(deadline_s=deadline_s, max_nodes=max_nodes)
    try:
        outcome = compile_to_store(
            ticket, store, request.slice(1.0 - anytime_reserve),
            proof=proof)
        return _maybe_optimize(outcome, ticket, store, optimize,
                               request)
    except BudgetExceeded as error:
        reserve_deadline: Optional[float] = None
        if deadline_s is not None:
            reserve_deadline = max(MIN_BOUNDS_DEADLINE_S,
                                   deadline_s -
                                   (time.perf_counter() - start))
        reserve_nodes: Optional[int] = None
        if max_nodes is not None:
            reserve_nodes = max(32, int(max_nodes * anytime_reserve))
        bounds = anytime_count(
            Cnf.from_dimacs(ticket.dimacs),
            Budget(deadline_s=reserve_deadline,
                   max_nodes=reserve_nodes))
        return BoundsOutcome(
            key=ticket.key, num_vars=ticket.num_vars,
            lower=int(bounds.lower), upper=int(bounds.upper),
            reason=error.reason, decisions=bounds.decisions,
            elapsed_s=time.perf_counter() - start)


def _maybe_optimize(outcome: CompileOutcome, ticket: CompileTicket,
                    store: ArtifactStore,
                    optimize: Union[bool, str, Sequence[str], None],
                    request: Optional[Budget]) -> CompileOutcome:
    """Post-compile optimization on the request budget's slack.

    Any failure mode — budget expiry, a rejected pipeline, a store
    race — degrades to the unoptimized outcome; the compile already
    succeeded and stays succeeded.
    """
    if optimize is None or optimize is False:
        return outcome
    passes: Optional[Sequence[str]]
    if optimize is True:
        passes = None
    elif isinstance(optimize, str):
        passes = [p for p in optimize.split(",") if p]
    else:
        passes = list(optimize)
    try:
        report = optimize_artifact(
            store, ticket.key, passes=passes, budget=request,
            aux_vars=Cnf.from_dimacs(ticket.dimacs).aux_vars)
    except BudgetExceeded:
        return outcome
    if not report or report.get("after_nodes") is None or \
            report["after_nodes"] >= report.get("before_nodes", 0):
        return outcome
    return replace(outcome,
                   optimized_nodes=int(report["after_nodes"]),
                   pass_signature=str(report["signature"]))


# -- optimization side --------------------------------------------------------
def optimize_artifact(store: ArtifactStore, key: str,
                      passes: Optional[Sequence[str]] = None,
                      budget: Optional[Budget] = None,
                      aux_vars: Sequence[int] = ()
                      ) -> Optional[Dict[str, Any]]:
    """Run the certified pass pipeline on a stored artifact.

    Loads ``key``, runs :class:`repro.ir.passes.PassManager` (default
    pipeline when ``passes`` is None), and — when the pipeline
    produced a certified strictly-smaller circuit — lands it as an
    optimized variant next to the base artifact (keyed by the
    pass-pipeline signature in the ``.cert`` sidecar) and pre-warms
    its codegen module.  A variant already in the store is reused
    without re-running the pipeline.  Returns a wire-ready audit dict,
    or None when the artifact is missing.  Budget exhaustion degrades
    to whatever the pipeline certified so far — never an error.
    """
    from .passes import PassManager, parse_passes, pipeline_signature
    parsed = parse_passes(passes)
    signature = pipeline_signature(parsed)
    ir = store.load_nnf(key)
    if ir is None:
        return None
    cached = store.load_variant(key, signature)
    if cached is not None:
        opt, info = cached
        return {"key": key, "passes": list(info.get("passes", parsed)),
                "signature": signature, "before_nodes": ir.n,
                "after_nodes": opt.n,
                "forgotten_vars": sorted(info.get("forgotten", ())),
                "cached": True, "budget_hit": False}
    manager = PassManager(parsed, aux_vars=aux_vars)
    result = manager.run(ir, budget=budget)
    if result.changed:
        store.save_variant(key, result.ir, result.signature,
                           passes=result.passes,
                           forgotten=result.forgotten)
        _warm_codegen(store, result.ir)
    wire = result.as_wire()
    wire["key"] = key
    wire["cached"] = False
    return wire


def _warm_codegen(store: ArtifactStore, ir: CircuitIR) -> None:
    """Regenerate the ``.gen.py`` module for an optimized variant so
    the first real query is served compiled (best-effort)."""
    try:
        kernel = ir_kernel(ir)
        kernel.codegen_store = store
        kernel.sat()
    except Exception:
        pass


# -- query side ---------------------------------------------------------------
def load_artifact(store: ArtifactStore, key: str) -> Optional[CircuitIR]:
    """The stored circuit for ``key``, or None on a miss."""
    return store.load_nnf(key)


def _mentioned(kernel: IrKernel) -> List[int]:
    if kernel.n == 0:
        return []
    return sorted(kernel.varsets[kernel.n - 1])


def _widen_vars(kernel: IrKernel,
                num_vars: Optional[int]) -> List[int]:
    """The variables absent from the circuit but inside ``num_vars``
    — unconstrained, each doubling the count (weight W(v)+W(-v))."""
    mentioned = _mentioned(kernel)
    if num_vars is None:
        return []
    if mentioned and num_vars < mentioned[-1]:
        raise ValueError(
            f"num_vars={num_vars} below the circuit's largest "
            f"variable {mentioned[-1]}")
    present = set(mentioned)
    return [v for v in range(1, num_vars + 1) if v not in present]


def _full_weights(kernel: IrKernel, num_vars: Optional[int],
                  wire: Optional[Mapping[int, float]]
                  ) -> Dict[int, float]:
    """Every literal's weight (default 1.0), wire entries overlaid."""
    top = num_vars if num_vars is not None else \
        (max(_mentioned(kernel) or [0]))
    weights: Dict[int, float] = {}
    for var in range(1, top + 1):
        weights[var] = weights[-var] = 1.0
    for lit, value in dict(wire or {}).items():
        if lit == 0 or abs(lit) > top:
            raise ValueError(
                f"weight literal {lit} outside 1..{top} "
                f"(or its negation)")
        weights[int(lit)] = float(value)
    return weights


def query_ir(ir: CircuitIR, query: str, *,
             num_vars: Optional[int] = None,
             weights: Optional[Mapping[int, float]] = None,
             weight_batch: Optional[Sequence[Mapping[int, float]]] = None,
             budget: Optional[Budget] = None,
             codegen_store: Optional[ArtifactStore] = None,
             forgotten: Iterable[int] = ()
             ) -> Dict[str, Any]:
    """Answer one query on a compiled circuit; JSON-ready result.

    ``num_vars`` widens counting queries to variables absent from the
    circuit (each contributes a factor 2, or ``W(v) + W(-v)``).
    ``forgotten`` names variables the optimizer existentially
    quantified out (Tseitin auxiliaries): they are excluded from the
    widening set, which is exactly the 2^k correction — a pruned
    circuit answers the same counts as the original.
    Raises ``ValueError`` on a malformed request and
    :class:`~repro.limits.budget.BudgetExceeded` when the budget
    expires mid-pass.
    """
    if query not in QUERY_KINDS:
        raise ValueError(f"unknown query {query!r}; expected one of "
                         f"{list(QUERY_KINDS)}")
    kernel = ir_kernel(ir)
    if codegen_store is not None:
        kernel.codegen_store = codegen_store
    skip = frozenset(int(v) for v in forgotten)
    if budget is not None:
        with budget.scope():
            return _run_query(kernel, query, num_vars, weights,
                              weight_batch, skip)
    return _run_query(kernel, query, num_vars, weights, weight_batch,
                      skip)


def _run_query(kernel: IrKernel, query: str, num_vars: Optional[int],
               weights: Optional[Mapping[int, float]],
               weight_batch: Optional[Sequence[Mapping[int, float]]],
               forgotten: FrozenSet[int] = frozenset()
               ) -> Dict[str, Any]:
    extra = [v for v in _widen_vars(kernel, num_vars)
             if v not in forgotten]
    out: Dict[str, Any] = {"query": query}
    if query == "count":
        out["result"] = kernel.model_count() << len(extra)
    elif query == "sat":
        out["result"] = bool(kernel.sat())
    elif query == "wmc":
        if weight_batch is not None:
            out["result"] = _wmc_batch(kernel, num_vars, weight_batch,
                                       extra)
            out["batch"] = len(out["result"])
        else:
            full = _full_weights(kernel, num_vars, weights)
            value = kernel.wmc(full)
            for var in extra:
                value *= full[var] + full[-var]
            out["result"] = float(value)
    elif query == "mpe":
        full = _full_weights(kernel, num_vars, weights)
        value, model = kernel.mpe(full)
        out["result"] = float(value)
        out["model"] = {str(var): bool(state)
                        for var, state in sorted(model.items())}
    else:  # marginals
        # repair mode: a non-smooth artifact is auto-smoothed (and
        # re-certified) rather than served a silently-wrong marginal
        from ..analyze.gate import gate_scope
        with gate_scope("repair"):
            counts = kernel.marginals()
            total = kernel.model_count() << len(extra)
        shift = len(extra)
        out["result"] = {
            str(var): [int(counts.get(-var, 0)) << shift,
                       int(counts.get(var, 0)) << shift]
            for var in _mentioned(kernel)}
        out["count"] = total
    return out


def _wmc_batch(kernel: IrKernel, num_vars: Optional[int],
               weight_batch: Sequence[Mapping[int, float]],
               extra: List[int]) -> List[float]:
    maps = [_full_weights(kernel, num_vars, w) for w in weight_batch]
    if not maps:
        return []
    top = num_vars if num_vars is not None else \
        (max(_mentioned(kernel) or [0]))
    packed: Dict[int, Any] = dict(
        pack_weight_batch(maps, list(range(1, top + 1))))
    values = kernel.wmc_batch(packed)
    for var in extra:
        values = values * (packed[var] + packed[-var])
    return [float(v) for v in values]


def explain_ir(ir: CircuitIR, instance: Mapping[int, bool], *,
               limit: Optional[int] = None, smallest: bool = False,
               budget: Optional[Budget] = None,
               forgotten: Iterable[int] = ()) -> Dict[str, Any]:
    """Sufficient reasons of the decision on ``instance``; JSON-ready.

    Runs the Decision-DNNF prime-implicant enumerator
    (:func:`repro.explain.implicants.sufficient_reasons`) behind the
    ``"explain"`` gate.  No anytime reserve is carved here — unlike
    compilation, the enumeration is natively anytime: when the request
    budget expires mid-search the result degrades to the reasons found
    so far (``complete: false`` plus a ``partial`` marker), never an
    error and never a term that is not a true sufficient reason.
    ``forgotten`` auxiliaries are excluded from every emitted reason.

    Raises ``ValueError`` on a malformed request (non-Decision-DNNF
    circuit, an instance missing circuit variables, or a negative
    decision — the server's 400).
    """
    from ..explain.implicants import sufficient_reasons
    result = sufficient_reasons(
        ir, {int(v): bool(s) for v, s in instance.items()},
        forgotten=frozenset(int(v) for v in forgotten),
        budget=budget, limit=limit, smallest=smallest)
    result["query"] = "explain"
    return result


def explain_artifact(store: ArtifactStore, key: str,
                     instance: Mapping[int, bool], *,
                     limit: Optional[int] = None,
                     smallest: bool = False,
                     budget: Optional[Budget] = None,
                     optimize: bool = False
                     ) -> Optional[Dict[str, Any]]:
    """Load ``key`` from the store and explain the decision on
    ``instance``; None when the artifact is missing (the 404).

    ``optimize=True`` explains on the smallest certified variant with
    its forgotten auxiliaries excluded, exactly like
    :func:`query_artifact` — the reasons match the base circuit's.
    """
    forgotten: FrozenSet[int] = frozenset()
    if optimize:
        smallest_variant = store.load_smallest(key)
        if smallest_variant is None:
            return None
        ir, info = smallest_variant
        forgotten = frozenset(info.get("forgotten", ()))
    else:
        base = load_artifact(store, key)
        if base is None:
            return None
        ir = base
    return explain_ir(ir, instance, limit=limit, smallest=smallest,
                      budget=budget, forgotten=forgotten)


def query_artifact(store: ArtifactStore, key: str, query: str, *,
                   num_vars: Optional[int] = None,
                   weights: Optional[Mapping[int, float]] = None,
                   weight_batch: Optional[
                       Sequence[Mapping[int, float]]] = None,
                   budget: Optional[Budget] = None,
                   optimize: bool = False
                   ) -> Optional[Dict[str, Any]]:
    """Load ``key`` from the store and answer ``query`` on it; None
    when the artifact is missing (the server's 404).

    ``optimize=True`` serves the smallest *certified* stored variant
    (:meth:`ArtifactStore.load_smallest`) instead of the base
    artifact — queries run over fewer nodes, with the variant's
    forgotten auxiliaries excluded from count widening so every
    answer matches the base circuit's exactly.
    """
    forgotten: FrozenSet[int] = frozenset()
    if optimize:
        smallest = store.load_smallest(key)
        if smallest is None:
            return None
        ir, info = smallest
        forgotten = frozenset(info.get("forgotten", ()))
    else:
        base = load_artifact(store, key)
        if base is None:
            return None
        ir = base
    return query_ir(ir, query, num_vars=num_vars, weights=weights,
                    weight_batch=weight_batch, budget=budget,
                    codegen_store=store, forgotten=forgotten)
