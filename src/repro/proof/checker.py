"""The standalone equivalence-trace checker.

:func:`check_proof` replays a ``repro-proof/1`` trace against the
original DIMACS text and verifies every step *semantically*, trusting
nothing the compiler claimed:

* **root / branch implications** are RUP-checked: the checker runs its
  own occurrence-list unit propagation over the active clause set and
  requires the trace's implied-literal set to equal its own fixpoint
  (unit-propagation fixpoints are unique, so exact set equality is the
  right test);
* **conflict leaves** must actually conflict under the checker's own
  propagation, and claimed-successful branches must not;
* **component partitions** are re-justified from scratch: the claimed
  clause-id groups must exactly cover the active clauses, be pairwise
  disjoint, and mention pairwise-disjoint free-variable sets — the
  side conditions that license multiplying component counts;
* **cache back-references** must point at an already-proved component
  whose *residual clause multiset* (re-derived by the checker under
  the current assignment) is identical — so a hash-collision in the
  compiler's component cache, the classic silent-miscompile source,
  is caught here;
* the **conclusion** is computed, not read: the checker derives the
  model count and the circuit's semantic digest bottom-up and requires
  the digest to match the header's (which the emitter computed from
  the circuit the compiler actually built).

Verdicts: ``PROVED`` (circuit ≡ CNF; ``model_count`` is the exact
count over the header's variable range, as a corollary), ``REFUTED``
(``line``/``reason`` give the first bad step — the minimal witness),
``INCOMPLETE`` (the optional :class:`~repro.limits.budget.Budget`
expired; ``steps`` says how far the replay got).

Independence is the point: this module imports only the stdlib, the
CNF representation (:mod:`repro.logic`) and budgets
(:mod:`repro.limits`) — never :mod:`repro.sat` or
:mod:`repro.compile`.  ``tools/lint_invariants.py`` (rule 7,
``proof-isolation``) enforces that at CI time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..limits.budget import Budget
from ..logic.cnf import Cnf
from .trace import (TraceError, conjoin_digest, dimacs_digest,
                    disjoin_digest, false_digest, literal_digest,
                    parse_header, true_digest)

__all__ = ["PROVED", "REFUTED", "INCOMPLETE", "CheckResult",
           "check_proof"]

PROVED = "PROVED"
REFUTED = "REFUTED"
INCOMPLETE = "INCOMPLETE"


@dataclass(frozen=True)
class CheckResult:
    """The checker's verdict on one (DIMACS, trace) pair.

    ``model_count`` is only set on ``PROVED`` — the count over the
    header's full variable range, derived (not trusted) from the
    verified trace.  ``line`` is the 1-based trace line of the first
    bad step on ``REFUTED``; ``steps`` counts replayed step lines.
    """

    verdict: str
    reason: str = ""
    line: Optional[int] = None
    steps: int = 0
    model_count: Optional[int] = None
    circuit_digest: Optional[str] = None

    @property
    def proved(self) -> bool:
        return self.verdict == PROVED

    def as_wire(self) -> Dict[str, object]:
        out: Dict[str, object] = {"verdict": self.verdict,
                                  "steps": self.steps}
        if self.reason:
            out["reason"] = self.reason
        if self.line is not None:
            out["line"] = self.line
        if self.model_count is not None:
            out["model_count"] = self.model_count
        return out


class _Refuted(Exception):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(message)
        self.line = line


class _Expired(Exception):
    pass


class _Propagator:
    """Minimal occurrence-list unit propagation with a trail.

    Deliberately naive (no watched literals): a handful of lines that
    can be audited independently of :mod:`repro.sat`.  Propagation is
    restricted to a caller-supplied clause-id *scope* — sound for the
    replay because verified component partitions are variable-disjoint,
    so no implication can escape the component being replayed.
    """

    def __init__(self, clauses: Sequence[Tuple[int, ...]],
                 num_vars: int) -> None:
        self.clauses = clauses
        self.value: Dict[int, bool] = {}
        self.trail: List[int] = []
        self.occ: Dict[int, List[int]] = {}
        for ci, clause in enumerate(clauses):
            for lit in clause:
                self.occ.setdefault(abs(lit), []).append(ci)

    def mark(self) -> int:
        return len(self.trail)

    def undo_to(self, mark: int) -> None:
        while len(self.trail) > mark:
            self.value.pop(abs(self.trail.pop()), None)

    def _assign(self, lit: int) -> bool:
        var = abs(lit)
        current = self.value.get(var)
        if current is not None:
            return current == (lit > 0)
        self.value[var] = lit > 0
        self.trail.append(lit)
        return True

    def _clause_state(self, ci: int) -> Tuple[bool, List[int]]:
        """(satisfied, free literals) of clause ``ci``."""
        free: List[int] = []
        for lit in self.clauses[ci]:
            val = self.value.get(abs(lit))
            if val is None:
                free.append(lit)
            elif val == (lit > 0):
                return True, free
        return False, free

    def propagate(self, scope: FrozenSet[int],
                  start: Sequence[int]) -> Optional[List[int]]:
        """Assign ``start`` literals, then unit-propagate to fixpoint
        over the clauses in ``scope``.  Returns the literals implied
        *beyond* ``start`` (in assignment order), or None on conflict
        (the caller rewinds via :meth:`undo_to`)."""
        before = len(self.trail)
        queue: List[int] = []
        for lit in start:
            if not self._assign(lit):
                return None
            queue.append(lit)
        if not start:
            # level-0 entry: seed from the unit (and empty) clauses
            for ci in scope:
                satisfied, free = self._clause_state(ci)
                if satisfied:
                    continue
                if not free:
                    return None
                if len(free) == 1:
                    if not self._assign(free[0]):
                        return None
                    queue.append(free[0])
        head = 0
        while head < len(queue):
            lit = queue[head]
            head += 1
            for ci in self.occ.get(abs(lit), ()):  # touched clauses
                if ci not in scope:
                    continue
                satisfied, free = self._clause_state(ci)
                if satisfied:
                    continue
                if not free:
                    return None
                if len(free) == 1:
                    unit = free[0]
                    if self.value.get(abs(unit)) is None:
                        self._assign(unit)
                        queue.append(unit)
        implied = self.trail[before + len(start):]
        return list(implied)

    def residual_key(self, clause_ids: Sequence[int]
                     ) -> Tuple[Tuple[int, ...], ...]:
        """Canonical form of the residual CNF of ``clause_ids`` under
        the current assignment: the sorted multiset of reduced
        clauses.  Equal keys ⇒ identical residual formulas."""
        reduced = []
        for ci in clause_ids:
            reduced.append(tuple(sorted(
                lit for lit in self.clauses[ci]
                if self.value.get(abs(lit)) is None)))
        return tuple(sorted(reduced))

    def free_vars(self, clause_ids: Sequence[int]) -> Set[int]:
        out: Set[int] = set()
        for ci in clause_ids:
            for lit in self.clauses[ci]:
                if self.value.get(abs(lit)) is None:
                    out.add(abs(lit))
        return out


class _Replay:
    """One recursive-descent replay of a parsed trace."""

    def __init__(self, cnf: Cnf, steps: List[str], offset: int,
                 budget: Optional[Budget]) -> None:
        self.cnf = cnf
        self.steps = steps
        self.offset = offset  # header lines before the first step
        self.budget = budget
        self.cursor = 0
        self.engine = _Propagator(cnf.clauses, cnf.num_vars)
        #: completion-ordered component facts:
        #: id -> (residual key, free vars, count, digest)
        self.proved: List[Tuple[Tuple[Tuple[int, ...], ...],
                                FrozenSet[int], int, str]] = []

    # -- token stream --------------------------------------------------------
    def line_no(self, index: Optional[int] = None) -> int:
        at = self.cursor if index is None else index
        return self.offset + at + 1

    def refute(self, message: str, index: Optional[int] = None) -> None:
        raise _Refuted(message, self.line_no(index))

    def next_tokens(self, expected: str) -> List[str]:
        if self.cursor >= len(self.steps):
            raise _Refuted(
                f"trace truncated: expected {expected}",
                self.line_no(len(self.steps) - 1))
        if self.budget is not None and self.budget.charge():
            raise _Expired()
        tokens = self.steps[self.cursor].split()
        self.cursor += 1
        return tokens

    def _ints(self, tokens: List[str], start: int,
              what: str) -> List[int]:
        """Parse a 0-terminated integer list from ``tokens[start:]``."""
        if not tokens or tokens[-1] != "0":
            self.refute(f"{what} list not 0-terminated", self.cursor - 1)
        try:
            return [int(t) for t in tokens[start:-1]]
        except ValueError:
            self.refute(f"non-integer token in {what} list",
                        self.cursor - 1)
            raise AssertionError  # unreachable

    # -- grammar -------------------------------------------------------------
    def run(self) -> Tuple[int, str]:
        """Replay the whole trace; returns (model count, digest)."""
        all_ids = frozenset(range(len(self.cnf.clauses)))
        tokens = self.next_tokens("root step ('r' or 'rx')")
        if tokens[0] == "rx":
            if len(tokens) != 1:
                self.refute("malformed 'rx' step", self.cursor - 1)
            if self.engine.propagate(all_ids, []) is not None:
                self.refute("trace claims root conflict but unit "
                            "propagation finds none", self.cursor - 1)
            count, digest = 0, false_digest()
        elif tokens[0] == "r":
            claimed = self._ints(tokens, 1, "root implication")
            implied = self.engine.propagate(all_ids, [])
            if implied is None:
                self.refute("unit propagation conflicts at level 0 "
                            "but the trace claims implications",
                            self.cursor - 1)
                raise AssertionError  # unreachable
            if set(claimed) != set(implied):
                self.refute(
                    f"root implications {sorted(claimed)} differ from "
                    f"the propagation fixpoint {sorted(implied)}",
                    self.cursor - 1)
            counts, digests, used = self._partition(all_ids)
            free = (self.cnf.num_vars - len(self.engine.trail) -
                    len(used))
            count = (1 << free)
            for c in counts:
                count *= c
            digest = conjoin_digest(
                [literal_digest(lit)
                 for lit in sorted(implied, key=abs)] + digests)
        else:
            self.refute(f"expected root step, got {tokens[0]!r}",
                        self.cursor - 1)
            raise AssertionError  # unreachable
        if self.cursor != len(self.steps):
            self.refute("trailing steps after the root proof")
        return count, digest

    def _partition(self, scope: FrozenSet[int]
                   ) -> Tuple[List[int], List[str], Set[int]]:
        """Verify one partition block; returns (component counts,
        component digests, union of component variables)."""
        at = self.cursor
        tokens = self.next_tokens("partition step 'p'")
        if tokens[0] != "p" or len(tokens) != 2:
            self.refute(f"expected 'p <k>', got {' '.join(tokens)!r}",
                        at)
        try:
            k = int(tokens[1])
        except ValueError:
            self.refute("non-integer component count", at)
            raise AssertionError  # unreachable
        if k < 0:
            self.refute("negative component count", at)
        remaining = {ci for ci in scope
                     if not self.engine._clause_state(ci)[0]}
        used_vars: Set[int] = set()
        counts: List[int] = []
        digests: List[str] = []
        for _ in range(k):
            at = self.cursor
            tokens = self.next_tokens("component step ('k' or 'h')")
            kind = tokens[0]
            if kind == "h":
                if len(tokens) < 3:
                    self.refute("malformed cache reference", at)
                try:
                    ref = int(tokens[1])
                except ValueError:
                    self.refute("non-integer cache reference", at)
                    raise AssertionError  # unreachable
                ids = self._ints(tokens, 2, "component clause")
            elif kind == "k":
                ref = -1
                ids = self._ints(tokens, 1, "component clause")
            else:
                self.refute(f"expected component step, got {kind!r}",
                            at)
                raise AssertionError  # unreachable
            id_set = set(ids)
            if len(id_set) != len(ids):
                self.refute("duplicate clause id in component", at)
            if not id_set <= remaining:
                bad = sorted(id_set - remaining)
                self.refute(
                    f"component claims clauses {bad} that are not "
                    f"active (satisfied, out of scope, or already "
                    f"claimed by a sibling component)", at)
            remaining -= id_set
            comp_vars = self.engine.free_vars(ids)
            if not comp_vars:
                self.refute("component with no free variables", at)
            overlap = comp_vars & used_vars
            if overlap:
                self.refute(
                    f"components share variables {sorted(overlap)} — "
                    f"the partition is not variable-disjoint", at)
            used_vars |= comp_vars
            if kind == "h":
                if not 0 <= ref < len(self.proved):
                    self.refute(
                        f"cache back-reference to unproved component "
                        f"{ref}", at)
                key = self.engine.residual_key(ids)
                ref_key, _, count, digest = self.proved[ref]
                if key != ref_key:
                    self.refute(
                        f"cache back-reference {ref} names a "
                        f"different residual formula", at)
            else:
                count, digest = self._component(ids, comp_vars, at)
            counts.append(count)
            digests.append(digest)
        if remaining:
            self.refute(
                f"partition does not cover active clauses "
                f"{sorted(remaining)}", self.cursor - 1)
        return counts, digests, used_vars

    def _component(self, ids: List[int], comp_vars: Set[int],
                   at: int) -> Tuple[int, str]:
        """Verify one fresh component proof (a decision with two
        branches); returns (count over the component's variables,
        digest), and records the component fact for back-references."""
        residual = self.engine.residual_key(ids)
        scope = frozenset(ids)
        dt = self.cursor
        tokens = self.next_tokens("decision step 'd'")
        if tokens[0] != "d" or len(tokens) != 2:
            self.refute(f"expected 'd <var>', got "
                        f"{' '.join(tokens)!r}", dt)
        try:
            var = int(tokens[1])
        except ValueError:
            self.refute("non-integer decision variable", dt)
            raise AssertionError  # unreachable
        if var not in comp_vars:
            self.refute(f"decision variable {var} is not free in the "
                        f"component", dt)
        branch_results: List[Tuple[int, str]] = []
        for expected in (var, -var):
            branch_results.append(
                self._branch(expected, scope, comp_vars))
        count = branch_results[0][0] + branch_results[1][0]
        digest = disjoin_digest([branch_results[0][1],
                                 branch_results[1][1]])
        self.proved.append((residual, frozenset(comp_vars), count,
                            digest))
        return count, digest

    def _branch(self, expected_lit: int, scope: FrozenSet[int],
                comp_vars: Set[int]) -> Tuple[int, str]:
        at = self.cursor
        tokens = self.next_tokens("branch step ('b' or 'x')")
        kind = tokens[0]
        if kind == "x":
            if len(tokens) != 2 or tokens[1] != str(expected_lit):
                self.refute(
                    f"expected conflict branch on {expected_lit}, "
                    f"got {' '.join(tokens)!r}", at)
            mark = self.engine.mark()
            result = self.engine.propagate(scope, [expected_lit])
            self.engine.undo_to(mark)
            if result is not None:
                self.refute(
                    f"trace claims branch {expected_lit} conflicts "
                    f"but unit propagation finds none", at)
            return 0, false_digest()
        if kind != "b":
            self.refute(f"expected branch step, got {kind!r}", at)
        if len(tokens) < 3 or tokens[1] != str(expected_lit):
            self.refute(
                f"expected branch on {expected_lit}, got "
                f"{' '.join(tokens)!r}", at)
        claimed = self._ints(tokens, 2, "branch implication")
        mark = self.engine.mark()
        implied = self.engine.propagate(scope, [expected_lit])
        try:
            if implied is None:
                self.refute(
                    f"branch {expected_lit} conflicts under unit "
                    f"propagation but the trace claims it succeeds",
                    at)
                raise AssertionError  # unreachable
            if set(claimed) != set(implied):
                self.refute(
                    f"branch implications {sorted(claimed)} differ "
                    f"from the propagation fixpoint "
                    f"{sorted(implied)}", at)
            counts, digests, used = self._partition(scope)
            assigned = 1 + len(implied)
            free = len(comp_vars) - assigned - len(used)
            if free < 0:
                self.refute(
                    "branch assigns or decomposes more variables "
                    "than the component has", at)
            count = (1 << free)
            for c in counts:
                count *= c
            digest = conjoin_digest(
                [literal_digest(expected_lit)] +
                [literal_digest(lit)
                 for lit in sorted(implied, key=abs)] + digests)
            return count, digest
        finally:
            self.engine.undo_to(mark)


def check_proof(dimacs: str, trace: str,
                budget: Optional[Budget] = None) -> CheckResult:
    """Replay ``trace`` against ``dimacs``; never raises on bad input
    — malformed traces and failed checks are ``REFUTED`` verdicts
    (the trace is evidence, not trusted data), and budget expiry is
    ``INCOMPLETE``.

    On ``PROVED``, ``model_count`` is the exact model count of the
    CNF over its full ``1..num_vars`` range, derived independently
    from the verified decomposition — the corollary the trust ladder
    promises.
    """
    try:
        cnf = Cnf.from_dimacs(dimacs)
    except ValueError as error:
        return CheckResult(REFUTED, reason=f"unparseable DIMACS: "
                                           f"{error}")
    try:
        fields, steps, offset = parse_header(trace)
    except TraceError as error:
        return CheckResult(REFUTED, reason=str(error),
                           line=error.line or None)
    canonical = cnf.to_dimacs()
    if fields["dimacs"] != dimacs_digest(canonical):
        return CheckResult(
            REFUTED, line=4,
            reason="trace is bound to a different DIMACS input")
    try:
        if int(fields["vars"]) != cnf.num_vars or \
                int(fields["clauses"]) != len(cnf.clauses):
            return CheckResult(
                REFUTED, line=2,
                reason="header variable/clause counts disagree with "
                       "the DIMACS input")
    except ValueError:
        return CheckResult(REFUTED, line=2,
                           reason="non-integer header counts")
    replay = _Replay(cnf, steps, offset, budget)
    try:
        count, digest = replay.run()
    except _Refuted as error:
        return CheckResult(REFUTED, reason=str(error), line=error.line,
                           steps=replay.cursor)
    except _Expired:
        reason = "budget"
        if budget is not None and budget.expired():
            reason = str(budget.expired())
        return CheckResult(INCOMPLETE, reason=reason,
                           steps=replay.cursor)
    if digest != fields["circuit"]:
        return CheckResult(
            REFUTED, line=5, steps=replay.cursor,
            reason="the trace proves a circuit whose semantic digest "
                   "differs from the header's — the compiler's trace "
                   "does not describe the circuit it built")
    return CheckResult(PROVED, steps=replay.cursor, model_count=count,
                       circuit_digest=digest)
