"""Equivalence proofs for Decision-DNNF compilation.

A compilation run is an exhaustive DPLL search; its trace *is* a proof
that the produced circuit is equivalent to the input CNF.  With
``DnnfCompiler(proof=True)`` the compiler emits that trace — root unit
implications, component partitions, decision splits, per-branch
implications, conflict leaves and cache back-references — as a
``repro-proof/1`` text document, and :func:`check_proof` replays it
against the original DIMACS with its own minimal unit-propagation
engine, concluding ``PROVED`` (circuit ≡ CNF, model count as a
corollary), ``REFUTED`` (first bad step as a minimal witness) or
``INCOMPLETE`` (budget expired mid-check).

The checker is deliberately *independent* of the compiler: nothing in
this package may import :mod:`repro.sat`, :mod:`repro.compile` or any
other engine internals — only the stdlib, the CNF representation
(:mod:`repro.logic`) and budgets (:mod:`repro.limits`).  The
``proof-isolation`` rule in ``tools/lint_invariants.py`` enforces
this, so a compiler bug can never silently leak into the checker that
is supposed to catch it.  See ``docs/proofs.md`` for the trace format
specification and the trust ladder.
"""

from .checker import (INCOMPLETE, PROVED, REFUTED, CheckResult,
                      check_proof)
from .trace import (PROOF_SCHEMA, TraceBuilder, TraceError,
                    circuit_digest, conjoin_digest, dimacs_digest,
                    disjoin_digest, false_digest, literal_digest,
                    parse_header, true_digest)

__all__ = [
    "PROOF_SCHEMA", "TraceBuilder", "TraceError", "circuit_digest",
    "conjoin_digest", "dimacs_digest", "disjoin_digest",
    "false_digest", "literal_digest", "parse_header", "true_digest",
    "PROVED", "REFUTED", "INCOMPLETE", "CheckResult", "check_proof",
]
