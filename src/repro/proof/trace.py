"""The ``repro-proof/1`` trace format and its semantic digests.

A trace is a line-oriented text document: a fixed header followed by a
pre-order serialization of the compiler's DPLL search tree.  The
grammar is *self-delimiting* — every construct has fixed arity, so no
end markers are needed and any dropped or duplicated line breaks the
parse or a semantic check downstream:

.. code-block:: text

    repro-proof/1
    vars <N>                  header: variable count of the CNF
    clauses <M>               header: clause count of the CNF
    dimacs <sha256>           header: hash of the canonical DIMACS
    circuit <digest>          header: semantic digest of the circuit
    <root>

    root      := "rx"                         (CNF unsat at level 0)
               | "r" lit* "0" partition       (root implications)
    partition := "p" k  component^k           (component split)
    component := "h" ref id* "0"              (cache back-reference)
               | "k" id* "0" decision         (fresh component proof)
    decision  := "d" var branch(+var) branch(-var)
    branch    := "x" lit                      (conflict leaf)
               | "b" lit lit* "0" partition   (implications, then split)

Components are numbered in *completion* (post-) order, starting at 0;
a ``h`` line's ``ref`` must name an already-completed component whose
residual clause set is identical to the referenced one — the checker
re-derives both residuals itself, so a forged back-reference (or a
hash-collision miscompile in the compiler's component cache) is caught
as a refutation.

Semantic digests
----------------

``circuit_digest`` computes a content hash of a circuit DAG by
structural induction, applying exactly the constant-folding rules of
:class:`repro.nnf.node.NnfManager` (``conjoin`` drops ⊤ children,
collapses to ⊥ on any ⊥ child and to the child on a singleton;
``disjoin`` dually).  The emitter hashes the circuit the compiler
*actually built* (via duck-typed ``.kind``/``.literal``/``.children``
attributes — no engine import needed); the checker re-derives the same
digest from the verified trace.  Equal digests + a verified trace
establish circuit ≡ CNF; a compiler whose emitted trace diverges from
its built circuit is refuted by the mismatch.

Everything here is stdlib-only: the ``proof-isolation`` lint rule
keeps this module importable by the independent checker.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Sequence, Tuple

__all__ = ["PROOF_SCHEMA", "TraceError", "TraceBuilder",
           "parse_header", "literal_digest", "true_digest",
           "false_digest", "conjoin_digest", "disjoin_digest",
           "circuit_digest", "dimacs_digest"]

#: schema tag on the first line of every trace
PROOF_SCHEMA = "repro-proof/1"

#: digest length in hex characters (128 bits of SHA-256)
_DIGEST_HEX = 32


class TraceError(ValueError):
    """A structurally malformed trace (bad header, bad token, wrong
    arity).  Carries the 1-based line number when known."""

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(message)
        self.line = line


def _hash(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:_DIGEST_HEX]


_TRUE = _hash("T")
_FALSE = _hash("F")


def true_digest() -> str:
    """Digest of the constant-⊤ circuit."""
    return _TRUE


def false_digest() -> str:
    """Digest of the constant-⊥ circuit."""
    return _FALSE


def literal_digest(literal: int) -> str:
    """Digest of a literal leaf."""
    return _hash(f"L{int(literal)}")


def conjoin_digest(children: Iterable[str]) -> str:
    """Digest of a conjunction, with the manager's folding rules:
    any ⊥ child folds to ⊥, ⊤ children are dropped, an empty
    conjunction is ⊤ and a singleton is its child.  Child order is
    significant (the compiler's gates are ordered)."""
    kept: List[str] = []
    for digest in children:
        if digest == _FALSE:
            return _FALSE
        if digest == _TRUE:
            continue
        kept.append(digest)
    if not kept:
        return _TRUE
    if len(kept) == 1:
        return kept[0]
    return _hash("A:" + ":".join(kept))


def disjoin_digest(children: Iterable[str]) -> str:
    """Digest of a disjunction (dual folding rules)."""
    kept: List[str] = []
    for digest in children:
        if digest == _TRUE:
            return _TRUE
        if digest == _FALSE:
            continue
        kept.append(digest)
    if not kept:
        return _FALSE
    if len(kept) == 1:
        return kept[0]
    return _hash("O:" + ":".join(kept))


def circuit_digest(root: Any) -> str:
    """Semantic digest of a live NNF circuit DAG.

    Duck-typed: ``root`` needs ``.kind`` (``"lit"``/``"true"``/
    ``"false"``/``"and"``/``"or"``), ``.literal``, ``.children`` and
    ``.id`` — the shape of :class:`repro.nnf.node.NnfNode`, without
    importing it.  Iterative post-order, so deep circuits are fine.
    """
    digests: Dict[int, str] = {}
    stack: List[Tuple[Any, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node.id in digests:
            continue
        if not expanded:
            stack.append((node, True))
            for child in node.children:
                if child.id not in digests:
                    stack.append((child, False))
            continue
        kind = node.kind
        if kind == "lit":
            digests[node.id] = literal_digest(node.literal)
        elif kind == "true":
            digests[node.id] = _TRUE
        elif kind == "false":
            digests[node.id] = _FALSE
        elif kind == "and":
            digests[node.id] = conjoin_digest(
                digests[c.id] for c in node.children)
        elif kind == "or":
            digests[node.id] = disjoin_digest(
                digests[c.id] for c in node.children)
        else:
            raise TraceError(f"cannot digest node kind {kind!r}")
    return digests[root.id]


def dimacs_digest(dimacs: str) -> str:
    """Full SHA-256 of a (canonical) DIMACS text — the input binding
    in the trace header."""
    return hashlib.sha256(dimacs.encode()).hexdigest()


class TraceBuilder:
    """Streaming emitter for the compiler side.

    The compiler appends one line per search step in pre-order; the
    circuit digest is supplied at the end (it is only known once the
    root gate exists) and the header is assembled by :meth:`text`.
    Component ids are assigned by :meth:`end_component` in completion
    order — exactly the numbering the checker re-derives.
    """

    def __init__(self, num_vars: int, num_clauses: int,
                 dimacs_sha: str) -> None:
        self.num_vars = int(num_vars)
        self.num_clauses = int(num_clauses)
        self.dimacs_sha = dimacs_sha
        self._lines: List[str] = []
        self._next_id = 0
        self._circuit: str = ""

    # -- step emission -------------------------------------------------------
    def root_conflict(self) -> None:
        self._lines.append("rx")

    def root(self, implied: Sequence[int]) -> None:
        self._lines.append(
            "r " + " ".join(str(lit) for lit in implied) + " 0"
            if implied else "r 0")

    def begin_partition(self, count: int) -> None:
        self._lines.append(f"p {count}")

    def cache_hit(self, ref: int, clause_ids: Sequence[int]) -> None:
        self._lines.append(
            f"h {ref} " + " ".join(str(i) for i in clause_ids) + " 0")

    def begin_component(self, clause_ids: Sequence[int]) -> None:
        self._lines.append(
            "k " + " ".join(str(i) for i in clause_ids) + " 0")

    def end_component(self) -> int:
        """Assign this component's completion-order id (no line is
        emitted — the grammar is self-delimiting)."""
        pid = self._next_id
        self._next_id += 1
        return pid

    def decision(self, var: int) -> None:
        self._lines.append(f"d {var}")

    def branch(self, literal: int, implied: Sequence[int]) -> None:
        self._lines.append(
            f"b {literal} " +
            " ".join(str(lit) for lit in implied) +
            (" 0" if implied else "0"))

    def branch_conflict(self, literal: int) -> None:
        self._lines.append(f"x {literal}")

    # -- finalisation --------------------------------------------------------
    def set_circuit_digest(self, digest: str) -> None:
        self._circuit = digest

    def steps(self) -> int:
        return len(self._lines)

    def text(self) -> str:
        if not self._circuit:
            raise TraceError("circuit digest not set before text()")
        header = [PROOF_SCHEMA,
                  f"vars {self.num_vars}",
                  f"clauses {self.num_clauses}",
                  f"dimacs {self.dimacs_sha}",
                  f"circuit {self._circuit}"]
        return "\n".join(header + self._lines) + "\n"


def parse_header(text: str) -> Tuple[Dict[str, str], List[str], int]:
    """Split a trace into ``(header fields, step lines, body line
    offset)``.  Raises :class:`TraceError` on a malformed header."""
    lines = text.splitlines()
    if not lines or lines[0].strip() != PROOF_SCHEMA:
        raise TraceError(
            f"missing {PROOF_SCHEMA!r} schema line", line=1)
    fields: Dict[str, str] = {}
    index = 1
    required = ("vars", "clauses", "dimacs", "circuit")
    for name in required:
        if index >= len(lines):
            raise TraceError(f"truncated header (missing {name!r})",
                             line=index + 1)
        parts = lines[index].split()
        if len(parts) != 2 or parts[0] != name:
            raise TraceError(
                f"expected header line {name!r}, got "
                f"{lines[index]!r}", line=index + 1)
        fields[name] = parts[1]
        index += 1
    steps = [line for line in lines[index:] if line.strip()]
    return fields, steps, index
