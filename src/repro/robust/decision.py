"""Decision robustness ([81]; Section 5.2).

The robustness of the decision on instance x is the smallest number of
features that must flip to change the classification.  On an OBDD it
is a single minimum-cost-model computation: among the instances
classified *differently*, find the one closest to x in Hamming
distance — linear in the circuit size.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..obdd.manager import ObddNode
from ..obdd.ops import minimum_cardinality

__all__ = ["decision_robustness"]


def decision_robustness(node: ObddNode,
                        instance: Mapping[int, bool]) -> float:
    """Minimum number of feature flips that change the decision.

    Returns ``inf`` when the function is constant (no flip ever changes
    the decision).
    """
    manager = node.manager
    decision = node.evaluate(instance)
    opposite = manager.negate(node) if decision else node
    costs: Dict[int, float] = {}
    for var in manager.var_order:
        value = instance[var]
        costs[var] = 0.0 if value else 1.0      # keeping/flipping to 1
        costs[-var] = 1.0 if value else 0.0     # keeping/flipping to 0
    return minimum_cardinality(opposite, costs)
