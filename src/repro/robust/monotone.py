"""Formal property verification of compiled classifiers (Section 5.2).

The paper's example: "can we guarantee that a loan applicant will be
approved when the only difference they have with another approved
applicant is their higher income?" — i.e. monotonicity in a feature.
On an OBDD these are constant-time-per-node checks via apply.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..obdd.manager import ObddNode
from ..obdd.ops import restrict

__all__ = ["is_monotone_in", "monotone_report", "depends_on"]


def is_monotone_in(node: ObddNode, var: int,
                   increasing: bool = True) -> bool:
    """Is the function monotone (non-decreasing by default) in ``var``?

    Non-decreasing: f|¬v ⇒ f|v, i.e. turning the feature on can never
    turn the decision off.
    """
    manager = node.manager
    high = restrict(node, {var: True})
    low = restrict(node, {var: False})
    if increasing:
        weaker, stronger = low, high
    else:
        weaker, stronger = high, low
    # weaker ⇒ stronger  iff  weaker ∧ ¬stronger is unsatisfiable
    return manager.apply_and(weaker,
                             manager.negate(stronger)) is manager.zero


def depends_on(node: ObddNode, var: int) -> bool:
    """Does the function depend on ``var`` at all?"""
    return restrict(node, {var: True}) is not restrict(node, {var: False})


def monotone_report(node: ObddNode,
                    variables: Sequence[int] | None = None
                    ) -> Dict[int, str]:
    """Per-variable monotonicity classification:
    'increasing' / 'decreasing' / 'both' (irrelevant) / 'none'."""
    if variables is None:
        variables = node.manager.var_order
    report: Dict[int, str] = {}
    for var in variables:
        up = is_monotone_in(node, var, increasing=True)
        down = is_monotone_in(node, var, increasing=False)
        if up and down:
            report[var] = "both"   # the function ignores the variable
        elif up:
            report[var] = "increasing"
        elif down:
            report[var] = "decreasing"
        else:
            report[var] = "none"
    return report
