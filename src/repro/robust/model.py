"""Model robustness and robustness histograms ([80]; Fig 29).

Model robustness is the *average* decision robustness over all 2^n
instances.  Computing it for every instance at once is exactly what
tractable circuits buy (the paper: "Figure 29 reports the robustness of
2^256 instances for each CNN"): repeatedly *dilate* each decision
region by one Hamming step and count how many instances each wave
reaches.

dilate(S) = S ∪ ⋃_v flip_v(S); an instance classified d has robustness
k iff it first enters the dilation of the opposite region at step k.
Each dilation is n OBDD flips and disjunctions — a sequence of polytime
operations whose total cost is not guaranteed polytime [80], matching
the paper's complexity remark.
"""

from __future__ import annotations

from typing import Dict

from ..obdd.manager import ObddNode
from ..obdd.ops import flip_variable, model_count

__all__ = ["robustness_histogram", "model_robustness",
           "robustness_summary", "robust_region"]


def _dilate(node: ObddNode) -> ObddNode:
    manager = node.manager
    result = node
    for var in manager.var_order:
        result = manager.apply_or(result, flip_variable(node, var))
    return result


def robust_region(node: ObddNode, k: int) -> ObddNode:
    """The set of instances whose decision survives *any* ≤ k flips.

    Returned as an OBDD (the paper's "capture all 2^n instances at
    once" trick): an instance is k-robust iff the k-fold dilation of
    the opposite decision region does not reach it.  ``robust_region(f,
    0)`` is the constant-⊤ function.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    manager = node.manager
    if node.is_terminal:
        return manager.one
    positive, negative = node, manager.negate(node)
    reach_negative, reach_positive = negative, positive
    for _ in range(k):
        reach_negative = _dilate(reach_negative)
        reach_positive = _dilate(reach_positive)
    safe_positive = manager.apply_and(positive,
                                      manager.negate(reach_negative))
    safe_negative = manager.apply_and(negative,
                                      manager.negate(reach_positive))
    return manager.apply_or(safe_positive, safe_negative)


def robustness_histogram(node: ObddNode) -> Dict[int, int]:
    """{robustness level k: number of instances with robustness k} over
    all 2^n instances (both classes).

    A constant function has no finite robustness anywhere; an empty
    histogram is returned in that case.
    """
    manager = node.manager
    if node.is_terminal:
        return {}
    histogram: Dict[int, int] = {}
    for region, opposite in ((node, manager.negate(node)),
                             (manager.negate(node), node)):
        # instances in `region` get robustness = first dilation step of
        # `opposite` that reaches them
        reached = opposite
        level = 0
        remaining = model_count(region)
        while remaining > 0:
            level += 1
            previous = reached
            reached = _dilate(reached)
            newly = manager.apply_and(
                region, manager.apply_and(reached,
                                          manager.negate(previous)))
            count = model_count(newly)
            if count:
                histogram[level] = histogram.get(level, 0) + count
                remaining -= count
    return histogram


def model_robustness(node: ObddNode) -> float:
    """Average decision robustness over all instances [80]."""
    histogram = robustness_histogram(node)
    total = sum(histogram.values())
    if total == 0:
        raise ValueError("model robustness undefined for constant "
                         "functions")
    return sum(level * count for level, count in histogram.items()) / \
        total


def robustness_summary(node: ObddNode) -> Dict[str, float]:
    """The Fig 29 statistics: average and maximum robustness, plus the
    full (level → instance share) curve."""
    histogram = robustness_histogram(node)
    total = sum(histogram.values())
    curve = {level: count / total
             for level, count in sorted(histogram.items())}
    return {
        "model_robustness": model_robustness(node),
        "max_robustness": max(histogram),
        "histogram": dict(sorted(histogram.items())),
        "proportions": curve,
    }
