"""Robustness and formal verification of compiled classifiers."""

from .decision import decision_robustness
from .model import (model_robustness, robust_region,
                    robustness_histogram, robustness_summary)
from .monotone import depends_on, is_monotone_in, monotone_report

__all__ = ["decision_robustness", "model_robustness",
           "robust_region", "robustness_histogram", "robustness_summary", "depends_on",
           "is_monotone_in", "monotone_report"]
