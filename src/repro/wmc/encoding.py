"""Encoding Bayesian networks as weighted CNFs (Section 2.2).

Two encodings are provided:

* :func:`encode_binary` — the paper's Section 2.2 construction [24]:
  one Boolean variable per (binary) network variable, one *parameter
  variable* per CPT entry, and a biconditional per parameter tying its
  presence to the compatible instantiations.  Weights: network literals
  weigh 1; a positive parameter literal weighs its θ; a negative one
  weighs 1.
* :func:`encode_multistate` — the indicator-variable encoding in the
  style of [73], which handles variables of any cardinality: one
  indicator per variable/state with exactly-one clauses.

Either way, the weighted model count of the encoding equals 1 (total
probability), each model corresponds to one network instantiation with
weight equal to its probability — e.g. expression (1) of the paper —
and Pr(e) is the WMC with evidence-inconsistent indicators zeroed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

import numpy as np

from ..logic.cnf import Cnf, exactly_one
from ..bayesnet.network import BayesianNetwork

__all__ = ["BnEncoding", "encode_binary", "encode_multistate"]


@dataclass
class BnEncoding:
    """A weighted-CNF encoding of a Bayesian network.

    Attributes
    ----------
    cnf:
        The Boolean formula Δ.
    weights:
        Literal → weight map (keys ±v for every CNF variable).
    indicator:
        (variable name, state) → *literal* asserting that state.  For
        the binary encoding these are ±v of the single Boolean variable;
        for the multistate encoding they are positive indicator vars.
    network_vars:
        CNF variables that carry network-variable state (the MPE
        projection set).
    """

    cnf: Cnf
    weights: Dict[int, float]
    indicator: Dict[Tuple[str, int], int]
    network_vars: List[int] = field(default_factory=list)

    def evidence_weights(self, evidence: Mapping[str, int]
                         ) -> Dict[int, float]:
        """Weights with evidence-inconsistent states zeroed out."""
        adjusted = dict(self.weights)
        by_name: Dict[str, List[Tuple[int, int]]] = {}
        for (name, state), literal in self.indicator.items():
            by_name.setdefault(name, []).append((state, literal))
        for name, state in evidence.items():
            for other_state, literal in by_name[name]:
                if other_state != state:
                    adjusted[literal] = 0.0
        return adjusted

    def state_of_model(self, model: Mapping[int, bool]
                       ) -> Dict[str, int]:
        """Decode a CNF model into a network instantiation."""
        result: Dict[str, int] = {}
        for (name, state), literal in self.indicator.items():
            value = model[abs(literal)]
            holds = value if literal > 0 else not value
            if holds:
                result[name] = state
        return result


def encode_binary(network: BayesianNetwork,
                  exploit_determinism: bool = False) -> BnEncoding:
    """The Section 2.2 encoding; requires all variables binary.

    With ``exploit_determinism`` (the refinement the paper highlights
    for networks with an "abundance of 0/1 probabilities"), parameters
    equal to 1 produce neither a variable nor clauses, and parameters
    equal to 0 produce a single blocking clause instead of a parameter
    variable — typically much smaller encodings and compiled circuits
    on deterministic networks (see the ABL4 benchmark).
    """
    for name in network.variables:
        if network.cardinality(name) != 2:
            raise ValueError(
                f"binary encoding requires binary variables; {name!r} "
                f"has {network.cardinality(name)} states")
    var_index: Dict[str, int] = {}
    next_var = 1
    for name in network.variables:
        var_index[name] = next_var
        next_var += 1

    clauses: List[Tuple[int, ...]] = []
    weights: Dict[int, float] = {}
    indicator: Dict[Tuple[str, int], int] = {}
    for name in network.variables:
        v = var_index[name]
        indicator[(name, 1)] = v
        indicator[(name, 0)] = -v
        weights[v] = 1.0
        weights[-v] = 1.0

    for name in network.variables:
        cpt = network.cpt(name)
        parents = cpt.parents
        for index in np.ndindex(*cpt.values.shape):
            *parent_states, state = index
            theta = float(cpt.values[index])
            term = [var_index[p] if s == 1 else -var_index[p]
                    for p, s in zip(parents, parent_states)]
            term.append(var_index[name] if state == 1
                        else -var_index[name])
            if exploit_determinism and theta == 1.0:
                continue  # weight 1, no constraint needed
            if exploit_determinism and theta == 0.0:
                clauses.append(tuple(-lit for lit in term))
                continue  # the instantiation is simply impossible
            param = next_var
            next_var += 1
            weights[param] = theta
            weights[-param] = 1.0
            # term -> param
            clauses.append(tuple([-lit for lit in term] + [param]))
            # param -> each term literal
            for lit in term:
                clauses.append((-param, lit))

    cnf = Cnf(clauses, num_vars=next_var - 1)
    return BnEncoding(cnf=cnf, weights=weights, indicator=indicator,
                      network_vars=[var_index[n]
                                    for n in network.variables])


def encode_multistate(network: BayesianNetwork,
                      exploit_determinism: bool = False) -> BnEncoding:
    """Indicator-variable encoding; supports any cardinalities.

    ``exploit_determinism`` drops parameter variables for 0/1 CPT
    entries as in :func:`encode_binary`.
    """
    indicator: Dict[Tuple[str, int], int] = {}
    next_var = 1
    for name in network.variables:
        for state in range(network.cardinality(name)):
            indicator[(name, state)] = next_var
            next_var += 1

    clauses: List[Tuple[int, ...]] = []
    weights: Dict[int, float] = {}
    for literal in indicator.values():
        weights[literal] = 1.0
        weights[-literal] = 1.0
    for name in network.variables:
        states = [indicator[(name, s)]
                  for s in range(network.cardinality(name))]
        clauses.extend(exactly_one(states))

    for name in network.variables:
        cpt = network.cpt(name)
        parents = cpt.parents
        for index in np.ndindex(*cpt.values.shape):
            *parent_states, state = index
            theta = float(cpt.values[index])
            term = [indicator[(p, s)]
                    for p, s in zip(parents, parent_states)]
            term.append(indicator[(name, state)])
            if exploit_determinism and theta == 1.0:
                continue
            if exploit_determinism and theta == 0.0:
                clauses.append(tuple(-lit for lit in term))
                continue
            param = next_var
            next_var += 1
            weights[param] = theta
            weights[-param] = 1.0
            clauses.append(tuple([-lit for lit in term] + [param]))
            for lit in term:
                clauses.append((-param, lit))

    cnf = Cnf(clauses, num_vars=next_var - 1)
    network_vars = sorted({abs(lit) for lit in indicator.values()})
    return BnEncoding(cnf=cnf, weights=weights, indicator=indicator,
                      network_vars=network_vars)
