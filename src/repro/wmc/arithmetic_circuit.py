"""Arithmetic circuits from compiled d-DNNFs (the differential approach).

Evaluating a smooth d-DNNF under literal weights gives the weighted
model count; differentiating the evaluation with respect to each
literal's weight gives, in one extra downward pass, the weighted count
of models containing each literal [23, 25].  This is how "all marginal
weighted model counts" come out in linear time (the paper's footnote 5)
and the core of AC-based Bayesian network inference.

The scalar methods are the reference implementation; ``*_batch``
variants answer N weight vectors in one numpy pass through the dense
circuit kernel (:mod:`repro.nnf.kernel`), which is how dataset-sized
query loads (classifier scoring, per-evidence MAR) are served.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from ..nnf.kernel import (KIND_LIT, get_kernel, pack_weight_batch)
from ..nnf.node import NnfNode
from ..nnf.transform import smooth as smooth_transform

__all__ = ["ArithmeticCircuit"]


class ArithmeticCircuit:
    """A smooth d-DNNF with literal weights, supporting evaluation and
    differentiation.

    The circuit is smoothed at construction; variables never mentioned
    by the circuit are tracked separately and contribute the factor
    W(v) + W(-v).
    """

    def __init__(self, root: NnfNode, variables: List[int]):
        self.root = smooth_transform(root)
        self.variables = list(variables)
        mentioned = set(self.root.variables())
        missing = mentioned - set(self.variables)
        if missing:
            raise ValueError(f"circuit mentions unlisted vars {missing}")
        self.free_vars = [v for v in self.variables if v not in mentioned]
        self._order = self.root.topological()

    def to_ir(self):
        """Lower the smoothed circuit onto the flattened execution IR
        (:func:`repro.ir.lower.ac_to_ir`); ``free_vars`` stay the AC's
        own bookkeeping."""
        from ..ir.lower import ac_to_ir
        return ac_to_ir(self)

    def evaluate(self, weights: Mapping[int, float]) -> float:
        """The weighted model count under ``weights``."""
        values = self._upward(weights)
        result = values[self.root.id]
        for var in self.free_vars:
            result *= weights[var] + weights[-var]
        return result

    def _upward(self, weights: Mapping[int, float]) -> Dict[int, float]:
        values: Dict[int, float] = {}
        for node in self._order:
            if node.is_literal:
                values[node.id] = weights[node.literal]
            elif node.is_true:
                values[node.id] = 1.0
            elif node.is_false:
                values[node.id] = 0.0
            elif node.is_and:
                value = 1.0
                for child in node.children:
                    value *= values[child.id]
                values[node.id] = value
            else:
                values[node.id] = sum(values[c.id]
                                      for c in node.children)
        return values

    def derivatives(self, weights: Mapping[int, float]
                    ) -> Dict[int, float]:
        """∂(WMC)/∂W(ℓ) for every literal ℓ over ``variables``.

        For a literal ℓ this equals the weighted count of models
        containing ℓ divided by W(ℓ) — i.e. the weighted count of
        models containing ℓ when its own weight is factored out.
        """
        values = self._upward(weights)
        free_factor = 1.0
        for var in self.free_vars:
            free_factor *= weights[var] + weights[-var]
        derivative: Dict[int, float] = {n.id: 0.0 for n in self._order}
        derivative[self.root.id] = free_factor
        for node in reversed(self._order):
            d = derivative[node.id]
            if d == 0.0 or node.is_literal or node.is_true or node.is_false:
                continue
            if node.is_or:
                for child in node.children:
                    derivative[child.id] += d
            else:
                # ∂/∂child = d · Π siblings, via linear prefix/suffix
                # products instead of the O(k²) per-child re-multiply
                kids = node.children
                k = len(kids)
                prefixes = [1.0] * k
                running = 1.0
                for i in range(k):
                    prefixes[i] = running
                    running *= values[kids[i].id]
                suffix = 1.0
                for i in range(k - 1, -1, -1):
                    derivative[kids[i].id] += d * prefixes[i] * suffix
                    suffix *= values[kids[i].id]
        result: Dict[int, float] = {}
        for node in self._order:
            if node.is_literal:
                result[node.literal] = result.get(node.literal, 0.0) + \
                    derivative[node.id]
        # free variables: every model extends with either literal; the
        # partial product over the *other* free variables comes from the
        # same linear prefix/suffix scheme
        root_value = values[self.root.id]
        k = len(self.free_vars)
        prefixes = [1.0] * k
        running = 1.0
        for i, var in enumerate(self.free_vars):
            prefixes[i] = running
            running *= weights[var] + weights[-var]
        suffix = 1.0
        for i in range(k - 1, -1, -1):
            var = self.free_vars[i]
            other = prefixes[i] * suffix
            result[var] = root_value * other
            result[-var] = root_value * other
            suffix *= weights[var] + weights[-var]
        # mentioned variables may still miss a polarity (never appears)
        for var in self.variables:
            result.setdefault(var, 0.0)
            result.setdefault(-var, 0.0)
        return result

    def literal_marginals(self, weights: Mapping[int, float]
                          ) -> Dict[int, float]:
        """Weighted count of models containing each literal:
        W(ℓ) · ∂WMC/∂W(ℓ)."""
        derivs = self.derivatives(weights)
        return {lit: weights[lit] * d for lit, d in derivs.items()}

    # -- batched passes ------------------------------------------------------
    def _weight_batch(self, weights):
        """literal → length-N array mapping from either representation."""
        if isinstance(weights, Mapping):
            return weights
        return pack_weight_batch(list(weights), self.variables)

    def _free_factor_batch(self, batch):
        factor = None
        for var in self.free_vars:
            term = batch[var] + batch[-var]
            factor = term if factor is None else factor * term
        return factor

    def evaluate_batch(self, weights):
        """Weighted model counts of N weight vectors in one numpy pass.

        ``weights`` is a sequence of N literal→weight maps or a packed
        literal → length-N array mapping over ``self.variables``;
        column ``j`` of the result equals ``evaluate`` of vector ``j``.
        """
        batch = self._weight_batch(weights)
        result = get_kernel(self.root).wmc_batch(batch)
        free = self._free_factor_batch(batch)
        return result if free is None else result * free

    def evaluate_log_batch(self, weights):
        """Log-space :meth:`evaluate_batch`: same linear weights in,
        length-N array of **log** WMCs out (zero weights → ``-inf``)."""
        import numpy as np
        batch = self._weight_batch(weights)
        with np.errstate(divide="ignore"):
            log_batch = {lit: np.log(np.asarray(col, dtype=float))
                         for lit, col in batch.items()}
        result = get_kernel(self.root).wmc_log_batch(log_batch)
        for var in self.free_vars:
            result = result + np.logaddexp(log_batch[var],
                                           log_batch[-var])
        return result

    def derivatives_batch(self, weights) -> Dict[int, "object"]:
        """Batched :meth:`derivatives`: literal → length-N array of
        ∂WMC/∂W(ℓ), from one upward + one downward kernel pass."""
        import numpy as np
        batch = self._weight_batch(weights)
        kernel = get_kernel(self.root)
        values, node_derivs = kernel.derivatives_batch(batch)
        free = self._free_factor_batch(batch)
        if free is not None:
            # d(root)/d(node) scales by the free-variable factor
            node_derivs = [d * free for d in node_derivs]
        n = kernel._batch_size(batch)
        zeros = np.zeros(n)
        result: Dict[int, object] = {}
        for i in range(kernel.n):
            if kernel.kinds[i] == KIND_LIT:
                lit = kernel.lits[i]
                result[lit] = result.get(lit, zeros) + node_derivs[i]
        root_value = values[kernel.n - 1] if kernel.n else zeros
        k = len(self.free_vars)
        prefixes = [None] * k
        running = np.ones(n)
        for i, var in enumerate(self.free_vars):
            prefixes[i] = running
            running = running * (batch[var] + batch[-var])
        suffix = np.ones(n)
        for i in range(k - 1, -1, -1):
            var = self.free_vars[i]
            other = root_value * prefixes[i] * suffix
            result[var] = other
            result[-var] = other.copy()
            suffix = suffix * (batch[var] + batch[-var])
        for var in self.variables:
            result.setdefault(var, zeros)
            result.setdefault(-var, zeros)
        return result

    def literal_marginals_batch(self, weights) -> Dict[int, "object"]:
        """Batched :meth:`literal_marginals`: literal → length-N array
        of weighted counts of models containing the literal."""
        batch = self._weight_batch(weights)
        derivs = self.derivatives_batch(batch)
        return {lit: batch[lit] * d for lit, d in derivs.items()}
