"""Arithmetic circuits from compiled d-DNNFs (the differential approach).

Evaluating a smooth d-DNNF under literal weights gives the weighted
model count; differentiating the evaluation with respect to each
literal's weight gives, in one extra downward pass, the weighted count
of models containing each literal [23, 25].  This is how "all marginal
weighted model counts" come out in linear time (the paper's footnote 5)
and the core of AC-based Bayesian network inference.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from ..nnf.node import NnfNode
from ..nnf.transform import smooth as smooth_transform

__all__ = ["ArithmeticCircuit"]


class ArithmeticCircuit:
    """A smooth d-DNNF with literal weights, supporting evaluation and
    differentiation.

    The circuit is smoothed at construction; variables never mentioned
    by the circuit are tracked separately and contribute the factor
    W(v) + W(-v).
    """

    def __init__(self, root: NnfNode, variables: List[int]):
        self.root = smooth_transform(root)
        self.variables = list(variables)
        mentioned = set(self.root.variables())
        missing = mentioned - set(self.variables)
        if missing:
            raise ValueError(f"circuit mentions unlisted vars {missing}")
        self.free_vars = [v for v in self.variables if v not in mentioned]
        self._order = self.root.topological()

    def evaluate(self, weights: Mapping[int, float]) -> float:
        """The weighted model count under ``weights``."""
        values = self._upward(weights)
        result = values[self.root.id]
        for var in self.free_vars:
            result *= weights[var] + weights[-var]
        return result

    def _upward(self, weights: Mapping[int, float]) -> Dict[int, float]:
        values: Dict[int, float] = {}
        for node in self._order:
            if node.is_literal:
                values[node.id] = weights[node.literal]
            elif node.is_true:
                values[node.id] = 1.0
            elif node.is_false:
                values[node.id] = 0.0
            elif node.is_and:
                value = 1.0
                for child in node.children:
                    value *= values[child.id]
                values[node.id] = value
            else:
                values[node.id] = sum(values[c.id]
                                      for c in node.children)
        return values

    def derivatives(self, weights: Mapping[int, float]
                    ) -> Dict[int, float]:
        """∂(WMC)/∂W(ℓ) for every literal ℓ over ``variables``.

        For a literal ℓ this equals the weighted count of models
        containing ℓ divided by W(ℓ) — i.e. the weighted count of
        models containing ℓ when its own weight is factored out.
        """
        values = self._upward(weights)
        free_factor = 1.0
        for var in self.free_vars:
            free_factor *= weights[var] + weights[-var]
        derivative: Dict[int, float] = {n.id: 0.0 for n in self._order}
        derivative[self.root.id] = free_factor
        for node in reversed(self._order):
            d = derivative[node.id]
            if d == 0.0 or node.is_literal or node.is_true or node.is_false:
                continue
            if node.is_or:
                for child in node.children:
                    derivative[child.id] += d
            else:
                for i, child in enumerate(node.children):
                    partial = d
                    for j, sibling in enumerate(node.children):
                        if i != j:
                            partial *= values[sibling.id]
                    derivative[child.id] += partial
        result: Dict[int, float] = {}
        for node in self._order:
            if node.is_literal:
                result[node.literal] = result.get(node.literal, 0.0) + \
                    derivative[node.id]
        # free variables: every model extends with either literal
        root_value = values[self.root.id]
        for var in self.free_vars:
            other = 1.0
            for v in self.free_vars:
                if v != var:
                    other *= weights[v] + weights[-v]
            result[var] = root_value * other
            result[-var] = root_value * other
        # mentioned variables may still miss a polarity (never appears)
        for var in self.variables:
            result.setdefault(var, 0.0)
            result.setdefault(-var, 0.0)
        return result

    def literal_marginals(self, weights: Mapping[int, float]
                          ) -> Dict[int, float]:
        """Weighted count of models containing each literal:
        W(ℓ) · ∂WMC/∂W(ℓ)."""
        derivs = self.derivatives(weights)
        return {lit: weights[lit] * d for lit, d in derivs.items()}
