"""The compile-once / query-many pipeline: BN → CNF → d-DNNF → queries.

This is the paper's first role of logic end-to-end: probabilistic
queries on a Bayesian network answered by *purely symbolic* compilation
plus weighted circuit evaluations (Sections 2–3).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..bayesnet.network import BayesianNetwork
from ..compile.dnnf_compiler import DnnfCompiler
from ..nnf.node import NnfNode
from ..nnf.queries import mpe as nnf_mpe, weighted_model_count
from .arithmetic_circuit import ArithmeticCircuit
from .encoding import BnEncoding, encode_binary, encode_multistate

__all__ = ["WmcPipeline"]


class WmcPipeline:
    """Compile a Bayesian network once; answer MAR/MPE queries by WMC.

    Parameters
    ----------
    network:
        The Bayesian network.
    encoding:
        "binary" (the Section 2.2 encoding; binary networks only) or
        "multistate" (indicator encoding, any cardinalities).
    cache_dir:
        Directory of a content-addressed compilation cache
        (:class:`repro.ir.store.ArtifactStore`): the CNF → d-DNNF
        compilation is served from disk when the same network/encoding
        was compiled before.  Defaults to ``$REPRO_CACHE_DIR``.
    budget:
        Optional :class:`~repro.limits.budget.Budget` bounding the
        compilation that runs in this constructor; exhaustion raises
        :class:`~repro.limits.budget.BudgetExceeded` (see
        :mod:`repro.limits`).  An ambient budget governs when none is
        passed.
    backend:
        Evaluator backend for every query on the compiled circuit:
        ``"codegen"`` (per-circuit compiled numpy evaluator) or
        ``"interp"`` (the reference interpreted loops).  ``None``
        defers to ``$REPRO_BACKEND`` / the codegen default.  See
        :mod:`repro.ir.codegen`.
    """

    def __init__(self, network: BayesianNetwork,
                 encoding: str = "multistate",
                 exploit_determinism: bool = False,
                 cache_dir=None, budget=None,
                 backend: Optional[str] = None):
        self.network = network
        if encoding == "binary":
            self.encoding: BnEncoding = encode_binary(
                network, exploit_determinism=exploit_determinism)
        elif encoding == "multistate":
            self.encoding = encode_multistate(
                network, exploit_determinism=exploit_determinism)
        else:
            raise ValueError(f"unknown encoding {encoding!r}")
        store = None
        if cache_dir is not None:
            from ..ir.store import ArtifactStore
            store = ArtifactStore(cache_dir)
        self._compiler = DnnfCompiler(store=store, budget=budget)
        self.circuit: NnfNode = self._compiler.compile(self.encoding.cnf)
        self._all_vars = list(range(1, self.encoding.cnf.num_vars + 1))
        self._ac: Optional[ArithmeticCircuit] = None
        if backend is not None:
            from ..nnf.kernel import get_kernel
            get_kernel(self.circuit).set_backend(backend)

    @property
    def arithmetic_circuit(self) -> ArithmeticCircuit:
        """The (smoothed) AC view, built lazily."""
        if self._ac is None:
            self._ac = ArithmeticCircuit(self.circuit, self._all_vars)
        return self._ac

    def circuit_size(self) -> int:
        return self.circuit.edge_count()

    def backend_name(self) -> str:
        """The backend answering this pipeline's circuit queries."""
        from ..nnf.kernel import get_kernel
        return get_kernel(self.circuit).backend_name()

    def backend_stats(self) -> Dict[str, int]:
        """Codegen counters for the compiled circuit's evaluator
        (compiles, source-cache hits, fallbacks, compile/eval time in
        microseconds); empty before the first codegen query and under
        the interpreter backend."""
        from ..nnf.kernel import get_kernel
        kernel = get_kernel(self.circuit)
        compiled = getattr(kernel, "_codegen", None)
        stats = getattr(compiled, "stats", None)
        return stats.as_dict() if stats is not None else {}

    # -- queries ----------------------------------------------------------------
    def probability_of_evidence(self, evidence: Mapping[str, int]
                                ) -> float:
        """Pr(e) = WMC(Δ) under evidence-adjusted weights."""
        weights = self.encoding.evidence_weights(evidence)
        return weighted_model_count(self.circuit, weights, self._all_vars)

    def mar(self, query: Mapping[str, int],
            evidence: Mapping[str, int] | None = None) -> float:
        """Pr(query | evidence) via two weighted counts."""
        evidence = dict(evidence or {})
        joint = self.probability_of_evidence({**evidence, **query})
        denom = self.probability_of_evidence(evidence) if evidence else 1.0
        if denom == 0:
            raise ZeroDivisionError("evidence has probability zero")
        return joint / denom

    def marginals(self, evidence: Mapping[str, int] | None = None
                  ) -> Dict[str, Dict[int, float]]:
        """Posterior marginals of *all* variables from one differential
        pass on the arithmetic circuit (footnote 5 of the paper)."""
        evidence = dict(evidence or {})
        weights = self.encoding.evidence_weights(evidence)
        counts = self.arithmetic_circuit.literal_marginals(weights)
        total = self.arithmetic_circuit.evaluate(weights)
        if total == 0:
            raise ZeroDivisionError("evidence has probability zero")
        result: Dict[str, Dict[int, float]] = {}
        for (name, state), literal in self.encoding.indicator.items():
            result.setdefault(name, {})[state] = counts[literal] / total
        return result

    # -- batched queries --------------------------------------------------------
    def _evidence_weight_batch(self, evidence_batch):
        from ..nnf.kernel import pack_weight_batch
        maps = [self.encoding.evidence_weights(dict(e or {}))
                for e in evidence_batch]
        return pack_weight_batch(maps, self._all_vars)

    def probability_of_evidence_batch(
            self, evidence_batch: Sequence[Mapping[str, int]],
            log_space: bool = False):
        """Pr(e) for N evidence instantiations in one numpy pass.

        Column ``j`` of the returned length-N array equals
        ``probability_of_evidence(evidence_batch[j])`` (its log with
        ``log_space=True``, which survives networks whose evidence
        probabilities underflow a float).
        """
        batch = self._evidence_weight_batch(evidence_batch)
        ac = self.arithmetic_circuit
        if log_space:
            return ac.evaluate_log_batch(batch)
        return ac.evaluate_batch(batch)

    def marginals_batch(self,
                        evidence_batch: Sequence[Mapping[str, int]]
                        ) -> List[Dict[str, Dict[int, float]]]:
        """Posterior marginals of all variables for N evidence
        instantiations — one batched upward + downward differential
        pass instead of N scalar :meth:`marginals` calls.
        """
        batch = self._evidence_weight_batch(evidence_batch)
        ac = self.arithmetic_circuit
        counts = ac.literal_marginals_batch(batch)
        totals = ac.evaluate_batch(batch)
        results: List[Dict[str, Dict[int, float]]] = []
        items = list(self.encoding.indicator.items())
        for j in range(len(totals)):
            total = totals[j]
            if total == 0:
                raise ZeroDivisionError(
                    f"evidence {j} has probability zero")
            per_query: Dict[str, Dict[int, float]] = {}
            for (name, state), literal in items:
                per_query.setdefault(name, {})[state] = \
                    float(counts[literal][j]) / total
            results.append(per_query)
        return results

    def mpe(self, evidence: Mapping[str, int] | None = None
            ) -> Tuple[Dict[str, int], float]:
        """A most probable complete instantiation by max-product circuit
        evaluation (linear in the compiled size)."""
        evidence = dict(evidence or {})
        weights = self.encoding.evidence_weights(evidence)
        value, model = nnf_mpe(self.circuit, weights, self._all_vars)
        return self.encoding.state_of_model(model), value

    def map_query(self, map_vars: Sequence[str],
                  evidence: Mapping[str, int] | None = None
                  ) -> Tuple[Dict[str, int], float]:
        """MAP by *constrained* compilation (the NP^PP role):
        max over the MAP variables' indicators, sum over the rest.

        Returns (argmax instantiation of map_vars, Pr(y, e)).  Compiles
        a fresh constrained circuit per MAP variable set.
        """
        from ..solvers.weighted import weighted_emajsat
        evidence = dict(evidence or {})
        y_cnf_vars = sorted({abs(self.encoding.indicator[(name, state)])
                             for name in map_vars
                             for state in self._states_of(name)})
        weights = self.encoding.evidence_weights(evidence)
        value, witness = weighted_emajsat(self.encoding.cnf, weights,
                                          y_cnf_vars)
        result: Dict[str, int] = {}
        for name in map_vars:
            for state in self._states_of(name):
                literal = self.encoding.indicator[(name, state)]
                holds = witness.get(abs(literal), literal < 0)
                if (literal > 0) == holds:
                    result[name] = state
        return result, value

    def sdp(self, decision_var: str, decision_state: int,
            threshold: float, observables: Sequence[str],
            evidence: Mapping[str, int] | None = None) -> float:
        """Same-decision probability (the PP^PP query) by constrained
        compilation; see :mod:`repro.wmc.sdp`.  Compiles a fresh
        constrained circuit per observable set."""
        from .sdp import same_decision_probability
        return same_decision_probability(
            self.network, decision_var, decision_state, threshold,
            observables, evidence)

    def _states_of(self, name: str) -> List[int]:
        return sorted(state for (n, state) in self.encoding.indicator
                      if n == name)
