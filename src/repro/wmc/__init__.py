"""BN-to-CNF encodings, weighted model counting, arithmetic circuits."""

from .encoding import BnEncoding, encode_binary, encode_multistate
from .arithmetic_circuit import ArithmeticCircuit
from .pipeline import WmcPipeline
from .sdp import same_decision_probability

__all__ = ["BnEncoding", "encode_binary", "encode_multistate",
           "ArithmeticCircuit", "WmcPipeline", "same_decision_probability"]
