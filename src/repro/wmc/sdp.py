"""Same-decision probability by constrained circuit propagation.

D-SDP is the paper's PP^PP-complete query (Fig 2), and [61]'s
constrained compilation is how such queries become circuit
evaluations.  For every joint state y of the observables we need the
pair

    (a_y, b_y) = (Pr(x, y, e), Pr(y, e)),

because the decision under y is ``a_y / b_y ≥ T`` and the SDP weighs
agreement by ``b_y``.  On a circuit whose decisions on the observables'
indicator variables sit above all others, these pairs propagate exactly
like the MAJMAJSAT histograms: decisions on observable indicators merge
pair-multisets, everything below them sums two weighted model counts at
once.  Sharing in the circuit is what can beat brute-force enumeration
of the y space.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Sequence, Tuple

from ..bayesnet.network import BayesianNetwork
from ..compile.dnnf_compiler import DnnfCompiler
from ..nnf.node import NnfNode
from ..solvers.prototypical import _decision_variable
from .encoding import BnEncoding, encode_binary, encode_multistate

__all__ = ["same_decision_probability"]

Pair = Tuple[float, float]


def same_decision_probability(network: BayesianNetwork,
                              decision_var: str, decision_state: int,
                              threshold: float,
                              observables: Sequence[str],
                              evidence: Mapping[str, int] | None = None,
                              encoding: str = "multistate",
                              exploit_determinism: bool = False) -> float:
    """SDP via the compile-once circuit route; exact.

    Matches :func:`repro.bayesnet.queries.sdp` (which enumerates the
    observables with variable elimination).
    """
    evidence = dict(evidence or {})
    if decision_var in observables:
        raise ValueError("the decision variable cannot be observable")
    overlap = set(evidence) & set(observables)
    if overlap:
        raise ValueError(f"evidence already fixes observables {overlap}")
    if encoding == "binary":
        enc: BnEncoding = encode_binary(
            network, exploit_determinism=exploit_determinism)
    elif encoding == "multistate":
        enc = encode_multistate(
            network, exploit_determinism=exploit_determinism)
    else:
        raise ValueError(f"unknown encoding {encoding!r}")
    y_vars = sorted({abs(enc.indicator[(name, state)])
                     for name in observables
                     for state in range(network.cardinality(name))})
    compiler = DnnfCompiler(priority=y_vars)
    root = compiler.compile(enc.cnf)

    weights_b = enc.evidence_weights(evidence)
    weights_a = enc.evidence_weights(
        {**evidence, decision_var: decision_state})
    num_vars = enc.cnf.num_vars
    y_set = frozenset(y_vars)

    pairs = _propagate_pairs(root, weights_a, weights_b, y_set, num_vars)
    total_b = sum(m * b for (a, b), m in pairs.items())
    if total_b == 0.0:
        raise ZeroDivisionError("evidence has probability zero")
    total_a = sum(m * a for (a, b), m in pairs.items())
    current = (total_a / total_b) >= threshold
    agreeing = 0.0
    for (a, b), multiplicity in pairs.items():
        if b == 0.0:
            continue
        if ((a / b) >= threshold) == current:
            agreeing += multiplicity * b
    return agreeing / total_b


def _propagate_pairs(root: NnfNode, weights_a: Mapping[int, float],
                     weights_b: Mapping[int, float],
                     y_set: FrozenSet[int], num_vars: int
                     ) -> Dict[Pair, float]:
    """{(a, b): multiplicity} over observable-indicator assignments."""

    def gap_pair(var: int) -> Pair:
        return (weights_a[var] + weights_a[-var],
                weights_b[var] + weights_b[-var])

    tables: Dict[int, Dict[Pair, float]] = {}
    if root.is_false:
        return {}
    for node in root.topological():
        if node.is_true:
            tables[node.id] = {(1.0, 1.0): 1.0}
        elif node.is_false:
            tables[node.id] = {}
        elif node.is_literal:
            tables[node.id] = {(weights_a[node.literal],
                                weights_b[node.literal]): 1.0}
        elif node.is_and:
            table: Dict[Pair, float] = {(1.0, 1.0): 1.0}
            for child in node.children:
                table = _pair_product(table, tables[child.id])
            tables[node.id] = table
        else:
            node_vars = node.variables()
            decision = _decision_variable(node)
            lifted = []
            for child in node.children:
                lifted.append(_lift(tables[child.id],
                                    node_vars - child.variables(),
                                    y_set, gap_pair))
            if decision in y_set:
                merged: Dict[Pair, float] = {}
                for table in lifted:
                    for pair, m in table.items():
                        merged[pair] = merged.get(pair, 0.0) + m
                tables[node.id] = merged
            else:
                if node_vars & y_set:
                    raise ValueError("z-decision above undecided "
                                     "observable indicators")
                a = sum(p[0] * m for t in lifted for p, m in t.items())
                b = sum(p[1] * m for t in lifted for p, m in t.items())
                tables[node.id] = {(a, b): 1.0}
    # lift over variables absent from the whole circuit
    mentioned = root.variables()
    gap = frozenset(range(1, num_vars + 1)) - mentioned
    return _lift(tables[root.id], gap, y_set, gap_pair)


def _lift(table: Dict[Pair, float], gap_vars, y_set,
          gap_pair) -> Dict[Pair, float]:
    if not gap_vars:
        return table
    a_scale, b_scale, multiplicity_scale = 1.0, 1.0, 1.0
    for var in gap_vars:
        if var in y_set:
            multiplicity_scale *= 2.0
        else:
            ga, gb = gap_pair(var)
            a_scale *= ga
            b_scale *= gb
    return {(a * a_scale, b * b_scale): m * multiplicity_scale
            for (a, b), m in table.items()}


def _pair_product(left: Dict[Pair, float],
                  right: Dict[Pair, float]) -> Dict[Pair, float]:
    result: Dict[Pair, float] = {}
    for (a1, b1), m1 in left.items():
        for (a2, b2), m2 in right.items():
            key = (a1 * a2, b1 * b2)
            result[key] = result.get(key, 0.0) + m1 * m2
    return result
