"""Reading and writing circuits in the c2d ``.nnf`` file format.

The format used by C2D / DSHARP / D4 (the compilers of footnote 3)::

    nnf <nodes> <edges> <variables>
    L <literal>
    A <count> <child-ids...>
    O <conflict-var-or-0> <count> <child-ids...>

Node ids are implicit line numbers (0-based, after the header); children
must precede parents.  Constants are encoded as ``A 0`` (true) and
``O 0 0`` (false).

Both directions round-trip through the flattened IR
(:mod:`repro.ir.serialize`), which owns the canonical text format;
this module keeps the node-object entry points.
"""

from __future__ import annotations

from .node import NnfManager, NnfNode

__all__ = ["to_nnf_format", "from_nnf_format"]


def to_nnf_format(root: NnfNode) -> str:
    """Serialise a circuit in c2d .nnf format."""
    from ..ir.lower import nnf_to_ir
    from ..ir.serialize import ir_to_nnf_text
    return ir_to_nnf_text(nnf_to_ir(root))


def from_nnf_format(text: str, manager: NnfManager | None = None
                    ) -> NnfNode:
    """Parse a c2d .nnf file into a circuit (returns the root — the
    node on the last line, per the format's convention).

    Gate simplification happens at lift time (the manager's
    ``conjoin``/``disjoin`` rules), so constants introduced by the text
    fold away exactly as the seed reader did.
    """
    from ..ir.serialize import ir_from_nnf_text
    if manager is None:
        manager = NnfManager()
    ir = ir_from_nnf_text(text)
    return _lift_simplifying(ir, manager)


def _lift_simplifying(ir, manager: NnfManager) -> NnfNode:
    """Lift an IR into ``manager`` using the simplifying constructors
    (the seed reader's behavior), unlike the structure-preserving
    :func:`repro.ir.lower.ir_to_nnf`."""
    from ..ir.core import KIND_AND, KIND_LIT, KIND_OR, KIND_TRUE
    nodes = []
    for i in range(ir.n):
        kind = ir.kinds[i]
        if kind == KIND_LIT:
            nodes.append(manager.literal(ir.lits[i]))
        elif kind == KIND_AND:
            nodes.append(manager.conjoin(
                *(nodes[c] for c in ir.children(i))))
        elif kind == KIND_OR:
            nodes.append(manager.disjoin(
                *(nodes[c] for c in ir.children(i))))
        else:
            nodes.append(manager.true() if kind == KIND_TRUE
                         else manager.false())
    return nodes[-1]
