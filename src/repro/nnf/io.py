"""Reading and writing circuits in the c2d ``.nnf`` file format.

The format used by C2D / DSHARP / D4 (the compilers of footnote 3)::

    nnf <nodes> <edges> <variables>
    L <literal>
    A <count> <child-ids...>
    O <conflict-var-or-0> <count> <child-ids...>

Node ids are implicit line numbers (0-based, after the header); children
must precede parents.  Constants are encoded as ``A 0`` (true) and
``O 0 0`` (false).
"""

from __future__ import annotations

from typing import Dict, List

from .node import NnfManager, NnfNode

__all__ = ["to_nnf_format", "from_nnf_format"]


def to_nnf_format(root: NnfNode) -> str:
    """Serialise a circuit in c2d .nnf format."""
    order = root.topological()
    index: Dict[int, int] = {node.id: i for i, node in enumerate(order)}
    lines: List[str] = []
    edges = 0
    for node in order:
        if node.is_literal:
            lines.append(f"L {node.literal}")
        elif node.is_true:
            lines.append("A 0")
        elif node.is_false:
            lines.append("O 0 0")
        elif node.is_and:
            children = " ".join(str(index[c.id]) for c in node.children)
            lines.append(f"A {len(node.children)} {children}".rstrip())
            edges += len(node.children)
        else:
            children = " ".join(str(index[c.id]) for c in node.children)
            lines.append(f"O 0 {len(node.children)} {children}".rstrip())
            edges += len(node.children)
    variables = max((v for v in root.variables()), default=0)
    header = f"nnf {len(order)} {edges} {variables}"
    return "\n".join([header] + lines) + "\n"


def from_nnf_format(text: str, manager: NnfManager | None = None
                    ) -> NnfNode:
    """Parse a c2d .nnf file into a circuit (returns the root — the
    node on the last line, per the format's convention)."""
    if manager is None:
        manager = NnfManager()
    lines = [line.strip() for line in text.splitlines()
             if line.strip() and not line.startswith("c")]
    if not lines or not lines[0].startswith("nnf"):
        raise ValueError("missing nnf header")
    header = lines[0].split()
    if len(header) != 4:
        raise ValueError(f"bad header: {lines[0]!r}")
    declared_nodes = int(header[1])
    nodes: List[NnfNode] = []
    for line in lines[1:]:
        parts = line.split()
        kind = parts[0]
        if kind == "L":
            nodes.append(manager.literal(int(parts[1])))
        elif kind == "A":
            count = int(parts[1])
            if count == 0:
                nodes.append(manager.true())
            else:
                children = [nodes[int(token)] for token in parts[2:]]
                if len(children) != count:
                    raise ValueError(f"bad A line: {line!r}")
                nodes.append(manager.conjoin(*children))
        elif kind == "O":
            count = int(parts[2])
            if count == 0:
                nodes.append(manager.false())
            else:
                children = [nodes[int(token)] for token in parts[3:]]
                if len(children) != count:
                    raise ValueError(f"bad O line: {line!r}")
                nodes.append(manager.disjoin(*children))
        else:
            raise ValueError(f"unknown node kind {kind!r}")
    if len(nodes) != declared_nodes:
        raise ValueError(
            f"header declares {declared_nodes} nodes, found {len(nodes)}")
    return nodes[-1]
