"""Property checks for NNF circuits.

The paper's Section 3 tractability story: each syntactic property
unlocks a class of polytime queries —

* decomposability (DNNF) → satisfiability, hence NP;
* + determinism (d-DNNF) → (weighted) model counting, hence PP;
* + smoothness → counting by a single bottom-up pass (Fig 8);
* structured decomposability (w.r.t. a vtree) → polytime conjoin;
* the sentential decision property (SDD) → polytime apply + canonicity.

``is_deterministic`` is a *semantic* property, so the exact check here
enumerates assignments — exponential, meant for tests and figure-sized
circuits.  Circuits produced by our compilers are deterministic by
construction.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Optional

from .node import NnfNode
from ..vtree.vtree import Vtree

__all__ = ["is_decomposable", "is_deterministic", "is_smooth",
           "is_structured", "is_decision_node", "is_decision_dnnf",
           "is_flat", "check_properties"]


def is_decomposable(root: NnfNode) -> bool:
    """Children of every and-gate mention disjoint variables (Fig 6)."""
    for node in root.topological():
        if node.is_and:
            seen: set[int] = set()
            for child in node.children:
                child_vars = child.variables()
                if seen & child_vars:
                    return False
                seen |= child_vars
    return True


def is_deterministic(root: NnfNode, max_vars: int = 22) -> bool:
    """At most one input of every or-gate is high under any circuit input
    (Fig 7).  Exact check by enumeration; refuses huge circuits."""
    variables = sorted(root.variables())
    if len(variables) > max_vars:
        raise ValueError(
            f"exact determinism check over {len(variables)} variables "
            "would enumerate too many assignments")
    order = root.topological()
    or_nodes = [n for n in order if n.is_or]
    if not or_nodes:
        return True
    for bits in product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        values: Dict[int, bool] = {}
        for node in order:
            if node.is_literal:
                value = assignment[abs(node.literal)]
                values[node.id] = value if node.literal > 0 else not value
            elif node.is_true:
                values[node.id] = True
            elif node.is_false:
                values[node.id] = False
            elif node.is_and:
                values[node.id] = all(values[c.id] for c in node.children)
            else:
                high = sum(values[c.id] for c in node.children)
                if high > 1:
                    return False
                values[node.id] = high == 1
    return True


def is_smooth(root: NnfNode) -> bool:
    """Children of every or-gate mention the same variables."""
    for node in root.topological():
        if node.is_or and node.children:
            first = node.children[0].variables()
            for child in node.children[1:]:
                if child.variables() != first:
                    return False
    return True


def is_structured(root: NnfNode, vtree: Vtree) -> bool:
    """Structured decomposability w.r.t. ``vtree``.

    Every and-gate must be binary, with a vtree node ``v`` such that the
    first child's variables fall under ``v.left`` and the second child's
    under ``v.right`` (order-insensitive: the swapped matching also
    counts, since the figure circuits draw primes/subs in either order).
    """
    for node in root.topological():
        if not node.is_and:
            continue
        if len(node.children) != 2:
            return False
        left_vars = node.children[0].variables()
        right_vars = node.children[1].variables()
        if not _respects_some_vtree_node(vtree, left_vars, right_vars):
            return False
    return True


def _respects_some_vtree_node(vtree: Vtree, left_vars, right_vars) -> bool:
    for v in vtree.nodes():
        if v.is_leaf():
            continue
        lv, rv = v.left.variables, v.right.variables
        if left_vars <= lv and right_vars <= rv:
            return True
        if left_vars <= rv and right_vars <= lv:
            return True
    return False


def is_decision_node(node: NnfNode) -> Optional[int]:
    """If ``node`` is a decision gate ``(X ∧ α) ∨ (¬X ∧ β)``, return X.

    Terminal constants and literals count as decision-like leaves and
    return None (they are allowed in Decision-DNNF).
    """
    if not node.is_or or len(node.children) != 2:
        return None
    first, second = node.children
    candidates = _guard_literals(first)
    opposing = _guard_literals(second)
    matches = sorted(abs(lit) for lit in candidates if -lit in opposing)
    return matches[0] if matches else None


def _guard_literals(branch: NnfNode) -> set[int]:
    """Literals that could serve as the branch's decision guard.

    A branch of a decision gate is either the guard literal itself or
    an and-gate containing it — in *any* child position, not just the
    first (compilers and hand-built figures order conjuncts freely).
    """
    if branch.is_literal:
        return {branch.literal}
    if branch.is_and:
        return {child.literal for child in branch.children
                if child.is_literal}
    return set()


def is_decision_dnnf(root: NnfNode) -> bool:
    """Every or-gate is a decision gate (the d-DNNF subset produced by
    exhaustive-DPLL compilers [38])."""
    if not is_decomposable(root):
        return False
    for node in root.topological():
        if node.is_or and is_decision_node(node) is None:
            return False
    return True


def is_flat(root: NnfNode) -> bool:
    """Height at most two (CNF/DNF shape) — the pre-[34] compilation
    targets mentioned in Section 3."""
    if root.is_literal or root.is_true or root.is_false:
        return True
    for child in root.children:
        for grandchild in child.children:
            if grandchild.children:
                return False
    return True


def check_properties(root: NnfNode,
                     vtree: Vtree | None = None,
                     determinism_max_vars: int = 22) -> Dict[str, bool]:
    """All property flags at once (used by the Fig 12 taxonomy).

    Routed through the certified IR verifiers
    (:mod:`repro.analyze`); the ``is_*`` checkers above are kept as
    the seed reference implementations, cross-checked against the
    verifiers in ``tests/test_analyze.py``.  The verifier-based
    determinism check is strictly more complete than the seed's: the
    seed enumerated all assignments globally and *refused* circuits
    over ``determinism_max_vars`` variables (classifying them
    non-deterministic), while the mutual-exclusivity certificate pass
    settles most large gates in linear time and only brute-forces
    per-gate variable gaps — so e.g. wide OBDD-derived circuits are
    now classified correctly.
    """
    from ..analyze import VERIFIED, certify_nnf
    cert = certify_nnf(root, vtree=vtree,
                       max_vars=determinism_max_vars)
    result = {
        "decomposable": cert.status("decomposable") == VERIFIED,
        "smooth": cert.status("smooth") == VERIFIED,
        "flat": is_flat(root),
        "deterministic": cert.status("deterministic") == VERIFIED,
        "decision": is_decision_dnnf(root),
    }
    if vtree is not None:
        result["structured"] = cert.status("structured") == VERIFIED
    return result
