"""Transformations of NNF circuits: smoothing, conditioning, conversion."""

from __future__ import annotations

from typing import Dict, Mapping

from ..logic.formula import (And as FAnd, Constant, FALSE, Formula, Lit,
                             Or as FOr, TRUE)
from .node import NnfManager, NnfNode

__all__ = ["smooth", "condition", "from_formula", "to_formula",
           "negate_decision"]


def smooth(root: NnfNode) -> NnfNode:
    """Smooth a circuit: make all or-children mention the same variables.

    For each or-gate child missing variable ``v``, conjoin the tautology
    gate ``(v ∨ ¬v)`` (the paper's Fig 7 shows the introduced trivial
    gates).  Preserves decomposability and determinism; at most a
    quadratic size increase [25].
    """
    manager = root.manager
    smoothing_gates: Dict[int, NnfNode] = {}

    def gate(var: int) -> NnfNode:
        if var not in smoothing_gates:
            smoothing_gates[var] = manager.disjoin(
                manager.literal(var), manager.literal(-var))
        return smoothing_gates[var]

    rebuilt: Dict[int, NnfNode] = {}
    for node in root.topological():
        if node.is_literal or node.is_true or node.is_false:
            rebuilt[node.id] = node
        elif node.is_and:
            rebuilt[node.id] = manager.conjoin(
                *(rebuilt[c.id] for c in node.children))
        else:
            node_vars = node.variables()
            children = []
            for child in node.children:
                new_child = rebuilt[child.id]
                missing = node_vars - child.variables()
                if missing:
                    new_child = manager.conjoin(
                        new_child, *(gate(v) for v in sorted(missing)))
                children.append(new_child)
            rebuilt[node.id] = manager.disjoin(*children)
    return rebuilt[root.id]


def condition(root: NnfNode, evidence: Mapping[int, bool]) -> NnfNode:
    """Replace literals of evidence variables by constants and simplify.

    Conditioning preserves decomposability, determinism and smoothness-
    modulo-simplification; it is the basic operation behind Pr(e) style
    queries on compiled circuits.
    """
    manager = root.manager
    rebuilt: Dict[int, NnfNode] = {}
    for node in root.topological():
        if node.is_literal:
            var = abs(node.literal)
            if var in evidence:
                consistent = evidence[var] == (node.literal > 0)
                rebuilt[node.id] = manager.true() if consistent \
                    else manager.false()
            else:
                rebuilt[node.id] = node
        elif node.is_true or node.is_false:
            rebuilt[node.id] = node
        elif node.is_and:
            rebuilt[node.id] = manager.conjoin(
                *(rebuilt[c.id] for c in node.children))
        else:
            rebuilt[node.id] = manager.disjoin(
                *(rebuilt[c.id] for c in node.children))
    return rebuilt[root.id]


def from_formula(formula: Formula, manager: NnfManager) -> NnfNode:
    """Structural conversion of a formula into an NNF circuit.

    Negations are pushed to the literals first; the circuit mirrors the
    formula tree (no decomposability/determinism is established — use a
    compiler from :mod:`repro.compile` or :mod:`repro.sdd` for that).
    """
    nnf = formula.to_nnf()

    def build(f: Formula) -> NnfNode:
        if isinstance(f, Constant):
            return manager.true() if f.value else manager.false()
        if isinstance(f, Lit):
            return manager.literal(f.literal)
        if isinstance(f, FAnd):
            return manager.conjoin(*(build(c) for c in f.children))
        if isinstance(f, FOr):
            return manager.disjoin(*(build(c) for c in f.children))
        raise TypeError(f"unexpected formula node {f!r}")

    return build(nnf)


def to_formula(root: NnfNode) -> Formula:
    """Convert a circuit back into a formula AST (shared nodes expand)."""
    memo: Dict[int, Formula] = {}
    for node in root.topological():
        if node.is_literal:
            memo[node.id] = Lit(node.literal)
        elif node.is_true:
            memo[node.id] = TRUE
        elif node.is_false:
            memo[node.id] = FALSE
        elif node.is_and:
            memo[node.id] = FAnd(*(memo[c.id] for c in node.children))
        else:
            memo[node.id] = FOr(*(memo[c.id] for c in node.children))
    return memo[root.id]


def negate_decision(root: NnfNode) -> NnfNode:
    """Negate a Decision-DNNF circuit.

    Decision nodes ``(x ∧ α) ∨ (¬x ∧ β)`` negate to
    ``(x ∧ ¬α) ∨ (¬x ∧ ¬β)``; and-gates of decision circuits decompose
    over disjoint variables but negation distributes only over or-gates,
    so conjunctions are negated by De Morgan into *disjunctions over
    disjoint variables* which stay deterministic after smoothing-style
    complements.  Here we implement the simple sound route: negation of
    decision nodes recursively, with ``¬(α ∧ β) = (¬α) ∨ (α ∧ ¬β)``,
    which preserves determinism and decomposability.
    """
    manager = root.manager
    memo: Dict[int, NnfNode] = {}

    def _neg_or(node: NnfNode) -> NnfNode:
        # decision or-gate: (x ∧ α) ∨ (¬x ∧ β); bare literal child x
        # stands for (x ∧ ⊤) and its negated branch (x ∧ ⊥) vanishes
        negated = []
        for child in node.children:
            if child.is_and and child.children and \
                    child.children[0].is_literal:
                lit = child.children[0]
                rest = manager.conjoin(*child.children[1:])
                negated.append(manager.conjoin(lit, neg(rest)))
            elif child.is_literal:
                pass  # (x ∧ ⊥) contributes nothing
            else:
                raise ValueError("negate_decision needs a Decision-DNNF")
        return manager.disjoin(*negated)

    def _neg_and(node: NnfNode) -> NnfNode:
        # ¬(α1 ∧ ... ∧ αk) = ¬α1 ∨ (α1 ∧ ¬α2) ∨ (α1∧α2∧¬α3) ∨ ...
        # terms are mutually exclusive (determinism) and each term's
        # factors are over disjoint variables (decomposability)
        terms = []
        for i, child in enumerate(node.children):
            parts = list(node.children[:i]) + [neg(child)]
            terms.append(manager.conjoin(*parts))
        return manager.disjoin(*terms)

    def neg(node: NnfNode) -> NnfNode:
        if node.id in memo:
            return memo[node.id]
        if node.is_true:
            result = manager.false()
        elif node.is_false:
            result = manager.true()
        elif node.is_literal:
            result = manager.literal(-node.literal)
        elif node.is_or:
            result = _neg_or(node)
        else:
            result = _neg_and(node)
        memo[node.id] = result
        return result

    return neg(root)
