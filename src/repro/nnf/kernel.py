"""NNF-facing adapter over the unified IR execution engine.

The dense-array evaluation engine that used to live here moved to
:mod:`repro.ir.kernel`, where every circuit family (NNF, OBDD, SDD,
PSDD, arithmetic circuits) dispatches through the same passes.  This
module keeps the NNF-specific surface:

* :class:`CircuitKernel` — an :class:`~repro.ir.kernel.IrKernel` built
  by lowering an :class:`~repro.nnf.node.NnfNode` root 1:1 onto the
  IR (``self.nodes[i]`` is the NNF node behind dense index ``i``);
* :func:`get_kernel` — the per-manager kernel cache the query layer
  uses;
* re-exports of the kind codes and batch packers, so existing
  importers (``repro.wmc.arithmetic_circuit``, tests) keep working.
"""

from __future__ import annotations

from typing import List

from ..ir.core import (KIND_AND, KIND_FALSE, KIND_LIT, KIND_OR,
                       KIND_TRUE)
from ..ir.kernel import (IrKernel, pack_assignment_batch,
                         pack_weight_batch)
from ..ir.lower import nnf_to_ir
from .node import NnfNode

__all__ = ["CircuitKernel", "get_kernel", "pack_weight_batch",
           "pack_assignment_batch", "KIND_LIT", "KIND_TRUE",
           "KIND_FALSE", "KIND_AND", "KIND_OR"]


class CircuitKernel(IrKernel):
    """The IR kernel of one NNF circuit, with the node-object view.

    Lowering is structurally 1:1 (raw gates, topological order, root
    last), so ``self.nodes``, ``self.kinds`` and ``self.children`` are
    index-aligned exactly as the seed's per-family kernel built them.
    Structurally identical circuits intern to one IR, and the first
    kernel built for an IR is cached on it — so kernels (and their
    memoised pure results) are shared across managers.
    """

    __slots__ = ("root", "nodes")

    def __init__(self, root: NnfNode):
        ir = nnf_to_ir(root)
        super().__init__(ir)
        if ir._kernel is None:
            ir._kernel = self
        self.root = root
        order = root.topological()
        if len(order) != self.n:
            raise AssertionError("NNF lowering must be 1:1")
        self.nodes: List[NnfNode] = order
        # cache variable sets into the nodes so legacy code benefits
        for i, node in enumerate(order):
            if node._vars is None:
                node._vars = self.varsets[i]


def get_kernel(root: NnfNode) -> CircuitKernel:
    """The (cached) kernel for ``root``.

    Kernels are memoised on the root's manager keyed by node id; nodes
    are immutable and hash-consed, so a cached kernel never goes stale
    even as the manager keeps growing.
    """
    manager = root.manager
    cache = getattr(manager, "_kernel_cache", None)
    if cache is None:
        cache = manager._kernel_cache = {}
    kernel = cache.get(root.id)
    if kernel is None:
        kernel = cache[root.id] = CircuitKernel(root)
    return kernel
