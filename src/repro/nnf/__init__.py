"""NNF circuits: representation, properties, queries, transformations."""

from .node import NnfManager, NnfNode
from .properties import (check_properties, is_decision_dnnf,
                         is_decision_node, is_decomposable,
                         is_deterministic, is_flat, is_smooth,
                         is_structured)
from .queries import (condition_evaluate, enumerate_models,
                      is_satisfiable_dnnf, marginal_counts, model_count,
                      mpe, sat_model_dnnf, weighted_model_count)
from .transform import (condition, from_formula, negate_decision, smooth,
                        to_formula)
from .sample import sample_model, sample_models
from .io import from_nnf_format, to_nnf_format
from .taxonomy import LANGUAGE_QUERIES, classify, supported_queries

__all__ = ["sample_model", "sample_models", "from_nnf_format",
           "to_nnf_format",
    
    "NnfManager", "NnfNode",
    "check_properties", "is_decision_dnnf", "is_decision_node",
    "is_decomposable", "is_deterministic", "is_flat", "is_smooth",
    "is_structured",
    "condition_evaluate", "enumerate_models", "is_satisfiable_dnnf",
    "marginal_counts", "model_count", "mpe", "sat_model_dnnf",
    "weighted_model_count",
    "condition", "from_formula", "negate_decision", "smooth", "to_formula",
    "LANGUAGE_QUERIES", "classify", "supported_queries",
]
