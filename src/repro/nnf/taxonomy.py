"""The knowledge compilation map, in miniature (Fig 12, [34]).

:func:`classify` places a circuit inside the paper's partial taxonomy of
NNF languages, and :func:`supported_queries` reports which polytime
queries the detected language unlocks, together with the complexity
class that compilation into it "unlocks" (Section 3).
"""

from __future__ import annotations

from typing import Dict, List, Set

from .node import NnfNode
from .properties import (check_properties, is_decision_dnnf,
                         is_decision_node)
from ..vtree.vtree import Vtree

__all__ = ["classify", "supported_queries", "LANGUAGE_QUERIES"]

#: queries unlocked by each language, with the unlocked complexity class
LANGUAGE_QUERIES: Dict[str, Dict[str, object]] = {
    "NNF": {"queries": [], "unlocks": None},
    "DNNF": {"queries": ["SAT", "model enumeration", "conditioning"],
             "unlocks": "NP"},
    "d-DNNF": {"queries": ["SAT", "#SAT", "WMC", "MPE"], "unlocks": "PP"},
    "sd-DNNF": {"queries": ["SAT", "#SAT", "WMC", "MPE",
                            "all marginals (one pass)"], "unlocks": "PP"},
    "Decision-DNNF": {"queries": ["SAT", "#SAT", "WMC", "negation",
                                  "E-MAJSAT (constrained order)"],
                      "unlocks": "NP^PP"},
    "SDD": {"queries": ["SAT", "#SAT", "WMC", "apply (∧, ∨, ¬)",
                        "E-MAJSAT/MAJMAJSAT (constrained vtree)"],
            "unlocks": "PP^PP"},
    "OBDD": {"queries": ["SAT", "#SAT", "WMC", "apply", "compose",
                         "quantification"], "unlocks": "PP^PP"},
}


def classify(root: NnfNode, vtree: Vtree | None = None,
             determinism_max_vars: int = 22) -> List[str]:
    """Languages (from most general to most specific) the circuit is in.

    OBDD/SDD membership is only asserted when a vtree is supplied
    (structuredness is relative to a vtree).
    """
    props = check_properties(root, vtree=vtree,
                             determinism_max_vars=determinism_max_vars)
    languages = ["NNF"]
    if props["decomposable"]:
        languages.append("DNNF")
        if props["deterministic"]:
            languages.append("d-DNNF")
            if props["smooth"]:
                languages.append("sd-DNNF")
        if is_decision_dnnf(root):
            languages.append("Decision-DNNF")
            if _is_obdd_shaped(root):
                languages.append("OBDD")
    if vtree is not None and props.get("structured") and \
            "d-DNNF" in languages:
        languages.append("SDD")
    return languages


def _is_obdd_shaped(root: NnfNode) -> bool:
    """Decision-DNNF whose decisions are nested along a single variable
    order with no and-decomposition besides the guard conjunctions."""
    order: List[int] = []

    def visit(node: NnfNode, depth_vars: Set[int]) -> bool:
        if node.is_literal or node.is_true or node.is_false:
            return True
        if node.is_or:
            var = is_decision_node(node)
            if var is None or var in depth_vars:
                return False
            return all(visit(child, depth_vars | {var})
                       for child in node.children)
        # and-gates allowed only as guard ∧ rest (binary, literal first)
        if len(node.children) != 2 or not node.children[0].is_literal:
            return False
        return visit(node.children[1], depth_vars)

    return visit(root, set())


def supported_queries(root: NnfNode,
                      vtree: Vtree | None = None) -> Dict[str, object]:
    """The most specific language of the circuit and what it supports."""
    languages = classify(root, vtree=vtree)
    most_specific = languages[-1]
    info = dict(LANGUAGE_QUERIES[most_specific])
    info["language"] = most_specific
    info["all_languages"] = languages
    return info
