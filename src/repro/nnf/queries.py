"""Linear-time queries on tractable NNF circuits.

Each query documents the property it requires.  Counting-style queries
handle non-smooth circuits by tracking variable sets and scaling by
2^gap (equivalently: the weight of a missing variable is the sum of its
literal weights), so explicit smoothing is not required — but see
:func:`repro.nnf.transform.smooth` for the explicit transformation.

The caller is responsible for the circuit actually having the stated
property; :mod:`repro.nnf.properties` provides checkers.

All single-pass queries run on the dense-array engine of
:mod:`repro.nnf.kernel`: the kernel is built once per circuit (cached
on its manager) and repeated queries reuse its precomputed topological
order and or-gate gap data.  The seed's dict-per-call implementations
survive in :mod:`repro.nnf.queries_legacy` as the benchmark baseline
and cross-check reference; set ``REPRO_LEGACY=1`` (see
:mod:`repro.compat`) to route the scalar queries back through them.
Each query takes an optional ``stats``
:class:`~repro.perf.instrument.Counter` that accumulates a
``nodes_visited`` count.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..perf.instrument import Counter
from .kernel import get_kernel, pack_assignment_batch, pack_weight_batch
from .node import NnfNode


def _legacy():
    """The seed implementations, when ``REPRO_LEGACY`` routes to them
    (see :mod:`repro.compat`)."""
    from ..compat import legacy_enabled
    if legacy_enabled():
        from . import queries_legacy
        return queries_legacy
    return None

__all__ = ["is_satisfiable_dnnf", "sat_model_dnnf", "model_count",
           "weighted_model_count", "weighted_model_count_batch",
           "weighted_model_count_log_batch", "evaluate_batch",
           "enumerate_models", "mpe", "marginal_counts",
           "condition_evaluate"]

Weights = Mapping[int, float]


def is_satisfiable_dnnf(root: NnfNode,
                        stats: Counter | None = None) -> bool:
    """SAT on a DNNF circuit — linear time [22]; unlocks NP."""
    legacy = _legacy()
    if legacy is not None:
        return legacy.is_satisfiable_dnnf(root)
    return get_kernel(root).sat(stats)


def sat_model_dnnf(root: NnfNode, stats: Counter | None = None
                   ) -> Optional[Dict[int, bool]]:
    """A satisfying assignment of a DNNF circuit (partial: only the
    variables that matter are set), or None if unsatisfiable."""
    legacy = _legacy()
    if legacy is not None:
        return legacy.sat_model_dnnf(root)
    return get_kernel(root).sat_model(stats)


def model_count(root: NnfNode,
                variables: Sequence[int] | None = None,
                stats: Counter | None = None) -> int:
    """#SAT on a d-DNNF circuit (Fig 8) — requires decomposability and
    determinism.  ``variables`` widens the count to a superset of the
    circuit variables (each absent variable doubles the count)."""
    legacy = _legacy()
    if legacy is not None:
        return legacy.model_count(root, variables)
    kernel = get_kernel(root)
    result = kernel.model_count(stats)
    if variables is not None:
        mentioned = root.variables()
        extra = set(variables) - mentioned
        if mentioned - set(variables):
            raise ValueError("variables must cover the circuit variables")
        result <<= len(extra)
    return result


def weighted_model_count(root: NnfNode, weights: Weights,
                         variables: Sequence[int] | None = None,
                         stats: Counter | None = None) -> float:
    """WMC on a d-DNNF circuit — the workhorse reduction target (§2.1).

    ``weights`` maps literals (±v) to weights.  Missing variables of an
    or-gate's child contribute a factor W(v) + W(-v); likewise variables
    in ``variables`` that are absent from the whole circuit.
    """
    legacy = _legacy()
    if legacy is not None:
        return legacy.weighted_model_count(root, weights, variables)
    kernel = get_kernel(root)
    result = kernel.wmc(weights, stats)
    if variables is not None:
        for var in set(variables) - root.variables():
            result *= weights[var] + weights[-var]
    return result


def _as_weight_batch(root: NnfNode, weights, variables):
    """Accept either literal→array batches or sequences of weight maps."""
    if isinstance(weights, Mapping):
        return weights
    pack_vars = set(root.variables())
    if variables is not None:
        pack_vars |= set(variables)
    return pack_weight_batch(list(weights), sorted(pack_vars))


def weighted_model_count_batch(root: NnfNode, weights,
                               variables: Sequence[int] | None = None,
                               stats: Counter | None = None):
    """N weighted model counts in one numpy pass (§2.1, many queries).

    ``weights`` is either a sequence of N literal→weight maps or an
    already-packed literal → length-N array mapping
    (:func:`repro.nnf.kernel.pack_weight_batch`).  Column ``j`` of the
    returned array equals ``weighted_model_count`` of weight vector
    ``j``; ``variables`` widens over absent variables exactly like the
    scalar query.
    """
    batch = _as_weight_batch(root, weights, variables)
    kernel = get_kernel(root)
    result = kernel.wmc_batch(batch, stats)
    if variables is not None:
        for var in set(variables) - root.variables():
            result = result * (batch[var] + batch[-var])
    return result


def weighted_model_count_log_batch(root: NnfNode, weights,
                                   variables: Sequence[int] | None = None,
                                   stats: Counter | None = None):
    """Log-space :func:`weighted_model_count_batch`: takes the same
    *linear* weights, accumulates in log space (zero weights become
    ``-inf``) and returns the length-N array of **log** WMCs — robust
    on large circuits whose per-model weights underflow a float.
    """
    import numpy as np
    batch = _as_weight_batch(root, weights, variables)
    with np.errstate(divide="ignore"):
        log_batch = {lit: np.log(np.asarray(column, dtype=float))
                     for lit, column in batch.items()}
    kernel = get_kernel(root)
    result = kernel.wmc_log_batch(log_batch, stats)
    if variables is not None:
        for var in set(variables) - root.variables():
            result = result + np.logaddexp(log_batch[var],
                                           log_batch[-var])
    return result


def evaluate_batch(root: NnfNode, assignments,
                   stats: Counter | None = None):
    """Evaluate the circuit under N complete assignments at once.

    ``assignments`` is either a sequence of N variable→bool maps or a
    packed variable → length-N bool array mapping; returns a length-N
    bool array.
    """
    if not isinstance(assignments, Mapping):
        assignments = pack_assignment_batch(
            list(assignments), sorted(root.variables()))
    return get_kernel(root).evaluate_batch(assignments, stats)


def enumerate_models(root: NnfNode,
                     variables: Sequence[int] | None = None
                     ) -> Iterator[Dict[int, bool]]:
    """Enumerate the models of a *decomposable* circuit.

    Works on any DNNF (determinism not required: duplicates are removed
    per node), yielding complete assignments over ``variables``.
    Output-exponential by nature, so it stays on the node-object
    traversal rather than the kernel.
    """
    if variables is None:
        variables = sorted(root.variables())
    variables = list(variables)
    partials: Dict[int, List[Tuple[Tuple[int, ...], frozenset]]] = {}
    # each node gets a list of (sorted literal tuple, varset) partial models
    for node in root.topological():
        if node.is_literal:
            partials[node.id] = [((node.literal,),
                                  frozenset((abs(node.literal),)))]
        elif node.is_true:
            partials[node.id] = [((), frozenset())]
        elif node.is_false:
            partials[node.id] = []
        elif node.is_and:
            acc = [((), frozenset())]
            for child in node.children:
                acc = [(tuple(sorted(t1 + t2, key=abs)), v1 | v2)
                       for (t1, v1) in acc
                       for (t2, v2) in partials[child.id]]
            partials[node.id] = acc
        else:
            merged = {p for child in node.children
                      for p in partials[child.id]}
            partials[node.id] = sorted(merged)
    seen = set()
    for term, varset in partials[root.id]:
        free = [v for v in variables if v not in varset]
        for completion in _completions(term, free):
            key = tuple(sorted(completion, key=abs))
            if key not in seen:
                seen.add(key)
                yield {abs(lit): lit > 0 for lit in key}


def _completions(term: Tuple[int, ...], free: List[int]
                 ) -> Iterator[Tuple[int, ...]]:
    if not free:
        yield term
        return
    var, rest = free[0], free[1:]
    yield from _completions(term + (var,), rest)
    yield from _completions(term + (-var,), rest)


def mpe(root: NnfNode, weights: Weights,
        variables: Sequence[int] | None = None,
        stats: Counter | None = None
        ) -> Tuple[float, Dict[int, bool]]:
    """Most probable explanation on a d-DNNF: max-product upward pass
    plus traceback.  Returns (max weight, maximising assignment)."""
    legacy = _legacy()
    if legacy is not None:
        return legacy.mpe(root, weights, variables)
    if variables is None:
        variables = sorted(root.variables())
    value, assignment = get_kernel(root).mpe(weights, stats)
    for var in variables:
        if var not in assignment:
            lit = var if weights[var] >= weights[-var] else -var
            assignment[abs(lit)] = lit > 0
            value *= weights[lit]
    return value, assignment


def marginal_counts(root: NnfNode,
                    variables: Sequence[int] | None = None,
                    stats: Counter | None = None) -> Dict[int, int]:
    """For each literal ℓ, the number of models containing ℓ.

    Requires a *smooth* d-DNNF (see :func:`repro.nnf.transform.smooth`);
    computed with the upward/downward differential passes of [23, 25] —
    all marginals in time linear in the circuit size.
    """
    legacy = _legacy()
    if legacy is not None:
        return legacy.marginal_counts(root, variables)
    if variables is None:
        variables = sorted(root.variables())
    kernel = get_kernel(root)
    result = kernel.marginals(stats)
    total = kernel.model_count(stats)
    mentioned = root.variables()
    for var in variables:
        if var in mentioned:
            # a polarity absent from a smooth circuit has no models
            result.setdefault(var, 0)
            result.setdefault(-var, 0)
        else:
            # unmentioned variables: every model extends both ways
            result.setdefault(var, total)
            result.setdefault(-var, total)
    return result


def condition_evaluate(root: NnfNode, evidence: Mapping[int, bool],
                       weights: Weights,
                       stats: Counter | None = None) -> float:
    """WMC of the circuit conditioned on ``evidence`` without rebuilding:
    literals inconsistent with evidence weigh 0, consistent ones keep
    their weight.  Requires smooth d-DNNF for exactness on gaps covered
    by evidence; unset variables behave as in weighted_model_count."""
    legacy = _legacy()
    if legacy is not None:
        return legacy.condition_evaluate(root, evidence, weights)
    adjusted = dict(weights)
    for var, value in evidence.items():
        adjusted[var] = weights[var] if value else 0.0
        adjusted[-var] = 0.0 if value else weights[-var]
    return weighted_model_count(root, adjusted, stats=stats)
