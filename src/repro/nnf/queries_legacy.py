"""Reference implementations of the NNF circuit queries.

These are the seed's dict-per-call traversals, kept verbatim as

* the baseline the ``repro.perf`` benchmarks measure the
  :mod:`repro.nnf.kernel` speedups against, and
* the reference the property-based cross-check suite compares the
  kernel results to.

Use :mod:`repro.nnf.queries` for the fast kernel-backed versions; the
two modules share the same signatures and semantics.

.. deprecated::
   Do not call these from new code — they exist for cross-checking and
   benchmarking only.  All legacy paths are consolidated behind
   :mod:`repro.compat`; set ``REPRO_LEGACY=1`` to route the front-door
   queries through them process-wide.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .node import NnfNode

__all__ = ["is_satisfiable_dnnf", "sat_model_dnnf", "model_count",
           "weighted_model_count", "enumerate_models", "mpe",
           "marginal_counts", "condition_evaluate"]

Weights = Mapping[int, float]


def is_satisfiable_dnnf(root: NnfNode) -> bool:
    """SAT on a DNNF circuit — linear time [22]; unlocks NP."""
    sat: Dict[int, bool] = {}
    for node in root.topological():
        if node.is_literal or node.is_true:
            sat[node.id] = True
        elif node.is_false:
            sat[node.id] = False
        elif node.is_and:
            sat[node.id] = all(sat[c.id] for c in node.children)
        else:
            sat[node.id] = any(sat[c.id] for c in node.children)
    return sat[root.id]


def sat_model_dnnf(root: NnfNode) -> Optional[Dict[int, bool]]:
    """A satisfying assignment of a DNNF circuit (partial: only the
    variables that matter are set), or None if unsatisfiable."""
    sat: Dict[int, bool] = {}
    order = root.topological()
    for node in order:
        if node.is_literal or node.is_true:
            sat[node.id] = True
        elif node.is_false:
            sat[node.id] = False
        elif node.is_and:
            sat[node.id] = all(sat[c.id] for c in node.children)
        else:
            sat[node.id] = any(sat[c.id] for c in node.children)
    if not sat[root.id]:
        return None
    model: Dict[int, bool] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_literal:
            model[abs(node.literal)] = node.literal > 0
        elif node.is_and:
            stack.extend(node.children)
        elif node.is_or:
            for child in node.children:
                if sat[child.id]:
                    stack.append(child)
                    break
    return model


def model_count(root: NnfNode,
                variables: Sequence[int] | None = None) -> int:
    """#SAT on a d-DNNF circuit (Fig 8) — requires decomposability and
    determinism.  ``variables`` widens the count to a superset of the
    circuit variables (each absent variable doubles the count)."""
    counts: Dict[int, int] = {}
    for node in root.topological():
        if node.is_literal:
            counts[node.id] = 1
        elif node.is_true:
            counts[node.id] = 1
        elif node.is_false:
            counts[node.id] = 0
        elif node.is_and:
            value = 1
            for child in node.children:
                value *= counts[child.id]
            counts[node.id] = value
        else:  # or: children may mention fewer variables -> scale the gap
            node_vars = node.variables()
            total = 0
            for child in node.children:
                gap = len(node_vars) - len(child.variables())
                total += counts[child.id] << gap
            counts[node.id] = total
    result = counts[root.id]
    if variables is not None:
        extra = set(variables) - set(root.variables())
        if set(root.variables()) - set(variables):
            raise ValueError("variables must cover the circuit variables")
        result <<= len(extra)
    return result


def weighted_model_count(root: NnfNode, weights: Weights,
                         variables: Sequence[int] | None = None) -> float:
    """WMC on a d-DNNF circuit — the workhorse reduction target (§2.1).

    ``weights`` maps literals (±v) to weights.  Missing variables of an
    or-gate's child contribute a factor W(v) + W(-v); likewise variables
    in ``variables`` that are absent from the whole circuit.
    """
    def var_weight(var: int) -> float:
        return weights[var] + weights[-var]

    values: Dict[int, float] = {}
    for node in root.topological():
        if node.is_literal:
            values[node.id] = weights[node.literal]
        elif node.is_true:
            values[node.id] = 1.0
        elif node.is_false:
            values[node.id] = 0.0
        elif node.is_and:
            value = 1.0
            for child in node.children:
                value *= values[child.id]
            values[node.id] = value
        else:
            node_vars = node.variables()
            total = 0.0
            for child in node.children:
                gap = node_vars - child.variables()
                factor = values[child.id]
                for var in gap:
                    factor *= var_weight(var)
                total += factor
            values[node.id] = total
    result = values[root.id]
    if variables is not None:
        for var in set(variables) - set(root.variables()):
            result *= var_weight(var)
    return result


def enumerate_models(root: NnfNode,
                     variables: Sequence[int] | None = None
                     ) -> Iterator[Dict[int, bool]]:
    """Enumerate the models of a *decomposable* circuit.

    Works on any DNNF (determinism not required: duplicates are removed
    per node), yielding complete assignments over ``variables``.
    """
    if variables is None:
        variables = sorted(root.variables())
    variables = list(variables)
    partials: Dict[int, List[Tuple[Tuple[int, ...], frozenset]]] = {}
    # each node gets a list of (sorted literal tuple, varset) partial models
    for node in root.topological():
        if node.is_literal:
            partials[node.id] = [((node.literal,),
                                  frozenset((abs(node.literal),)))]
        elif node.is_true:
            partials[node.id] = [((), frozenset())]
        elif node.is_false:
            partials[node.id] = []
        elif node.is_and:
            acc = [((), frozenset())]
            for child in node.children:
                acc = [(tuple(sorted(t1 + t2, key=abs)), v1 | v2)
                       for (t1, v1) in acc
                       for (t2, v2) in partials[child.id]]
            partials[node.id] = acc
        else:
            merged = {p for child in node.children
                      for p in partials[child.id]}
            partials[node.id] = sorted(merged)
    seen = set()
    for term, varset in partials[root.id]:
        free = [v for v in variables if v not in varset]
        for completion in _completions(term, free):
            key = tuple(sorted(completion, key=abs))
            if key not in seen:
                seen.add(key)
                yield {abs(lit): lit > 0 for lit in key}


def _completions(term: Tuple[int, ...], free: List[int]
                 ) -> Iterator[Tuple[int, ...]]:
    if not free:
        yield term
        return
    var, rest = free[0], free[1:]
    yield from _completions(term + (var,), rest)
    yield from _completions(term + (-var,), rest)


def mpe(root: NnfNode, weights: Weights,
        variables: Sequence[int] | None = None
        ) -> Tuple[float, Dict[int, bool]]:
    """Most probable explanation on a d-DNNF: max-product upward pass
    plus traceback.  Returns (max weight, maximising assignment)."""
    if variables is None:
        variables = sorted(root.variables())

    def best_literal(var: int) -> int:
        return var if weights[var] >= weights[-var] else -var

    values: Dict[int, float] = {}
    for node in root.topological():
        if node.is_literal:
            values[node.id] = weights[node.literal]
        elif node.is_true:
            values[node.id] = 1.0
        elif node.is_false:
            values[node.id] = float("-inf")
        elif node.is_and:
            value = 1.0
            for child in node.children:
                value *= values[child.id]
            values[node.id] = value
        else:
            node_vars = node.variables()
            best = float("-inf")
            for child in node.children:
                value = values[child.id]
                for var in node_vars - child.variables():
                    value *= weights[best_literal(var)]
                best = max(best, value)
            values[node.id] = best
    # traceback
    assignment: Dict[int, bool] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_literal:
            assignment[abs(node.literal)] = node.literal > 0
        elif node.is_and:
            stack.extend(node.children)
        elif node.is_or:
            node_vars = node.variables()
            best_child, best_value = None, float("-inf")
            for child in node.children:
                value = values[child.id]
                for var in node_vars - child.variables():
                    value *= weights[best_literal(var)]
                if value > best_value:
                    best_child, best_value = child, value
            if best_child is not None:
                for var in node_vars - best_child.variables():
                    lit = best_literal(var)
                    assignment[abs(lit)] = lit > 0
                stack.append(best_child)
    value = values[root.id]
    for var in variables:
        if var not in assignment:
            lit = best_literal(var)
            assignment[abs(lit)] = lit > 0
            value *= weights[lit]
    return value, assignment


def marginal_counts(root: NnfNode,
                    variables: Sequence[int] | None = None
                    ) -> Dict[int, int]:
    """For each literal ℓ, the number of models containing ℓ.

    Requires a *smooth* d-DNNF (see :func:`repro.nnf.transform.smooth`);
    computed with the upward/downward differential passes of [23, 25] —
    all marginals in time linear in the circuit size.
    """
    if variables is None:
        variables = sorted(root.variables())
    order = root.topological()
    counts: Dict[int, int] = {}
    for node in order:
        if node.is_literal or node.is_true:
            counts[node.id] = 1
        elif node.is_false:
            counts[node.id] = 0
        elif node.is_and:
            value = 1
            for child in node.children:
                value *= counts[child.id]
            counts[node.id] = value
        else:
            if node.children and len({c.variables()
                                       for c in node.children}) != 1:
                raise ValueError("marginal_counts requires a smooth circuit")
            counts[node.id] = sum(counts[c.id] for c in node.children)
    # downward pass: derivative of root count w.r.t. each node value
    derivative: Dict[int, int] = {node.id: 0 for node in order}
    derivative[root.id] = 1
    for node in reversed(order):
        d = derivative[node.id]
        if d == 0 or node.is_literal or node.is_true or node.is_false:
            continue
        if node.is_or:
            for child in node.children:
                derivative[child.id] += d
        else:  # and: product rule
            for child in node.children:
                partial = d
                for sibling in node.children:
                    if sibling.id != child.id:
                        partial *= counts[sibling.id]
                derivative[child.id] += partial
    result: Dict[int, int] = {}
    for node in order:
        if node.is_literal:
            result[node.literal] = result.get(node.literal, 0) + \
                derivative[node.id]
    total = counts[root.id]
    mentioned = root.variables()
    for var in variables:
        if var in mentioned:
            # a polarity absent from a smooth circuit has no models
            result.setdefault(var, 0)
            result.setdefault(-var, 0)
        else:
            # unmentioned variables: every model extends both ways
            result.setdefault(var, total)
            result.setdefault(-var, total)
    return result


def condition_evaluate(root: NnfNode, evidence: Mapping[int, bool],
                       weights: Weights) -> float:
    """WMC of the circuit conditioned on ``evidence`` without rebuilding:
    literals inconsistent with evidence weigh 0, consistent ones keep
    their weight.  Requires smooth d-DNNF for exactness on gaps covered
    by evidence; unset variables behave as in weighted_model_count."""
    adjusted = dict(weights)
    for var, value in evidence.items():
        adjusted[var] = weights[var] if value else 0.0
        adjusted[-var] = 0.0 if value else weights[-var]
    return weighted_model_count(root, adjusted)
