"""Negation Normal Form circuit nodes and their manager.

An NNF circuit (Fig 5 of the paper) is a DAG whose internal nodes are
and-gates / or-gates and whose leaves are literals or the constants
⊤ / ⊥.  Inverters appear only at the inputs — i.e. only inside literals.

Nodes are created through an :class:`NnfManager`, which hash-conses them
so that structurally identical nodes are shared.  Node identity is the
``id`` integer assigned by the manager; equal ids mean equal functions
*syntactically* (same gate structure), which is what the linear-time
query algorithms rely on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

__all__ = ["NnfNode", "NnfManager", "LIT", "AND", "OR", "TRUE_KIND",
           "FALSE_KIND"]

LIT = "lit"
AND = "and"
OR = "or"
TRUE_KIND = "true"
FALSE_KIND = "false"


class NnfNode:
    """A node in an NNF circuit.  Create via :class:`NnfManager`."""

    __slots__ = ("kind", "literal", "children", "id", "manager", "_vars",
                 "_size")

    def __init__(self, kind: str, literal: int,
                 children: Tuple["NnfNode", ...],
                 node_id: int, manager: "NnfManager"):
        self.kind = kind
        self.literal = literal
        self.children = children
        self.id = node_id
        self.manager = manager
        self._vars: FrozenSet[int] | None = None
        self._size: Tuple[int, int] | None = None  # (nodes, edges)

    # -- structure ----------------------------------------------------------
    @property
    def is_literal(self) -> bool:
        return self.kind == LIT

    @property
    def is_true(self) -> bool:
        return self.kind == TRUE_KIND

    @property
    def is_false(self) -> bool:
        return self.kind == FALSE_KIND

    @property
    def is_and(self) -> bool:
        return self.kind == AND

    @property
    def is_or(self) -> bool:
        return self.kind == OR

    @property
    def variable(self) -> int:
        if not self.is_literal:
            raise ValueError("variable only defined for literal nodes")
        return abs(self.literal)

    def variables(self) -> FrozenSet[int]:
        """Variables in the subcircuit (cached, computed once per node).

        Computed by one iterative bottom-up pass that fills the cache
        for every node in the subcircuit — no recursion, so circuits
        deeper than the interpreter recursion limit are fine.
        """
        if self._vars is None:
            for node in self.topological():
                if node._vars is not None:
                    continue
                if node.kind == LIT:
                    node._vars = frozenset((abs(node.literal),))
                elif not node.children:
                    node._vars = frozenset()
                else:
                    node._vars = frozenset().union(
                        *(c._vars for c in node.children))
        return self._vars

    # -- traversal ----------------------------------------------------------
    def topological(self) -> List["NnfNode"]:
        """Nodes of the subcircuit, children before parents (iterative)."""
        order: List[NnfNode] = []
        seen = set()
        stack: List[Tuple[NnfNode, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if node.id in seen:
                continue
            seen.add(node.id)
            stack.append((node, True))
            for child in node.children:
                if child.id not in seen:
                    stack.append((child, False))
        return order

    def _measure(self) -> Tuple[int, int]:
        if self._size is None:
            order = self.topological()
            self._size = (len(order),
                          sum(len(node.children) for node in order))
        return self._size

    def node_count(self) -> int:
        """Distinct nodes in the subcircuit (cached after one pass)."""
        return self._measure()[0]

    def edge_count(self) -> int:
        """Number of wires; the paper's standard circuit-size measure.
        Cached after one traversal of the DAG."""
        return self._measure()[1]

    def size(self) -> int:
        """Circuit size |Δ| as the paper uses it: the edge count."""
        return self._measure()[1]

    def to_ir(self, flags: "int | None" = None):
        """Lower this circuit onto the flattened execution IR
        (:func:`repro.ir.lower.nnf_to_ir`): structurally 1:1, interned
        for structural sharing."""
        from ..ir.lower import nnf_to_ir
        return nnf_to_ir(self, flags=flags)

    # -- semantics ----------------------------------------------------------
    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """Circuit output under a complete assignment (iterative)."""
        values: Dict[int, bool] = {}
        for node in self.topological():
            if node.is_literal:
                value = assignment[abs(node.literal)]
                values[node.id] = value if node.literal > 0 else not value
            elif node.is_true:
                values[node.id] = True
            elif node.is_false:
                values[node.id] = False
            elif node.is_and:
                values[node.id] = all(values[c.id] for c in node.children)
            else:
                values[node.id] = any(values[c.id] for c in node.children)
        return values[self.id]

    def __repr__(self) -> str:
        if self.is_literal:
            return f"NnfNode(lit {self.literal})"
        if self.kind in (TRUE_KIND, FALSE_KIND):
            return f"NnfNode({self.kind})"
        return f"NnfNode({self.kind}, {len(self.children)} children)"


class NnfManager:
    """Factory and unique table for NNF nodes.

    ``conjoin``/``disjoin`` apply only constant simplifications and
    flattening of nested same-kind gates when ``flatten=True``; they never
    restructure the circuit, so figures from the paper can be built
    verbatim.
    """

    def __init__(self):
        self._unique: Dict[tuple, NnfNode] = {}
        self._next_id = 0
        self._true = self._make(TRUE_KIND, 0, ())
        self._false = self._make(FALSE_KIND, 0, ())

    def _make(self, kind: str, literal: int,
              children: Tuple[NnfNode, ...]) -> NnfNode:
        key = (kind, literal, tuple(c.id for c in children))
        node = self._unique.get(key)
        if node is None:
            node = NnfNode(kind, literal, children, self._next_id, self)
            self._next_id += 1
            self._unique[key] = node
        return node

    def __len__(self) -> int:
        return len(self._unique)

    # -- leaves --------------------------------------------------------------
    def true(self) -> NnfNode:
        return self._true

    def false(self) -> NnfNode:
        return self._false

    def literal(self, literal: int) -> NnfNode:
        if literal == 0:
            raise ValueError("literal must be non-zero")
        return self._make(LIT, literal, ())

    # -- gates ---------------------------------------------------------------
    def conjoin(self, *children: NnfNode, flatten: bool = False) -> NnfNode:
        kept: List[NnfNode] = []
        for child in children:
            if child.is_false:
                return self._false
            if child.is_true:
                continue
            if flatten and child.is_and:
                kept.extend(child.children)
            else:
                kept.append(child)
        if not kept:
            return self._true
        if len(kept) == 1:
            return kept[0]
        return self._make(AND, 0, tuple(kept))

    def disjoin(self, *children: NnfNode, flatten: bool = False) -> NnfNode:
        kept: List[NnfNode] = []
        for child in children:
            if child.is_true:
                return self._true
            if child.is_false:
                continue
            if flatten and child.is_or:
                kept.extend(child.children)
            else:
                kept.append(child)
        if not kept:
            return self._false
        if len(kept) == 1:
            return kept[0]
        return self._make(OR, 0, tuple(kept))

    def conjoin_all(self, children: Iterable[NnfNode]) -> NnfNode:
        return self.conjoin(*children)

    def disjoin_all(self, children: Iterable[NnfNode]) -> NnfNode:
        return self.disjoin(*children)
