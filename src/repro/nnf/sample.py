"""Uniform and weighted sampling from d-DNNF circuits.

Knowledge compilation meets uniform sampling [75]: once a formula is
compiled into a d-DNNF, exact samples from the uniform (or any literal-
weighted) distribution over its models come from one top-down pass
guided by (weighted) model counts.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Sequence

from .node import NnfNode

__all__ = ["sample_models", "sample_model"]


def sample_model(root: NnfNode, variables: Sequence[int],
                 rng: random.Random | None = None,
                 weights: Mapping[int, float] | None = None
                 ) -> Dict[int, bool]:
    """Draw one model of a d-DNNF circuit.

    With no ``weights`` the distribution is uniform over models; with
    weights, a model's probability is proportional to the product of
    its literal weights.  Raises ValueError on unsatisfiable circuits.
    """
    rng = rng or random.Random()
    variables = list(variables)
    if weights is None:
        weights = {lit: 1.0 for v in variables for lit in (v, -v)}

    def var_weight(var: int) -> float:
        return weights[var] + weights[-var]

    values: Dict[int, float] = {}
    for node in root.topological():
        if node.is_literal:
            values[node.id] = weights[node.literal]
        elif node.is_true:
            values[node.id] = 1.0
        elif node.is_false:
            values[node.id] = 0.0
        elif node.is_and:
            value = 1.0
            for child in node.children:
                value *= values[child.id]
            values[node.id] = value
        else:
            node_vars = node.variables()
            total = 0.0
            for child in node.children:
                scaled = values[child.id]
                for var in node_vars - child.variables():
                    scaled *= var_weight(var)
                total += scaled
            values[node.id] = total
    if values[root.id] <= 0.0:
        raise ValueError("cannot sample from an unsatisfiable circuit")

    assignment: Dict[int, bool] = {}

    def sample_free(var: int) -> None:
        p = weights[var] / var_weight(var)
        assignment[var] = rng.random() < p

    stack: List[NnfNode] = [root]
    while stack:
        node = stack.pop()
        if node.is_literal:
            assignment[abs(node.literal)] = node.literal > 0
        elif node.is_and:
            stack.extend(node.children)
        elif node.is_or:
            node_vars = node.variables()
            scaled: List[float] = []
            for child in node.children:
                value = values[child.id]
                for var in node_vars - child.variables():
                    value *= var_weight(var)
                scaled.append(value)
            total = sum(scaled)
            pick = rng.random() * total
            cumulative = 0.0
            chosen = node.children[-1]
            for child, value in zip(node.children, scaled):
                cumulative += value
                if pick < cumulative:
                    chosen = child
                    break
            for var in node_vars - chosen.variables():
                sample_free(var)
            stack.append(chosen)
    for var in variables:
        if var not in assignment:
            sample_free(var)
    return assignment


def sample_models(root: NnfNode, variables: Sequence[int], n: int,
                  rng: random.Random | None = None,
                  weights: Mapping[int, float] | None = None
                  ) -> List[Dict[int, bool]]:
    """Draw ``n`` independent models."""
    rng = rng or random.Random()
    return [sample_model(root, variables, rng, weights)
            for _ in range(n)]
