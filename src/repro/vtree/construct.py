"""Vtree constructors: balanced, linear, random and constrained (Fig 10)."""

from __future__ import annotations

import random
from typing import List, Sequence

from .vtree import Vtree

__all__ = ["balanced_vtree", "right_linear_vtree", "left_linear_vtree",
           "random_vtree", "constrained_vtree", "vtree_from_order"]


def _leaves(variables: Sequence[int]) -> List[Vtree]:
    variables = list(variables)
    if not variables:
        raise ValueError("a vtree needs at least one variable")
    if len(set(variables)) != len(variables):
        raise ValueError("duplicate variables")
    return [Vtree.leaf(v) for v in variables]


def balanced_vtree(variables: Sequence[int]) -> Vtree:
    """Balanced vtree over ``variables`` in the given left-to-right order
    (Fig 10a)."""
    nodes = _leaves(variables)

    def build(lo: int, hi: int) -> Vtree:
        if hi - lo == 1:
            return nodes[lo]
        mid = (lo + hi + 1) // 2
        return Vtree.internal(build(lo, mid), build(mid, hi))

    return build(0, len(nodes))


def right_linear_vtree(variables: Sequence[int]) -> Vtree:
    """Right-linear vtree (Fig 10c) — SDDs structured by it are OBDDs."""
    nodes = _leaves(variables)
    root = nodes[-1]
    for leaf in reversed(nodes[:-1]):
        root = Vtree.internal(leaf, root)
    return root


def left_linear_vtree(variables: Sequence[int]) -> Vtree:
    """Left-linear vtree (the mirror image of right-linear)."""
    nodes = _leaves(variables)
    root = nodes[0]
    for leaf in nodes[1:]:
        root = Vtree.internal(root, leaf)
    return root


def random_vtree(variables: Sequence[int],
                 rng: random.Random | None = None) -> Vtree:
    """Uniformly random binary tree shape over a shuffled variable order."""
    rng = rng or random.Random()
    variables = list(variables)
    rng.shuffle(variables)
    nodes = _leaves(variables)

    def build(lo: int, hi: int) -> Vtree:
        if hi - lo == 1:
            return nodes[lo]
        mid = rng.randint(lo + 1, hi - 1)
        return Vtree.internal(build(lo, mid), build(mid, hi))

    return build(0, len(nodes))


def constrained_vtree(spine_vars: Sequence[int],
                      block_vars: Sequence[int],
                      block_shape: str = "balanced") -> Vtree:
    """Constrained vtree for ``block_vars | spine_vars`` (Fig 10b).

    The result contains a node ``u`` reachable from the root by following
    right children only whose variables are exactly ``block_vars``; the
    ``spine_vars`` hang as left leaves along the spine above ``u``.
    Constrained SDDs/Decision-DNNFs let E-MAJSAT and MAJMAJSAT be solved
    by circuit evaluation [61].
    """
    if not spine_vars:
        raise ValueError("need at least one spine variable")
    if block_shape == "balanced":
        block = balanced_vtree(block_vars)
    elif block_shape == "right-linear":
        block = right_linear_vtree(block_vars)
    else:
        raise ValueError(f"unknown block shape {block_shape!r}")
    root = block
    for var in reversed(list(spine_vars)):
        root = Vtree.internal(Vtree.leaf(var), root)
    return root


def vtree_from_order(variables: Sequence[int], shape: str) -> Vtree:
    """Dispatch helper: shape in {balanced, right-linear, left-linear}."""
    builders = {
        "balanced": balanced_vtree,
        "right-linear": right_linear_vtree,
        "left-linear": left_linear_vtree,
    }
    if shape not in builders:
        raise ValueError(f"unknown vtree shape {shape!r}")
    return builders[shape](variables)
