"""Vtrees: variable trees that structure decomposability (Fig 10).

A vtree is a full binary tree whose leaves are in one-to-one
correspondence with a set of variables.  SDDs are *structured* by a
vtree: every decomposition node of an SDD is associated with an internal
vtree node ``v``; its primes mention only variables of ``v.left`` and
its subs only variables of ``v.right``.

Vtrees here are immutable once constructed.  Each node carries its
variable set, parent pointer, depth and an in-order position so that
lowest-common-ancestor queries (needed by the SDD apply) run in
O(depth).
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterator, List, Optional

__all__ = ["Vtree"]


class Vtree:
    """A vtree node; the root object doubles as "the vtree".

    Build leaves with :meth:`leaf` and internal nodes with
    :meth:`internal`; or use the constructors in
    :mod:`repro.vtree.construct`.
    """

    __slots__ = ("var", "left", "right", "variables", "parent", "depth",
                 "position", "_nodes")

    def __init__(self, var: Optional[int], left: Optional["Vtree"],
                 right: Optional["Vtree"]):
        self.var = var
        self.left = left
        self.right = right
        self.parent: Optional[Vtree] = None
        if var is not None:
            self.variables: FrozenSet[int] = frozenset((var,))
        else:
            assert left is not None and right is not None
            if left.variables & right.variables:
                raise ValueError("vtree children share variables")
            if left.parent is not None or right.parent is not None:
                raise ValueError("vtree nodes cannot be shared/reused")
            self.variables = left.variables | right.variables
            left.parent = self
            right.parent = self
        self.depth = 0
        self.position = 0
        self._nodes: Optional[List[Vtree]] = None
        self._annotate()

    # -- constructors ---------------------------------------------------------
    @classmethod
    def leaf(cls, var: int) -> "Vtree":
        """A leaf vtree for variable ``var`` (positive integer)."""
        if var <= 0:
            raise ValueError("vtree variables are positive integers")
        return cls(var, None, None)

    @classmethod
    def internal(cls, left: "Vtree", right: "Vtree") -> "Vtree":
        """An internal vtree node over two disjoint subtrees."""
        return cls(None, left, right)

    # -- bookkeeping ------------------------------------------------------------
    def _annotate(self) -> None:
        """(Re)compute depth and in-order positions below this node.

        Construction is bottom-up, so the annotation done when the final
        root is created is the one that sticks; intermediate annotations
        are cheap and harmless.
        """
        for position, node in enumerate(self._inorder()):
            node.position = position
        self.depth = 0
        stack = [self]
        while stack:
            node = stack.pop()
            for child in (node.left, node.right):
                if child is not None:
                    child.depth = node.depth + 1
                    stack.append(child)

    def _inorder(self) -> Iterator["Vtree"]:
        if self.is_leaf():
            yield self
            return
        yield from self.left._inorder()
        yield self
        yield from self.right._inorder()

    # -- structure ---------------------------------------------------------------
    def is_leaf(self) -> bool:
        return self.var is not None

    def nodes(self) -> List["Vtree"]:
        """All nodes below (and including) this one, in-order (cached)."""
        if self._nodes is None:
            self._nodes = list(self._inorder())
        return self._nodes

    def leaves(self) -> List["Vtree"]:
        return [n for n in self.nodes() if n.is_leaf()]

    def variable_order(self) -> List[int]:
        """Left-to-right leaf variables (the induced total order)."""
        return [leaf.var for leaf in self.leaves()]

    def node_count(self) -> int:
        return len(self.nodes())

    def find_leaf(self, var: int) -> "Vtree":
        """The leaf for ``var`` (KeyError if absent)."""
        for leaf in self.leaves():
            if leaf.var == var:
                return leaf
        raise KeyError(f"variable {var} not in vtree")

    def is_ancestor_of(self, other: "Vtree") -> bool:
        """True when ``other`` lies in the subtree rooted here (or is it)."""
        return other.variables <= self.variables and \
            self._contains(other)

    def _contains(self, other: "Vtree") -> bool:
        node: Optional[Vtree] = other
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    def lca(self, other: "Vtree") -> "Vtree":
        """Lowest common ancestor (both nodes must be in the same tree)."""
        a: Optional[Vtree] = self
        b: Optional[Vtree] = other
        while a is not b:
            if a is None or b is None:
                raise ValueError("nodes are not in the same vtree")
            if a.depth >= (b.depth if b is not None else -1):
                a = a.parent
            else:
                b = b.parent
        assert a is not None
        return a

    def smallest_containing(self, variables: FrozenSet[int]) -> "Vtree":
        """Deepest node whose variable set contains ``variables``."""
        if not variables <= self.variables:
            raise ValueError("variables not all in this vtree")
        node = self
        while not node.is_leaf():
            if variables <= node.left.variables:
                node = node.left
            elif variables <= node.right.variables:
                node = node.right
            else:
                break
        return node

    def is_right_linear(self) -> bool:
        """Left child of every internal node is a leaf (Fig 10c: OBDD)."""
        return all(n.is_leaf() or n.left.is_leaf() for n in self.nodes())

    # -- rendering ------------------------------------------------------------
    def __repr__(self) -> str:
        if self.is_leaf():
            return f"Vtree({self.var})"
        return f"Vtree({len(self.variables)} vars)"

    def pretty(self, names: Callable[[int], str] = str) -> str:
        """Indented multi-line rendering."""
        lines: List[str] = []

        def rec(node: "Vtree", indent: int) -> None:
            pad = "  " * indent
            if node.is_leaf():
                lines.append(f"{pad}{names(node.var)}")
            else:
                lines.append(f"{pad}*")
                rec(node.left, indent + 1)
                rec(node.right, indent + 1)
        rec(self, 0)
        return "\n".join(lines)
