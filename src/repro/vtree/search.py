"""Vtree search: minimizing SDD size over vtrees ([12]).

The paper stresses that SDD size is very sensitive to the vtree.  The
dynamic-minimization literature searches vtree space with rotations and
swaps inside the SDD manager; here we implement the search *over*
vtrees (compile-and-measure), which is simpler and exact at library
scale: a portfolio of standard shapes, random restarts and stochastic
local moves on the variable order / tree shape.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Tuple

from ..logic.cnf import Cnf
from .construct import (balanced_vtree, left_linear_vtree, random_vtree,
                        right_linear_vtree)
from .vtree import Vtree

__all__ = ["minimize_vtree", "sdd_size_for_vtree"]


def sdd_size_for_vtree(cnf: Cnf, vtree: Vtree) -> int:
    """Compile ``cnf`` under ``vtree`` and report the SDD size."""
    from ..sdd.compiler import compile_cnf_sdd
    root, _manager = compile_cnf_sdd(cnf, vtree=vtree)
    return root.size()


def _rebuild(order: Sequence[int], shape_bits: random.Random) -> Vtree:
    """A random tree shape over a fixed variable order."""
    leaves = [Vtree.leaf(v) for v in order]

    def build(lo: int, hi: int) -> Vtree:
        if hi - lo == 1:
            return leaves[lo]
        mid = shape_bits.randint(lo + 1, hi - 1)
        return Vtree.internal(build(lo, mid), build(mid, hi))

    return build(0, len(leaves))


def minimize_vtree(cnf: Cnf, iterations: int = 30,
                   rng: random.Random | None = None,
                   size_of: Callable[[Cnf, Vtree], int] | None = None
                   ) -> Tuple[Vtree, int]:
    """Search for a small-SDD vtree for ``cnf``.

    Strategy: seed with the standard shapes (balanced, right-/left-
    linear over the identity order), then run ``iterations`` rounds of
    stochastic moves (swap two variables in the order, or resample the
    tree shape), keeping the best.  Returns (vtree, its SDD size).

    ``size_of`` defaults to compiling and measuring; inject a cheaper
    proxy for experimentation.
    """
    rng = rng or random.Random()
    size_of = size_of or sdd_size_for_vtree
    variables = list(range(1, cnf.num_vars + 1))
    if not variables:
        raise ValueError("cnf has no variables")

    candidates: List[Vtree] = [balanced_vtree(variables)]
    if len(variables) > 1:
        candidates.append(right_linear_vtree(variables))
        candidates.append(left_linear_vtree(variables))
    best_vtree, best_size = None, None
    for vtree in candidates:
        size = size_of(cnf, vtree)
        if best_size is None or size < best_size:
            best_vtree, best_size = vtree, size

    order = list(variables)
    for _ in range(iterations):
        move = rng.random()
        new_order = list(order)
        if move < 0.5 and len(new_order) > 1:
            i, j = rng.sample(range(len(new_order)), 2)
            new_order[i], new_order[j] = new_order[j], new_order[i]
            vtree = balanced_vtree(new_order)
        elif move < 0.8:
            vtree = _rebuild(order, rng)
        else:
            vtree = random_vtree(variables, rng=rng)
            new_order = vtree.variable_order()
        size = size_of(cnf, vtree)
        if size < best_size:
            best_vtree, best_size = vtree, size
            order = new_order
    assert best_vtree is not None
    return best_vtree, best_size
