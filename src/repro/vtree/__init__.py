"""Vtrees for structured decomposability."""

from .vtree import Vtree
from .search import minimize_vtree, sdd_size_for_vtree
from .construct import (balanced_vtree, constrained_vtree,
                        left_linear_vtree, random_vtree,
                        right_linear_vtree, vtree_from_order)

__all__ = ["Vtree", "minimize_vtree", "sdd_size_for_vtree", "balanced_vtree", "constrained_vtree",
           "left_linear_vtree", "random_vtree", "right_linear_vtree",
           "vtree_from_order"]
