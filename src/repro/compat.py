"""One home — and one switch — for the seed's legacy code paths.

The repo keeps the seed's original traversals and solvers alive as
``*_legacy`` functions: they are the references the cross-check suites
compare the IR kernel against and the baselines the benchmarks
measure speedups over.  Their implementations stay in the modules
where they grew; this module consolidates access to them:

* :func:`legacy_enabled` reads the ``REPRO_LEGACY`` environment
  variable — set ``REPRO_LEGACY=1`` to route the front-door query
  functions (``nnf.queries``, ``obdd.ops``, ``sdd.queries``,
  ``psdd.queries``) and the search defaults (``sat``, DNNF
  compilation) back through the seed implementations, e.g. to bisect
  a suspected kernel regression;
* every legacy entry point is importable from here
  (``from repro.compat import model_count_legacy``), so callers never
  need to know which module a seed path lives in.

Re-exports resolve lazily (module ``__getattr__``), so importing this
module from inside a family package is cycle-free.

The legacy paths are **deprecated as front doors**: they stay for
cross-checking and benchmarking, not for new call sites.
"""

from __future__ import annotations

import os

__all__ = ["legacy_enabled", "default_propagator", "LEGACY_ENV",
           # lazily re-exported legacy entry points
           "solve_legacy", "unit_propagate_legacy",
           "is_satisfiable_dnnf_legacy", "sat_model_dnnf_legacy",
           "model_count_legacy", "weighted_model_count_legacy",
           "mpe_legacy", "marginal_counts_legacy",
           "condition_evaluate_legacy",
           "obdd_model_count_legacy", "obdd_weighted_model_count_legacy",
           "sdd_model_count_legacy", "sdd_weighted_model_count_legacy",
           "marginal_legacy", "variable_marginals_legacy"]

#: environment variable holding the opt-in switch
LEGACY_ENV = "REPRO_LEGACY"

_FALSY = ("", "0", "false", "no", "off")


def legacy_enabled() -> bool:
    """True when ``REPRO_LEGACY`` opts the process into the seed's
    legacy implementations for all front-door queries and defaults."""
    return os.environ.get(LEGACY_ENV, "").strip().lower() not in _FALSY


def default_propagator() -> str:
    """The propagator the SAT/compilation layers default to:
    ``"legacy"`` (seed clause rescans) under ``REPRO_LEGACY=1``,
    ``"watched"`` (two-watched-literal) otherwise."""
    return "legacy" if legacy_enabled() else "watched"


#: lazy re-export table: public name -> (module, attribute there)
_EXPORTS = {
    "solve_legacy": ("repro.sat.dpll", "solve_legacy"),
    "unit_propagate_legacy": ("repro.sat.dpll", "unit_propagate_legacy"),
    "is_satisfiable_dnnf_legacy":
        ("repro.nnf.queries_legacy", "is_satisfiable_dnnf"),
    "sat_model_dnnf_legacy":
        ("repro.nnf.queries_legacy", "sat_model_dnnf"),
    "model_count_legacy": ("repro.nnf.queries_legacy", "model_count"),
    "weighted_model_count_legacy":
        ("repro.nnf.queries_legacy", "weighted_model_count"),
    "mpe_legacy": ("repro.nnf.queries_legacy", "mpe"),
    "marginal_counts_legacy":
        ("repro.nnf.queries_legacy", "marginal_counts"),
    "condition_evaluate_legacy":
        ("repro.nnf.queries_legacy", "condition_evaluate"),
    "obdd_model_count_legacy": ("repro.obdd.ops", "model_count_legacy"),
    "obdd_weighted_model_count_legacy":
        ("repro.obdd.ops", "weighted_model_count_legacy"),
    "sdd_model_count_legacy": ("repro.sdd.queries", "model_count_legacy"),
    "sdd_weighted_model_count_legacy":
        ("repro.sdd.queries", "weighted_model_count_legacy"),
    "marginal_legacy": ("repro.psdd.queries", "marginal_legacy"),
    "variable_marginals_legacy":
        ("repro.psdd.queries", "variable_marginals_legacy"),
}


def __getattr__(name: str):
    spec = _EXPORTS.get(name)
    if spec is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(spec[0]), spec[1])
