"""Variable-order search for OBDDs.

OBDD size is notoriously order-sensitive (the OBDD analogue of the
paper's vtree-sensitivity point).  This module searches order space by
compile-and-measure: seed orders plus stochastic swap/shuffle moves —
the out-of-manager counterpart of sifting.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Tuple

from ..logic.cnf import Cnf
from .manager import ObddManager
from .ops import compile_cnf_obdd

__all__ = ["obdd_size_for_order", "minimize_order"]


def obdd_size_for_order(cnf: Cnf, order: Sequence[int]) -> int:
    """Compile ``cnf`` under the given variable order; decision-node
    count of the result."""
    manager = ObddManager(order)
    root, _manager = compile_cnf_obdd(cnf, manager=manager)
    return root.size()


def minimize_order(cnf: Cnf, iterations: int = 40,
                   rng: random.Random | None = None,
                   size_of: Callable[[Cnf, Sequence[int]], int]
                   | None = None) -> Tuple[List[int], int]:
    """Search for a small-OBDD variable order.

    Moves: adjacent swaps (sifting-flavoured), random transpositions
    and occasional full shuffles; greedy accept.  Returns
    (order, size).
    """
    rng = rng or random.Random()
    size_of = size_of or obdd_size_for_order
    variables = list(range(1, cnf.num_vars + 1))
    if not variables:
        raise ValueError("cnf has no variables")
    best_order = list(variables)
    best_size = size_of(cnf, best_order)
    current = list(best_order)
    for _ in range(iterations):
        candidate = list(current)
        move = rng.random()
        if move < 0.5 and len(candidate) > 1:
            i = rng.randrange(len(candidate) - 1)
            candidate[i], candidate[i + 1] = candidate[i + 1], candidate[i]
        elif move < 0.85 and len(candidate) > 1:
            i, j = rng.sample(range(len(candidate)), 2)
            candidate[i], candidate[j] = candidate[j], candidate[i]
        else:
            rng.shuffle(candidate)
        size = size_of(cnf, candidate)
        if size <= best_size:
            if size < best_size:
                best_order, best_size = list(candidate), size
            current = candidate
    return best_order, best_size
