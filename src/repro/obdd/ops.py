"""OBDD operations beyond apply: restriction, quantification, counting,
enumeration, variable flips and compilation from formulas/CNF."""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from ..logic.cnf import Cnf
from ..logic.formula import (And as FAnd, Constant, Formula, Lit,
                             Or as FOr)
from .manager import ObddManager, ObddNode

__all__ = ["restrict", "exists", "forall", "compose", "flip_variable",
           "model_count", "weighted_model_count", "enumerate_models",
           "compile_formula", "compile_cnf_obdd", "compile_nnf_obdd",
           "minimum_cardinality"]


def restrict(node: ObddNode, evidence: Mapping[int, bool]) -> ObddNode:
    """Condition the function on fixed variable values."""
    manager = node.manager
    cache: Dict[int, ObddNode] = {}

    def rec(n: ObddNode) -> ObddNode:
        if n.is_terminal:
            return n
        hit = cache.get(n.id)
        if hit is not None:
            return hit
        if n.var in evidence:
            result = rec(n.high if evidence[n.var] else n.low)
        else:
            result = manager.make(n.var, rec(n.low), rec(n.high))
        cache[n.id] = result
        return result

    return rec(node)


def exists(node: ObddNode, variables: Sequence[int]) -> ObddNode:
    """Existentially quantify ``variables``: ∃v. f = f|v ∨ f|¬v."""
    manager = node.manager
    result = node
    for var in variables:
        result = manager.apply_or(restrict(result, {var: True}),
                                  restrict(result, {var: False}))
    return result


def forall(node: ObddNode, variables: Sequence[int]) -> ObddNode:
    """Universally quantify ``variables``: ∀v. f = f|v ∧ f|¬v."""
    manager = node.manager
    result = node
    for var in variables:
        result = manager.apply_and(restrict(result, {var: True}),
                                   restrict(result, {var: False}))
    return result


def compose(node: ObddNode, var: int, replacement: ObddNode) -> ObddNode:
    """Substitute function ``replacement`` for variable ``var``:
    f[var := g] = (g ∧ f|var) ∨ (¬g ∧ f|¬var)."""
    manager = node.manager
    return manager.ite(replacement, restrict(node, {var: True}),
                       restrict(node, {var: False}))


def flip_variable(node: ObddNode, var: int) -> ObddNode:
    """The function with the sense of ``var`` inverted:
    g(x) = f(x with bit `var` flipped).  Used by the Hamming-dilation
    robustness computation (Section 5.2)."""
    manager = node.manager
    cache: Dict[int, ObddNode] = {}

    def rec(n: ObddNode) -> ObddNode:
        if n.is_terminal:
            return n
        hit = cache.get(n.id)
        if hit is not None:
            return hit
        if n.var == var:
            result = manager.make(n.var, rec(n.high), rec(n.low))
        else:
            result = manager.make(n.var, rec(n.low), rec(n.high))
        cache[n.id] = result
        return result

    return rec(node)


def model_count(node: ObddNode,
                variables: Sequence[int] | None = None) -> int:
    """Exact model count over ``variables`` (default: the manager's
    full variable order)."""
    manager = node.manager
    if variables is None:
        variables = manager.var_order
    variables = list(variables)
    positions = {v: i for i, v in enumerate(variables)}
    missing = node.variables() - set(variables)
    if missing:
        raise ValueError(f"count variables missing {sorted(missing)}")
    n = len(variables)
    cache: Dict[Tuple[int, int], int] = {}

    def rec(n_node: ObddNode, depth: int) -> int:
        """Models over variables[depth:]."""
        if n_node.is_terminal:
            return (1 << (n - depth)) if n_node.terminal_value else 0
        key = (n_node.id, depth)
        hit = cache.get(key)
        if hit is not None:
            return hit
        level = positions[n_node.var]
        gap = level - depth
        value = (rec(n_node.low, level + 1) +
                 rec(n_node.high, level + 1)) << gap
        cache[key] = value
        return value

    return rec(node, 0)


def weighted_model_count(node: ObddNode, weights: Mapping[int, float],
                         variables: Sequence[int] | None = None) -> float:
    """WMC with literal weights (±v keys), skipped variables contribute
    W(v) + W(-v)."""
    manager = node.manager
    if variables is None:
        variables = manager.var_order
    variables = list(variables)
    positions = {v: i for i, v in enumerate(variables)}
    n = len(variables)

    def span_weight(lo: int, hi: int) -> float:
        value = 1.0
        for i in range(lo, hi):
            var = variables[i]
            value *= weights[var] + weights[-var]
        return value

    cache: Dict[Tuple[int, int], float] = {}

    def rec(n_node: ObddNode, depth: int) -> float:
        if n_node.is_terminal:
            return span_weight(depth, n) if n_node.terminal_value else 0.0
        key = (n_node.id, depth)
        hit = cache.get(key)
        if hit is not None:
            return hit
        level = positions[n_node.var]
        var = n_node.var
        value = span_weight(depth, level) * (
            weights[-var] * rec(n_node.low, level + 1)
            + weights[var] * rec(n_node.high, level + 1))
        cache[key] = value
        return value

    return rec(node, 0)


def enumerate_models(node: ObddNode,
                     variables: Sequence[int] | None = None
                     ) -> Iterator[Dict[int, bool]]:
    """Yield all complete models over ``variables``."""
    manager = node.manager
    if variables is None:
        variables = manager.var_order
    variables = list(variables)
    positions = {v: i for i, v in enumerate(variables)}

    def rec(n_node: ObddNode, depth: int,
            partial: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
        if n_node.is_terminal:
            if n_node.terminal_value:
                yield from _expand(partial, variables[depth:])
            return
        level = positions[n_node.var]
        for free_assignment in _expand({}, variables[depth:level]):
            base = {**partial, **free_assignment}
            for value, child in ((False, n_node.low), (True, n_node.high)):
                base[n_node.var] = value
                yield from rec(child, level + 1, dict(base))

    yield from rec(node, 0, {})


def _expand(partial: Dict[int, bool], free: List[int]
            ) -> Iterator[Dict[int, bool]]:
    if not free:
        yield dict(partial)
        return
    var, rest = free[0], free[1:]
    for value in (False, True):
        partial[var] = value
        yield from _expand(partial, rest)
    del partial[var]


def minimum_cardinality(node: ObddNode, costs: Mapping[int, float]
                        ) -> float:
    """Minimum, over models, of the sum of per-literal costs.

    ``costs`` maps literals to non-negative costs.  Returns ``inf`` for
    the zero function.  Linear in the OBDD size; this is the primitive
    behind decision robustness (cost 1 on flipped literals).
    """
    manager = node.manager
    variables = manager.var_order
    positions = {v: i for i, v in enumerate(variables)}
    n = len(variables)

    def span_cost(lo: int, hi: int) -> float:
        return sum(min(costs[variables[i]], costs[-variables[i]])
                   for i in range(lo, hi))

    cache: Dict[Tuple[int, int], float] = {}

    def rec(n_node: ObddNode, depth: int) -> float:
        if n_node.is_terminal:
            return span_cost(depth, n) if n_node.terminal_value \
                else float("inf")
        key = (n_node.id, depth)
        hit = cache.get(key)
        if hit is not None:
            return hit
        level = positions[n_node.var]
        var = n_node.var
        value = span_cost(depth, level) + min(
            costs[-var] + rec(n_node.low, level + 1),
            costs[var] + rec(n_node.high, level + 1))
        cache[key] = value
        return value

    return rec(node, 0)


def compile_formula(formula: Formula, manager: ObddManager) -> ObddNode:
    """Bottom-up compilation of a formula by apply operations."""
    nnf = formula.to_nnf()

    def build(f: Formula) -> ObddNode:
        if isinstance(f, Constant):
            return manager.terminal(f.value)
        if isinstance(f, Lit):
            return manager.literal(f.literal)
        if isinstance(f, FAnd):
            return manager.conjoin_all([build(c) for c in f.children])
        if isinstance(f, FOr):
            return manager.disjoin_all([build(c) for c in f.children])
        raise TypeError(f"unexpected formula node {f!r}")

    return build(nnf)


def compile_cnf_obdd(cnf: Cnf, manager: ObddManager | None = None
                     ) -> Tuple[ObddNode, ObddManager]:
    """Compile a CNF bottom-up (clause by clause, widest clauses first
    conjoined last).  Returns (root, manager)."""
    if manager is None:
        manager = ObddManager(range(1, cnf.num_vars + 1))
    clause_nodes = [manager.disjoin_all([manager.literal(lit)
                                         for lit in clause])
                    for clause in cnf.clauses]
    clause_nodes.sort(key=lambda node: node.size())
    return manager.conjoin_all(clause_nodes), manager


def compile_nnf_obdd(root, manager: ObddManager) -> ObddNode:
    """Compile any NNF circuit into an OBDD by bottom-up apply.

    Bridges compiler output (e.g. Decision-DNNF) into the OBDD engine so
    the explanation/robustness machinery applies to it; worst-case
    exponential like any OBDD construction.
    """
    cache: Dict[int, ObddNode] = {}
    for node in root.topological():
        if node.is_literal:
            cache[node.id] = manager.literal(node.literal)
        elif node.is_true:
            cache[node.id] = manager.one
        elif node.is_false:
            cache[node.id] = manager.zero
        elif node.is_and:
            cache[node.id] = manager.conjoin_all(
                [cache[c.id] for c in node.children])
        else:
            cache[node.id] = manager.disjoin_all(
                [cache[c.id] for c in node.children])
    return cache[root.id]
