"""OBDD operations beyond apply: restriction, quantification, counting,
enumeration, variable flips and compilation from formulas/CNF."""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from ..logic.cnf import Cnf
from ..logic.formula import (And as FAnd, Constant, Formula, Lit,
                             Or as FOr)
from .manager import ObddManager, ObddNode

__all__ = ["restrict", "exists", "forall", "compose", "flip_variable",
           "model_count", "model_count_legacy", "weighted_model_count",
           "weighted_model_count_legacy", "enumerate_models",
           "compile_formula", "compile_cnf_obdd", "compile_nnf_obdd",
           "minimum_cardinality"]


def restrict(node: ObddNode, evidence: Mapping[int, bool]) -> ObddNode:
    """Condition the function on fixed variable values.

    One iterative children-first pass; diagrams deeper than the
    interpreter recursion limit are fine.
    """
    manager = node.manager
    rebuilt: Dict[int, ObddNode] = {}
    for n in node.topological():
        if n.is_terminal:
            rebuilt[n.id] = n
        elif n.var in evidence:
            rebuilt[n.id] = rebuilt[(n.high if evidence[n.var]
                                     else n.low).id]
        else:
            rebuilt[n.id] = manager.make(n.var, rebuilt[n.low.id],
                                         rebuilt[n.high.id])
    return rebuilt[node.id]


def exists(node: ObddNode, variables: Sequence[int]) -> ObddNode:
    """Existentially quantify ``variables``: ∃v. f = f|v ∨ f|¬v."""
    manager = node.manager
    result = node
    for var in variables:
        result = manager.apply_or(restrict(result, {var: True}),
                                  restrict(result, {var: False}))
    return result


def forall(node: ObddNode, variables: Sequence[int]) -> ObddNode:
    """Universally quantify ``variables``: ∀v. f = f|v ∧ f|¬v."""
    manager = node.manager
    result = node
    for var in variables:
        result = manager.apply_and(restrict(result, {var: True}),
                                   restrict(result, {var: False}))
    return result


def compose(node: ObddNode, var: int, replacement: ObddNode) -> ObddNode:
    """Substitute function ``replacement`` for variable ``var``:
    f[var := g] = (g ∧ f|var) ∨ (¬g ∧ f|¬var)."""
    manager = node.manager
    return manager.ite(replacement, restrict(node, {var: True}),
                       restrict(node, {var: False}))


def flip_variable(node: ObddNode, var: int) -> ObddNode:
    """The function with the sense of ``var`` inverted:
    g(x) = f(x with bit `var` flipped).  Used by the Hamming-dilation
    robustness computation (Section 5.2).  Iterative bottom-up pass."""
    manager = node.manager
    rebuilt: Dict[int, ObddNode] = {}
    for n in node.topological():
        if n.is_terminal:
            rebuilt[n.id] = n
        elif n.var == var:
            rebuilt[n.id] = manager.make(n.var, rebuilt[n.high.id],
                                         rebuilt[n.low.id])
        else:
            rebuilt[n.id] = manager.make(n.var, rebuilt[n.low.id],
                                         rebuilt[n.high.id])
    return rebuilt[node.id]


def model_count(node: ObddNode,
                variables: Sequence[int] | None = None) -> int:
    """Exact model count over ``variables`` (default: the manager's
    full variable order).

    Runs on the shared IR kernel (:mod:`repro.ir`): the OBDD lowers
    once (cached on its manager) and the kernel's gap-aware counting
    pass replaces the level-gap scheme of the seed — which survives as
    :func:`model_count_legacy` (``REPRO_LEGACY=1`` routes back to it).
    """
    from ..compat import legacy_enabled
    if legacy_enabled():
        return model_count_legacy(node, variables)
    manager = node.manager
    if variables is None:
        variables = manager.var_order
    mentioned = node.variables()
    missing = mentioned - set(variables)
    if missing:
        raise ValueError(f"count variables missing {sorted(missing)}")
    from ..ir import ir_kernel, obdd_to_ir
    count = ir_kernel(obdd_to_ir(node)).model_count()
    return count << (len(set(variables)) - len(mentioned))


def model_count_legacy(node: ObddNode,
                       variables: Sequence[int] | None = None) -> int:
    """The seed counting pass: one value per node, normalized to the
    variable-order tail, scaled across level gaps by shifting.

    .. deprecated:: access via :mod:`repro.compat`; kept as the
       cross-check reference and benchmark baseline.
    """
    manager = node.manager
    if variables is None:
        variables = manager.var_order
    variables = list(variables)
    positions = {v: i for i, v in enumerate(variables)}
    missing = node.variables() - set(variables)
    if missing:
        raise ValueError(f"count variables missing {sorted(missing)}")
    n = len(variables)
    # One iterative pass, one value per node: counts[id] is the model
    # count normalized to variables[pos(node.var):] (terminals to the
    # empty tail), so no (node, depth) product keys are needed — a
    # child reached from different parents is scaled into each parent's
    # scope by shifting with the level gap.
    counts: Dict[int, int] = {}

    def pos(m: ObddNode) -> int:
        return n if m.is_terminal else positions[m.var]

    for m in node.topological():
        if m.is_terminal:
            counts[m.id] = 1 if m.terminal_value else 0
        else:
            level = positions[m.var]
            low, high = m.low, m.high
            counts[m.id] = \
                (counts[low.id] << (pos(low) - level - 1)) + \
                (counts[high.id] << (pos(high) - level - 1))
    return counts[node.id] << pos(node)


def weighted_model_count(node: ObddNode, weights: Mapping[int, float],
                         variables: Sequence[int] | None = None) -> float:
    """WMC with literal weights (±v keys), skipped variables contribute
    W(v) + W(-v).

    IR-kernel backed like :func:`model_count`; the seed's span-weight
    pass survives as :func:`weighted_model_count_legacy`.
    """
    from ..compat import legacy_enabled
    if legacy_enabled():
        return weighted_model_count_legacy(node, weights, variables)
    manager = node.manager
    if variables is None:
        variables = manager.var_order
    from ..ir import ir_kernel, obdd_to_ir
    result = ir_kernel(obdd_to_ir(node)).wmc(weights)
    for var in set(variables) - node.variables():
        result *= weights[var] + weights[-var]
    return result


def weighted_model_count_legacy(node: ObddNode,
                                weights: Mapping[int, float],
                                variables: Sequence[int] | None = None
                                ) -> float:
    """The seed WMC pass (span-weight level-gap scheme).

    .. deprecated:: access via :mod:`repro.compat`; kept as the
       cross-check reference and benchmark baseline.
    """
    manager = node.manager
    if variables is None:
        variables = manager.var_order
    variables = list(variables)
    positions = {v: i for i, v in enumerate(variables)}
    n = len(variables)

    def span_weight(lo: int, hi: int) -> float:
        value = 1.0
        for i in range(lo, hi):
            var = variables[i]
            value *= weights[var] + weights[-var]
        return value

    # values[id]: WMC normalized to variables[pos(node.var):] — the
    # same single-value-per-node scheme as model_count, with gap
    # variables contributing W(v) + W(-v) factors.
    values: Dict[int, float] = {}

    def pos(m: ObddNode) -> int:
        return n if m.is_terminal else positions[m.var]

    for m in node.topological():
        if m.is_terminal:
            values[m.id] = 1.0 if m.terminal_value else 0.0
        else:
            level = positions[m.var]
            var = m.var
            low, high = m.low, m.high
            values[m.id] = (
                weights[-var] * span_weight(level + 1, pos(low))
                * values[low.id]
                + weights[var] * span_weight(level + 1, pos(high))
                * values[high.id])
    return span_weight(0, pos(node)) * values[node.id]


def enumerate_models(node: ObddNode,
                     variables: Sequence[int] | None = None
                     ) -> Iterator[Dict[int, bool]]:
    """Yield all complete models over ``variables``."""
    manager = node.manager
    if variables is None:
        variables = manager.var_order
    variables = list(variables)
    positions = {v: i for i, v in enumerate(variables)}

    def rec(n_node: ObddNode, depth: int,
            partial: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
        if n_node.is_terminal:
            if n_node.terminal_value:
                yield from _expand(partial, variables[depth:])
            return
        level = positions[n_node.var]
        for free_assignment in _expand({}, variables[depth:level]):
            base = {**partial, **free_assignment}
            for value, child in ((False, n_node.low), (True, n_node.high)):
                base[n_node.var] = value
                yield from rec(child, level + 1, dict(base))

    yield from rec(node, 0, {})


def _expand(partial: Dict[int, bool], free: List[int]
            ) -> Iterator[Dict[int, bool]]:
    if not free:
        yield dict(partial)
        return
    var, rest = free[0], free[1:]
    for value in (False, True):
        partial[var] = value
        yield from _expand(partial, rest)
    del partial[var]


def minimum_cardinality(node: ObddNode, costs: Mapping[int, float]
                        ) -> float:
    """Minimum, over models, of the sum of per-literal costs.

    ``costs`` maps literals to non-negative costs.  Returns ``inf`` for
    the zero function.  Linear in the OBDD size; this is the primitive
    behind decision robustness (cost 1 on flipped literals).
    """
    manager = node.manager
    variables = manager.var_order
    positions = {v: i for i, v in enumerate(variables)}
    n = len(variables)

    def span_cost(lo: int, hi: int) -> float:
        return sum(min(costs[variables[i]], costs[-variables[i]])
                   for i in range(lo, hi))

    # best[id]: minimum cost normalized to variables[pos(node.var):];
    # gap variables cost their cheaper literal.  Same iterative
    # per-node-normalization scheme as model_count.
    best: Dict[int, float] = {}

    def pos(m: ObddNode) -> int:
        return n if m.is_terminal else positions[m.var]

    for m in node.topological():
        if m.is_terminal:
            best[m.id] = 0.0 if m.terminal_value else float("inf")
        else:
            level = positions[m.var]
            var = m.var
            low, high = m.low, m.high
            best[m.id] = min(
                costs[-var] + span_cost(level + 1, pos(low)) + best[low.id],
                costs[var] + span_cost(level + 1, pos(high))
                + best[high.id])
    return span_cost(0, pos(node)) + best[node.id]


def compile_formula(formula: Formula, manager: ObddManager) -> ObddNode:
    """Bottom-up compilation of a formula by apply operations."""
    nnf = formula.to_nnf()

    def build(f: Formula) -> ObddNode:
        if isinstance(f, Constant):
            return manager.terminal(f.value)
        if isinstance(f, Lit):
            return manager.literal(f.literal)
        if isinstance(f, FAnd):
            return manager.conjoin_all([build(c) for c in f.children])
        if isinstance(f, FOr):
            return manager.disjoin_all([build(c) for c in f.children])
        raise TypeError(f"unexpected formula node {f!r}")

    return build(nnf)


def compile_cnf_obdd(cnf: Cnf, manager: ObddManager | None = None
                     ) -> Tuple[ObddNode, ObddManager]:
    """Compile a CNF bottom-up (clause by clause, widest clauses first
    conjoined last).  Returns (root, manager)."""
    if manager is None:
        manager = ObddManager(range(1, cnf.num_vars + 1))
    clause_nodes = [manager.disjoin_all([manager.literal(lit)
                                         for lit in clause])
                    for clause in cnf.clauses]
    clause_nodes.sort(key=lambda node: node.size())
    return manager.conjoin_all(clause_nodes), manager


def compile_nnf_obdd(root, manager: ObddManager) -> ObddNode:
    """Compile any NNF circuit into an OBDD by bottom-up apply.

    Bridges compiler output (e.g. Decision-DNNF) into the OBDD engine so
    the explanation/robustness machinery applies to it; worst-case
    exponential like any OBDD construction.
    """
    cache: Dict[int, ObddNode] = {}
    for node in root.topological():
        if node.is_literal:
            cache[node.id] = manager.literal(node.literal)
        elif node.is_true:
            cache[node.id] = manager.one
        elif node.is_false:
            cache[node.id] = manager.zero
        elif node.is_and:
            cache[node.id] = manager.conjoin_all(
                [cache[c.id] for c in node.children])
        else:
            cache[node.id] = manager.disjoin_all(
                [cache[c.id] for c in node.children])
    return cache[root.id]
