"""Reduced Ordered Binary Decision Diagrams (OBDDs).

The classic Bryant construction [7]: a fixed variable order, a unique
table guaranteeing canonicity (reduction: no node with equal children,
no duplicate nodes) and an apply cache.  OBDDs are the decision-graph
representation used throughout Section 5 of the paper (classifier
compilation, explanations, robustness) and are the special case of SDDs
with a right-linear vtree (Fig 10c, Fig 11).

All operations go through an :class:`ObddManager`; nodes from different
managers must not be mixed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, \
    Sequence, Tuple

__all__ = ["ObddManager", "ObddNode"]


class ObddNode:
    """An OBDD node.  Terminals have ``var is None``."""

    __slots__ = ("manager", "id", "var", "low", "high")

    def __init__(self, manager: "ObddManager", node_id: int,
                 var: Optional[int], low: Optional["ObddNode"],
                 high: Optional["ObddNode"]):
        self.manager = manager
        self.id = node_id
        self.var = var
        self.low = low
        self.high = high

    @property
    def is_terminal(self) -> bool:
        return self.var is None

    @property
    def terminal_value(self) -> bool:
        if not self.is_terminal:
            raise ValueError("not a terminal")
        return self is self.manager.one

    # -- operator sugar (delegates to the manager) -------------------------
    def __and__(self, other: "ObddNode") -> "ObddNode":
        return self.manager.apply_and(self, other)

    def __or__(self, other: "ObddNode") -> "ObddNode":
        return self.manager.apply_or(self, other)

    def __xor__(self, other: "ObddNode") -> "ObddNode":
        return self.manager.apply_xor(self, other)

    def __invert__(self) -> "ObddNode":
        return self.manager.negate(self)

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Follow the decision path for ``assignment``."""
        node = self
        while not node.is_terminal:
            node = node.high if assignment[node.var] else node.low
        return node.terminal_value

    def evaluate_batch(self, assignments) -> "object":
        """Evaluate N assignments in one bottom-up numpy sweep.

        ``assignments`` is either a sequence of N variable→bool maps or
        a mapping variable → length-N bool array; every reachable node
        gets one length-N row (``np.where`` on its variable's column),
        so the cost is O(nodes × N) vector ops rather than N scalar
        path walks.  Returns a length-N bool array.
        """
        import numpy as np
        if isinstance(assignments, Mapping):
            columns = dict(assignments)
            batch = len(next(iter(columns.values()))) if columns else 0
        else:
            assignments = list(assignments)
            batch = len(assignments)
            columns = {var: np.array([a[var] for a in assignments],
                                     dtype=bool)
                       for var in self.variables()}
        values: Dict[int, object] = {}
        for node in self.topological():
            if node.is_terminal:
                values[node.id] = np.full(batch, node.terminal_value,
                                          dtype=bool)
            else:
                values[node.id] = np.where(columns[node.var],
                                           values[node.high.id],
                                           values[node.low.id])
        return values[self.id]

    def nodes(self) -> List["ObddNode"]:
        """All distinct nodes reachable from here (including terminals)."""
        seen: Dict[int, ObddNode] = {}
        stack = [self]
        while stack:
            node = stack.pop()
            if node.id in seen:
                continue
            seen[node.id] = node
            if not node.is_terminal:
                stack.append(node.low)
                stack.append(node.high)
        return list(seen.values())

    def topological(self) -> List["ObddNode"]:
        """Reachable nodes, children before parents (iterative).

        The order the single-pass counting/transform kernels in
        :mod:`repro.obdd.ops` consume.
        """
        order: List[ObddNode] = []
        seen: set[int] = set()
        stack: List[Tuple[ObddNode, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if node.id in seen:
                continue
            seen.add(node.id)
            stack.append((node, True))
            if not node.is_terminal:
                if node.low.id not in seen:
                    stack.append((node.low, False))
                if node.high.id not in seen:
                    stack.append((node.high, False))
        return order

    def size(self) -> int:
        """Number of decision (non-terminal) nodes."""
        return sum(1 for n in self.nodes() if not n.is_terminal)

    def variables(self) -> frozenset[int]:
        """Variables actually tested somewhere in the diagram."""
        return frozenset(n.var for n in self.nodes() if not n.is_terminal)

    def to_ir(self):
        """Lower this diagram onto the flattened execution IR
        (:func:`repro.ir.lower.obdd_to_ir`); cached on the manager."""
        from ..ir.lower import obdd_to_ir
        return obdd_to_ir(self)

    def __repr__(self) -> str:
        if self.is_terminal:
            return f"ObddNode({'1' if self.terminal_value else '0'})"
        return f"ObddNode(var={self.var}, size={self.size()})"


class ObddManager:
    """Factory and cache for OBDD nodes over a fixed variable order."""

    def __init__(self, var_order: Sequence[int]):
        order = list(var_order)
        if len(set(order)) != len(order):
            raise ValueError("duplicate variables in order")
        if any(v <= 0 for v in order):
            raise ValueError("variables are positive integers")
        self.var_order = order
        self._level: Dict[int, int] = {v: i for i, v in enumerate(order)}
        self._next_id = 0
        self.zero = self._fresh(None, None, None)
        self.one = self._fresh(None, None, None)
        self._unique: Dict[Tuple[int, int, int], ObddNode] = {}
        self._apply_cache: Dict[Tuple, ObddNode] = {}

    def _fresh(self, var, low, high) -> ObddNode:
        node = ObddNode(self, self._next_id, var, low, high)
        self._next_id += 1
        return node

    def level(self, var: int) -> int:
        return self._level[var]

    def node_count(self) -> int:
        return len(self._unique) + 2

    # -- construction --------------------------------------------------------
    def make(self, var: int, low: ObddNode, high: ObddNode) -> ObddNode:
        """The reduced node testing ``var`` (unique-table lookup)."""
        if low is high:
            return low
        key = (self._level[var], low.id, high.id)
        node = self._unique.get(key)
        if node is None:
            node = self._fresh(var, low, high)
            self._unique[key] = node
        return node

    def terminal(self, value: bool) -> ObddNode:
        return self.one if value else self.zero

    def literal(self, literal: int) -> ObddNode:
        var = abs(literal)
        if literal > 0:
            return self.make(var, self.zero, self.one)
        return self.make(var, self.one, self.zero)

    def cube(self, literals: Sequence[int]) -> ObddNode:
        """Conjunction of literals (built directly, no apply needed)."""
        result = self.one
        for lit in sorted(literals, key=lambda l: -self._level[abs(l)]):
            var = abs(lit)
            if lit > 0:
                result = self.make(var, self.zero, result)
            else:
                result = self.make(var, result, self.zero)
        return result

    # -- apply ---------------------------------------------------------------
    def _apply(self, op: str, table: Callable[[bool, bool], bool],
               f: ObddNode, g: ObddNode) -> ObddNode:
        if f.is_terminal and g.is_terminal:
            return self.terminal(table(f.terminal_value, g.terminal_value))
        # short circuits
        if op == "and":
            if f is self.zero or g is self.zero:
                return self.zero
            if f is self.one:
                return g
            if g is self.one:
                return f
            if f is g:
                return f
        elif op == "or":
            if f is self.one or g is self.one:
                return self.one
            if f is self.zero:
                return g
            if g is self.zero:
                return f
            if f is g:
                return f
        elif op == "xor":
            if f is g:
                return self.zero
            if f is self.zero:
                return g
            if g is self.zero:
                return f
        key = (op, *sorted((f.id, g.id)))
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        f_level = self._level[f.var] if not f.is_terminal else float("inf")
        g_level = self._level[g.var] if not g.is_terminal else float("inf")
        top = min(f_level, g_level)
        var = f.var if f_level == top else g.var
        if f_level == top:
            f_low, f_high = f.low, f.high
        else:
            f_low, f_high = f, f
        if g_level == top:
            g_low, g_high = g.low, g.high
        else:
            g_low, g_high = g, g
        low = self._apply(op, table, f_low, g_low)
        high = self._apply(op, table, f_high, g_high)
        result = self.make(var, low, high)
        self._apply_cache[key] = result
        return result

    def apply_and(self, f: ObddNode, g: ObddNode) -> ObddNode:
        return self._apply("and", lambda a, b: a and b, f, g)

    def apply_or(self, f: ObddNode, g: ObddNode) -> ObddNode:
        return self._apply("or", lambda a, b: a or b, f, g)

    def apply_xor(self, f: ObddNode, g: ObddNode) -> ObddNode:
        return self._apply("xor", lambda a, b: a != b, f, g)

    def negate(self, f: ObddNode) -> ObddNode:
        return self._apply("xor", lambda a, b: a != b, f, self.one)

    def ite(self, f: ObddNode, g: ObddNode, h: ObddNode) -> ObddNode:
        """if-then-else: (f ∧ g) ∨ (¬f ∧ h)."""
        return self.apply_or(self.apply_and(f, g),
                             self.apply_and(self.negate(f), h))

    def conjoin_all(self, nodes: Sequence[ObddNode]) -> ObddNode:
        result = self.one
        for node in nodes:
            result = self.apply_and(result, node)
            if result is self.zero:
                break
        return result

    def disjoin_all(self, nodes: Sequence[ObddNode]) -> ObddNode:
        result = self.zero
        for node in nodes:
            result = self.apply_or(result, node)
            if result is self.one:
                break
        return result
