"""Reduced ordered binary decision diagrams."""

from .manager import ObddManager, ObddNode
from .ops import (compile_cnf_obdd, compile_formula, compile_nnf_obdd, compose,
                  enumerate_models, exists, flip_variable, forall,
                  minimum_cardinality, model_count, restrict,
                  weighted_model_count)
from .io import obdd_to_nnf, to_dot
from .reorder import minimize_order, obdd_size_for_order

__all__ = ["ObddManager", "ObddNode", "compile_cnf_obdd", "compile_formula",
           "compile_nnf_obdd",
           "compose", "enumerate_models", "exists", "flip_variable",
           "forall", "minimum_cardinality", "model_count", "restrict",
           "weighted_model_count", "obdd_to_nnf", "to_dot", "minimize_order",
           "obdd_size_for_order"]
