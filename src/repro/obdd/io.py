"""OBDD export: to NNF circuits (Fig 11) and to Graphviz dot."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..nnf.node import NnfManager, NnfNode
from .manager import ObddNode

__all__ = ["obdd_to_nnf", "to_dot"]


def obdd_to_nnf(node: ObddNode, manager: NnfManager | None = None
                ) -> NnfNode:
    """Convert an OBDD into the equivalent NNF circuit.

    Each decision node becomes the multiplexer fragment of Fig 11:
    ``(¬X ∧ low) ∨ (X ∧ high)`` — a Decision-DNNF (and in fact an SDD
    for the right-linear vtree over the variable order).
    """
    if manager is None:
        manager = NnfManager()
    cache: Dict[int, NnfNode] = {}
    obdd_manager = node.manager
    for n in _bottom_up(node):
        if n.is_terminal:
            cache[n.id] = manager.true() if n is obdd_manager.one \
                else manager.false()
        else:
            low = manager.conjoin(manager.literal(-n.var), cache[n.low.id])
            high = manager.conjoin(manager.literal(n.var), cache[n.high.id])
            cache[n.id] = manager.disjoin(low, high)
    return cache[node.id]


def _bottom_up(node: ObddNode) -> List[ObddNode]:
    order: List[ObddNode] = []
    seen = set()
    stack = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if expanded:
            order.append(current)
            continue
        if current.id in seen:
            continue
        seen.add(current.id)
        stack.append((current, True))
        if not current.is_terminal:
            stack.append((current.low, False))
            stack.append((current.high, False))
    return order


def to_dot(node: ObddNode, name: Callable[[int], str] = str) -> str:
    """Graphviz dot source; dashed edges are low (0) branches."""
    lines = ["digraph obdd {", "  rankdir=TB;"]
    for n in _bottom_up(node):
        if n.is_terminal:
            label = "1" if n.terminal_value else "0"
            lines.append(f'  n{n.id} [shape=box, label="{label}"];')
        else:
            lines.append(f'  n{n.id} [shape=circle, label="{name(n.var)}"];')
            lines.append(f"  n{n.id} -> n{n.low.id} [style=dashed];")
            lines.append(f"  n{n.id} -> n{n.high.id};")
    lines.append("}")
    return "\n".join(lines)
