"""Cooperative resource budgets for compilation and counting.

Compilation is worst-case exponential (Darwiche 2022, *Tractable
Boolean and Arithmetic Circuits*), so a service built on the
compile-then-query pipelines must be able to bound every compile and
count and degrade gracefully instead of hanging.  A :class:`Budget`
bundles the caps a caller wants enforced — a wall-clock deadline, a
node budget, a recursion-depth cap, a cache-size cap — and the engines
(:class:`~repro.sat.counter.ModelCounter`,
:class:`~repro.compile.dnnf_compiler.DnnfCompiler`,
:class:`~repro.sdd.manager.SddManager` apply,
:class:`~repro.sat.propagation.WatchedSolver`,
:class:`~repro.ir.kernel.IrKernel`) check it *cooperatively* at coarse
boundaries: once per search node, apply call or kernel pass, never per
literal.  An exhausted budget raises :class:`BudgetExceeded`, a
structured exception carrying the reason, the budget's counters and
whatever partial state the raising engine attached.

Budgets can be passed explicitly (``ModelCounter(budget=...)``) or
installed *ambiently* for a dynamic scope::

    with Budget(deadline_s=2.0).scope():
        root = DnnfCompiler().compile(cnf)   # governed, no plumbing

Every budget-aware engine resolves ``explicit or ambient`` via
:func:`resolve_budget`.  Ambient scopes nest (innermost wins) and are
thread-local.

The clock is injectable (``Budget(clock=...)``) which is what the
fault-injection harness (:mod:`repro.limits.faults`) uses to simulate
clock skew and deadline expiry deterministically; allocation failure at
the Nth node is injected with ``alloc_fail_at``.

Anytime callers that prefer bounds over exceptions use the non-raising
:meth:`Budget.charge` and turn exhaustion into certified lower/upper
bounds — see :mod:`repro.limits.anytime`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

__all__ = ["Budget", "BudgetExceeded", "resolve_budget",
           "pass_charge_hook"]

#: exhaustion reasons carried by :class:`BudgetExceeded`
REASON_DEADLINE = "deadline"
REASON_NODES = "nodes"
REASON_DEPTH = "recursion"
REASON_CACHE = "cache"
REASON_ALLOCATION = "allocation"

_ambient = threading.local()


class BudgetExceeded(RuntimeError):
    """A resource budget was exhausted mid-operation.

    Attributes
    ----------
    reason:
        One of ``"deadline"``, ``"nodes"``, ``"recursion"``,
        ``"cache"``, ``"allocation"``.
    budget:
        The :class:`Budget` that tripped (its counters are readable).
    partial:
        Engine-attached partial state: a dict of whatever the raising
        engine knew at the point of exhaustion (decisions made, cache
        entries, live nodes, operation counters).  Engines re-raise the
        exception after enriching this dict, so outer drivers (the
        restart driver, the CLI, the benchmark harness) can report it.
    """

    def __init__(self, reason: str, budget: "Budget",
                 partial: Optional[Dict] = None):
        self.reason = reason
        self.budget = budget
        self.partial: Dict = dict(partial or {})
        super().__init__(self._describe())

    def _describe(self) -> str:
        b = self.budget
        detail = {
            REASON_DEADLINE: lambda: f"deadline {b.deadline_s}s "
                                     f"(elapsed {b.elapsed():.3f}s)",
            REASON_NODES: lambda: f"node budget {b.max_nodes} "
                                  f"(charged {b.nodes})",
            REASON_DEPTH: lambda: f"recursion cap {b.max_depth} "
                                  f"(depth {b.depth})",
            REASON_CACHE: lambda: f"cache cap {b.max_cache_entries} "
                                  f"(entries {b.cache_entries})",
            REASON_ALLOCATION: lambda: f"injected allocation failure "
                                       f"at node {b.alloc_fail_at}",
        }[self.reason]
        return f"budget exceeded: {detail()}"

    def __str__(self) -> str:
        return self._describe()


class Budget:
    """A bundle of cooperative resource caps.

    Parameters
    ----------
    deadline_s:
        Wall-clock seconds from the first charge (or :meth:`start`).
    max_nodes:
        Cap on charged work units — search nodes for the DPLL engines,
        apply calls for the SDD manager, circuit nodes per pass for the
        IR kernel.  One budget threaded through several engines charges
        them against a single shared pool.
    max_depth:
        Recursion-depth cap (:meth:`enter` / :meth:`leave`).
    max_cache_entries:
        Cap on memo-cache insertions (:meth:`charge_cache`).
    clock:
        A zero-argument callable returning seconds; defaults to
        ``time.perf_counter``.  Injectable for fault testing
        (:mod:`repro.limits.faults`).
    alloc_fail_at:
        Fault injection: the charge that brings ``nodes`` to this value
        fails with reason ``"allocation"``, simulating an allocation
        failure at the Nth node.

    A budget is a spec plus counters.  It starts lazily on the first
    charge (so a budget built ahead of time does not burn its deadline
    while queued); :meth:`start` re-arms it explicitly, and the same
    object may be reused across sequential operations to pool their
    cost, or restarted per attempt as the restart driver does.
    """

    __slots__ = ("deadline_s", "max_nodes", "max_depth",
                 "max_cache_entries", "clock", "alloc_fail_at", "nodes",
                 "cache_entries", "depth", "_t0", "_expired_reason")

    def __init__(self, deadline_s: Optional[float] = None,
                 max_nodes: Optional[int] = None,
                 max_depth: Optional[int] = None,
                 max_cache_entries: Optional[int] = None,
                 clock: Optional[Callable[[], float]] = None,
                 alloc_fail_at: Optional[int] = None):
        for name, value in (("deadline_s", deadline_s),
                            ("max_nodes", max_nodes),
                            ("max_depth", max_depth),
                            ("max_cache_entries", max_cache_entries),
                            ("alloc_fail_at", alloc_fail_at)):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        self.deadline_s = deadline_s
        self.max_nodes = max_nodes
        self.max_depth = max_depth
        self.max_cache_entries = max_cache_entries
        self.clock = clock or time.perf_counter
        self.alloc_fail_at = alloc_fail_at
        self.nodes = 0
        self.cache_entries = 0
        self.depth = 0
        self._t0: Optional[float] = None
        self._expired_reason: Optional[str] = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "Budget":
        """(Re-)arm: stamp the deadline origin and zero the counters."""
        self.nodes = 0
        self.cache_entries = 0
        self.depth = 0
        self._t0 = self.clock()
        self._expired_reason = None
        return self

    @property
    def started(self) -> bool:
        return self._t0 is not None

    def slice(self, fraction: float) -> "Budget":
        """A fresh budget holding ``fraction`` of this one's caps.

        Deadline and node caps scale; the clock is shared so injected
        fault clocks govern the slice too.  Used to carve a request
        budget into a compile share and an anytime-fallback reserve.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"fraction must be in (0, 1], got {fraction}")
        deadline = None if self.deadline_s is None else \
            max(self.deadline_s * fraction, 1e-9)
        nodes = None if self.max_nodes is None else \
            max(int(self.max_nodes * fraction), 1)
        return Budget(deadline_s=deadline, max_nodes=nodes,
                      max_depth=self.max_depth,
                      max_cache_entries=self.max_cache_entries,
                      clock=self.clock)

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 before the first charge)."""
        return 0.0 if self._t0 is None else self.clock() - self._t0

    def remaining(self) -> Optional[float]:
        """Seconds left on the deadline (None when no deadline)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - self.elapsed()

    # -- charging ------------------------------------------------------------
    def charge(self, nodes: int = 1) -> Optional[str]:
        """Account for ``nodes`` work units; non-raising.

        Returns the exhaustion reason, or None while within budget.
        Once exhausted, every later charge keeps returning the same
        reason — anytime engines use this to bail out of the remaining
        search without re-checking the clock.
        """
        if self._expired_reason is not None:
            return self._expired_reason
        if self._t0 is None:
            self._t0 = self.clock()
        self.nodes += nodes
        if self.alloc_fail_at is not None \
                and self.nodes >= self.alloc_fail_at:
            self._expired_reason = REASON_ALLOCATION
        elif self.max_nodes is not None and self.nodes > self.max_nodes:
            self._expired_reason = REASON_NODES
        elif self.deadline_s is not None \
                and self.clock() - self._t0 > self.deadline_s:
            self._expired_reason = REASON_DEADLINE
        return self._expired_reason

    def tick(self, nodes: int = 1,
             partial: Optional[Dict] = None) -> None:
        """:meth:`charge`, raising :class:`BudgetExceeded` on exhaustion."""
        reason = self.charge(nodes)
        if reason is not None:
            raise BudgetExceeded(reason, self, partial)

    def charge_cache(self, entries: int = 1) -> None:
        """Account for memo-cache insertions; raises on the cap."""
        self.cache_entries += entries
        if self.max_cache_entries is not None \
                and self.cache_entries > self.max_cache_entries:
            self._expired_reason = REASON_CACHE
            raise BudgetExceeded(REASON_CACHE, self)

    def enter(self) -> None:
        """Track one recursion level down; raises past ``max_depth``."""
        self.depth += 1
        if self.max_depth is not None and self.depth > self.max_depth:
            self._expired_reason = REASON_DEPTH
            raise BudgetExceeded(REASON_DEPTH, self)

    def leave(self) -> None:
        self.depth -= 1

    def expired(self) -> Optional[str]:
        """The sticky exhaustion reason (None while within budget).
        Also evaluates the deadline, so pure readers see expiry without
        charging."""
        if self._expired_reason is None and self.deadline_s is not None \
                and self._t0 is not None \
                and self.clock() - self._t0 > self.deadline_s:
            self._expired_reason = REASON_DEADLINE
        return self._expired_reason

    # -- ambient scope -------------------------------------------------------
    @contextmanager
    def scope(self) -> Iterator["Budget"]:
        """Install this budget ambiently for the dynamic extent.

        Starts the budget on entry.  Every budget-aware engine invoked
        inside (without an explicit budget of its own) resolves and
        charges it; scopes nest, innermost wins.
        """
        stack = getattr(_ambient, "stack", None)
        if stack is None:
            stack = _ambient.stack = []
        stack.append(self.start())
        try:
            yield self
        finally:
            stack.pop()

    @staticmethod
    def ambient() -> Optional["Budget"]:
        """The innermost ambient budget of this thread, or None."""
        stack = getattr(_ambient, "stack", None)
        return stack[-1] if stack else None

    def as_dict(self) -> Dict:
        """JSON-friendly snapshot of the spec and counters."""
        return {
            "deadline_s": self.deadline_s,
            "max_nodes": self.max_nodes,
            "max_depth": self.max_depth,
            "max_cache_entries": self.max_cache_entries,
            "nodes": self.nodes,
            "cache_entries": self.cache_entries,
            "elapsed_s": round(self.elapsed(), 6),
            "expired": self._expired_reason,
        }

    def __repr__(self) -> str:
        caps = ", ".join(f"{k}={v}" for k, v in (
            ("deadline_s", self.deadline_s), ("max_nodes", self.max_nodes),
            ("max_depth", self.max_depth),
            ("max_cache_entries", self.max_cache_entries)) if v is not None)
        return f"Budget({caps or 'unlimited'}, nodes={self.nodes})"


def resolve_budget(budget: Optional[Budget]) -> Optional[Budget]:
    """``budget`` when given, else the ambient budget, else None."""
    return budget if budget is not None else Budget.ambient()


def pass_charge_hook(owner: object, n: int) -> Callable[[int], None]:
    """A pass-count charging callback for generated evaluator code.

    Compiled evaluators (:mod:`repro.ir.codegen`) run outside the
    interpreter's per-query loop, but they must not escape the
    governor: each generated forward pass calls the returned hook once
    before touching the arrays, charging ``passes`` circuit sweeps of
    ``n`` nodes against ``owner.budget`` — re-read *per call*, with the
    usual explicit-or-ambient resolution — and raising
    :class:`BudgetExceeded` on exhaustion exactly like the
    interpreter's own charge.
    """

    def _charge(passes: int = 1) -> None:
        budget = resolve_budget(getattr(owner, "budget", None))
        if budget is not None:
            budget.tick(passes * n,
                        partial={"operation": "kernel-pass",
                                 "circuit_nodes": n})

    return _charge
