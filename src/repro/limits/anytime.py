"""Anytime #SAT / WMC: certified bounds from a partial decomposition.

Darwiche, *On the Tractable Counting of Theory Models* (2000): a
partial decomposition of a CNF still yields sound model-count bounds.
This module is that idea as a graceful-degradation mode — the same
trail-based component search the exact engines run, except every
recursive result is an *interval* ``(lower, upper)``:

* a conflict contributes ``(0, 0)``; a fully satisfied scope ``(1, 1)``
  (times the free-variable factor);
* independent components multiply intervals, disjoint decision
  branches add them, free variables scale both ends by ``2`` (or
  ``W(v) + W(-v)`` in the weighted case);
* when the budget expires, every not-yet-expanded component resolves
  *immediately* to the trivial interval ``(0, full(vars))`` — the
  search unwinds without further decisions and the partial
  decomposition explored so far becomes the result.

Interval arithmetic preserves bracketing at every rule, so for any
budget the returned interval contains the exact count; with no budget
(or one that never expires) the interval is a point and equals the
exact count.  The weighted variant requires non-negative literal
weights (the usual WMC setting) — soundness of the trivial upper bound
``Π (W(v) + W(-v))`` depends on it.

Exhaustion is detected with the non-raising :meth:`Budget.charge`, so
injected faults (deadline skew, allocation failure at the Nth node —
see :mod:`repro.limits.faults`) degrade into wider bounds instead of
crashing the query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..logic.cnf import Cnf
from ..sat.components import trail_components
from ..sat.propagation import TrailPropagator
from .budget import Budget, resolve_budget

__all__ = ["AnytimeResult", "anytime_count", "anytime_wmc"]

Clause = Tuple[int, ...]


@dataclass
class AnytimeResult:
    """Outcome of an anytime count: ``lower <= exact <= upper``.

    ``reason`` is None when the search completed (the interval is then
    a point equal to the exact count) and the budget-exhaustion reason
    otherwise.  Counts are ints for :func:`anytime_count`, floats for
    :func:`anytime_wmc`.
    """

    lower: float
    upper: float
    reason: Optional[str]
    decisions: int
    nodes: int
    elapsed_s: float

    @property
    def exact(self) -> bool:
        return self.lower == self.upper

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def as_dict(self) -> Dict:
        return {"lower": str(self.lower), "upper": str(self.upper),
                "exact": self.exact, "reason": self.reason,
                "decisions": self.decisions, "nodes": self.nodes,
                "elapsed_s": round(self.elapsed_s, 6)}


class _IntervalSearch:
    """One anytime run: trail-based component search over intervals."""

    def __init__(self, clauses: List[Clause], num_vars: int,
                 weights: Optional[Mapping[int, float]],
                 budget: Optional[Budget]):
        self.clauses = clauses
        self.num_vars = num_vars
        self.weights = weights
        self.budget = budget
        self.reason: Optional[str] = None
        self.decisions = 0
        self.nodes = 0
        # cache only point intervals: they are exact component counts
        # (a bailed subtree never produces one unless its upper bound
        # is 0, which is exact too)
        self.cache: Dict[Tuple, object] = {}
        self.one = 1 if weights is None else 1.0
        self.zero = 0 if weights is None else 0.0
        self.engine = TrailPropagator(
            clauses, max((abs(lit) for c in clauses for lit in c),
                         default=0))

    # -- weight strategy -----------------------------------------------------
    def _full(self, variables):
        """Total mass of an unconstrained scope: 2 (or W(v)+W(-v)) per
        variable — the trivial upper bound of an unexplored component
        and the exact factor of a free one."""
        if self.weights is None:
            return 1 << len(variables)
        total = 1.0
        weights = self.weights
        for var in variables:
            total *= weights[var] + weights[-var]
        return total

    def _term(self, literals: Iterable[int]):
        """Weight of a conjunction of assigned literals (1 unweighted)."""
        if self.weights is None:
            return 1
        value = 1.0
        weights = self.weights
        for lit in literals:
            value *= weights[lit]
        return value

    # -- search --------------------------------------------------------------
    def run(self) -> Tuple[object, object]:
        if any(len(c) == 0 for c in self.clauses):
            return self.zero, self.zero
        mentioned = {abs(lit) for c in self.clauses for lit in c}
        unmentioned = [v for v in range(1, self.num_vars + 1)
                       if v not in mentioned]
        engine = self.engine
        if not engine.assert_root():
            return self.zero, self.zero
        prefix = self._term(engine.trail) * self._full(unmentioned)
        scope = mentioned - {abs(lit) for lit in engine.trail}
        lo, hi = self._parts(range(len(self.clauses)), scope)
        return prefix * lo, prefix * hi

    def _parts(self, indices, scope: Set[int]) -> Tuple[object, object]:
        components, occ = trail_components(self.clauses, indices,
                                           self.engine.values, True)
        lo = hi = self.one
        counted: Set[int] = set()
        for comp_indices, comp_vars in components:
            counted.update(comp_vars)
            clo, chi = self._component(comp_indices, comp_vars, occ)
            lo *= clo
            hi *= chi
            if hi == 0:  # upper bound 0 is exact: no models here
                return self.zero, self.zero
        factor = self._full(scope - counted)
        return lo * factor, hi * factor

    def _component(self, comp_indices: List[int], comp_vars: List[int],
                   occ) -> Tuple[object, object]:
        budget = self.budget
        if budget is not None:
            reason = budget.charge(1)
            if reason is not None:
                # out of budget: this component stays unexplored and
                # contributes the trivial (still sound) interval
                self.reason = reason
                return self.zero, self._full(comp_vars)
        self.nodes += 1
        key = (tuple(comp_indices), tuple(sorted(comp_vars)))
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        var = max(comp_vars, key=lambda v: (len(occ[v]), -v))
        self.decisions += 1
        comp_set = set(comp_vars)
        engine = self.engine
        lo = hi = self.zero
        for value in (False, True):
            literal = var if value else -var
            mark = len(engine.trail)
            if engine.condition(literal):
                # propagation stays inside the component, so the trail
                # delta is exactly the component variables decided here
                assigned = engine.trail[mark:]
                term = self._term(assigned)
                sub_scope = comp_set - {abs(lit) for lit in assigned}
                slo, shi = self._parts(comp_indices, sub_scope)
                lo += term * slo
                hi += term * shi
            engine.undo_to(mark)
        if lo == hi:
            self.cache[key] = (lo, hi)
        return lo, hi


def _run(cnf: Cnf, weights: Optional[Mapping[int, float]],
         budget: Optional[Budget]) -> AnytimeResult:
    budget = resolve_budget(budget)
    if weights is not None:
        for var in range(1, cnf.num_vars + 1):
            if weights[var] < 0 or weights[-var] < 0:
                raise ValueError(
                    f"anytime WMC needs non-negative weights; "
                    f"variable {var} has a negative one")
    start = time.perf_counter()
    search = _IntervalSearch(list(cnf.clauses), cnf.num_vars, weights,
                             budget)
    lower, upper = search.run()
    return AnytimeResult(lower=lower, upper=upper, reason=search.reason,
                         decisions=search.decisions, nodes=search.nodes,
                         elapsed_s=time.perf_counter() - start)


def anytime_count(cnf: Cnf,
                  budget: Optional[Budget] = None) -> AnytimeResult:
    """Model count of ``cnf`` over variables 1..num_vars as a certified
    interval: exact when the budget (explicit, else ambient, else
    unlimited) survives the search, sound bounds otherwise."""
    return _run(cnf, None, budget)


def anytime_wmc(cnf: Cnf, weights: Mapping[int, float],
                budget: Optional[Budget] = None) -> AnytimeResult:
    """Weighted model count as a certified interval.

    ``weights`` maps every literal ±v (v in 1..num_vars) to a
    non-negative weight.
    """
    return _run(cnf, weights, budget)
