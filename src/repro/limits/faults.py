"""Fault injection for the resource-governance layer.

The robustness claims (queries degrade, never crash) are only worth as
much as the faults they were tested against, so the harness makes the
failure modes injectable and deterministic:

* **clock faults** — :class:`FakeClock` (time moves only when the test
  says so) and :class:`SkewedClock` (a real clock with a constant
  offset and/or rate skew, plus one-shot jumps).  Plugged into
  ``Budget(clock=...)``, they let tests hit deadline expiry at an exact
  point in the search, or simulate NTP-style time jumps mid-operation.
* **cache corruption** — :func:`corrupt_artifact` truncates, garbles or
  empties a stored artifact in place, exercising the store's
  quarantine path (``*.corrupt`` rename + ``artifact_corrupt`` stat);
  :func:`mutate_artifact` is the nastier cousin: it keeps the file
  *parseable* but semantically wrong (a flipped literal, a dropped
  smoothing gate), exercising the serve-time certification path
  (``artifact_cert_fail`` + quarantine on a falsified property).
* **trace forgery** — :func:`mutate_trace` tampers with a ``.proof``
  equivalence trace while keeping it superficially well-formed (a
  dropped search step, a forged cache back-reference, swapped
  component clause sets): every mode must be caught by the
  independent checker (:func:`repro.proof.check_proof`) as a
  ``REFUTED`` verdict — the adversarial half of the proof-logging
  design.
* **allocation failure** — ``Budget(alloc_fail_at=N)`` makes the Nth
  charged node fail with reason ``"allocation"``, simulating an
  allocator giving out at an arbitrary point; :func:`failing_budget` is
  the one-line spelling.

Everything here is deterministic: no randomness, no real waiting.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional

from .budget import Budget

__all__ = ["FakeClock", "SkewedClock", "corrupt_artifact",
           "mutate_artifact", "mutate_trace", "failing_budget"]

#: corruption modes understood by :func:`corrupt_artifact`
CORRUPT_MODES = ("truncate", "garbage", "empty")

#: mutation modes understood by :func:`mutate_artifact`
MUTATE_MODES = ("flip-literal", "drop-smooth")

#: trace-forgery modes understood by :func:`mutate_trace`
TRACE_MODES = ("drop-step", "forge-cache-ref", "swap-component")


class FakeClock:
    """A manually advanced clock: ``clock()`` returns the set time.

    >>> clock = FakeClock()
    >>> budget = Budget(deadline_s=5.0, clock=clock)
    >>> budget.charge()          # arms the deadline at t=0
    >>> clock.advance(6.0)       # six "seconds" pass instantly
    >>> budget.charge()
    'deadline'
    """

    def __init__(self, now: float = 0.0):
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> "FakeClock":
        if seconds < 0:
            raise ValueError("time only moves forward; "
                             "use jump() on SkewedClock for steps")
        self.now += seconds
        return self


class SkewedClock:
    """A real clock with injected skew: ``offset + rate * real``.

    ``rate > 1`` makes deadlines fire early (the governed code believes
    more time has passed than really has); ``jump()`` adds a one-shot
    step, simulating an NTP correction landing mid-operation.
    """

    def __init__(self, offset: float = 0.0, rate: float = 1.0,
                 base: Optional[object] = None):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.offset = float(offset)
        self.rate = float(rate)
        self.base = base or time.perf_counter

    def __call__(self) -> float:
        return self.offset + self.rate * self.base()

    def jump(self, seconds: float) -> "SkewedClock":
        """Step the reported time by ``seconds`` (may be negative)."""
        self.offset += seconds
        return self


def corrupt_artifact(store, key: str, ext: str,
                     mode: str = "truncate") -> Path:
    """Corrupt the stored artifact ``<key>.<ext>`` in place.

    Modes: ``"truncate"`` keeps roughly the first half of the file
    (a partial write / killed process), ``"garbage"`` replaces the
    content with non-format bytes (bit rot, wrong file), ``"empty"``
    zeroes it.  Operates on raw bytes, so binary sidecars (the
    store's ``.csr`` CSR twin) corrupt exactly like text artifacts.
    Returns the corrupted path; raises ``FileNotFoundError`` if the
    artifact does not exist.
    """
    if mode not in CORRUPT_MODES:
        raise ValueError(f"unknown corruption mode {mode!r}; "
                         f"expected one of {CORRUPT_MODES}")
    path = store.path_for(key, ext)
    blob = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(blob[:max(1, len(blob) // 2)])
    elif mode == "garbage":
        path.write_bytes(b"!! this is not a circuit !!\n%\x00garbage\n")
    else:  # empty
        path.write_bytes(b"")
    return path


def mutate_artifact(store, key: str, ext: str = "nnf",
                    mode: str = "flip-literal", index: int = 0) -> Path:
    """Mutate a stored artifact so it stays *parseable* but wrong.

    ``corrupt_artifact`` produces files the parser rejects; this
    produces files the parser happily accepts whose semantics no
    longer match the claimed properties — the class of fault only
    serve-time certification can catch.  Modes:

    * ``"flip-literal"`` — negate the ``index``-th literal line
      (``L l`` in ``.nnf``, ``L id vtree lit`` in ``.sdd``): the
      circuit computes a different function, typically breaking
      determinism or the SDD's (X,Y)-partition discipline;
    * ``"drop-smooth"`` — replace the first ``(v or -v)`` smoothing
      gate of an ``.nnf`` with ⊤ (``A 0``): logically equivalent, but
      the or-gate arm no longer mentions ``v``, so a claimed SMOOTH
      flag is falsified.

    Raises ``ValueError`` when the file has no line matching the
    mode's pattern.  The ``.cert`` sidecar is deliberately left in
    place: its content hash no longer matches, which is exactly the
    re-certification path under test.
    """
    if mode not in MUTATE_MODES:
        raise ValueError(f"unknown mutation mode {mode!r}; "
                         f"expected one of {MUTATE_MODES}")
    path = store.path_for(key, ext)
    lines = path.read_text().splitlines()
    if mode == "flip-literal":
        seen = 0
        for i, line in enumerate(lines):
            parts = line.split()
            if not parts or parts[0] != "L":
                continue
            if seen == index:
                parts[-1] = str(-int(parts[-1]))
                lines[i] = " ".join(parts)
                break
            seen += 1
        else:
            raise ValueError(f"no literal line of index {index} "
                             f"in {path.name}")
    else:  # drop-smooth
        literals = {}
        node = -1
        target = None
        for i, line in enumerate(lines):
            parts = line.split()
            if not parts or parts[0] == "c" or parts[0] == "nnf":
                continue
            node += 1
            if parts[0] == "L":
                literals[node] = int(parts[1])
            elif parts[0] == "O" and len(parts) == 5 and \
                    parts[2] == "2":
                a, b = int(parts[3]), int(parts[4])
                if literals.get(a) is not None and \
                        literals.get(a) == -literals.get(b, 0):
                    target = i
                    break
        if target is None:
            raise ValueError(f"no (v or -v) smoothing gate "
                             f"in {path.name}")
        lines[target] = "A 0"
    path.write_text("\n".join(lines) + "\n")
    return path


def mutate_trace(trace: str, mode: str = "drop-step",
                 index: int = 0) -> str:
    """Forge a ``repro-proof/1`` equivalence trace (text in → text
    out; callers rewrite the ``.proof`` sidecar themselves when
    testing the store path).

    Every mode keeps the trace line-oriented and superficially
    plausible — the point is that the *checker's replay*, not a
    surface syntax check, must reject it:

    * ``"drop-step"`` — delete the ``index``-th body line, simulating
      a compiler that skipped logging a search step (the fixed-arity
      grammar makes any deletion break the parse or a downstream
      semantic check);
    * ``"forge-cache-ref"`` — point a cache back-reference (``h``) at
      a component that was never proved (ref pushed out of range), or
      forge the first fresh component (``k``) into such a reference
      when the trace has no ``h`` line;
    * ``"swap-component"`` — exchange the clause-id payloads of the
      first two fresh-component (``k``) lines, or drop a clause id
      from the first one when there is only one: the partition no
      longer covers/disjoints the way the checker re-derives it.

    Raises ``ValueError`` on an unknown mode or a trace too small to
    carry the forgery (no body lines, say).
    """
    if mode not in TRACE_MODES:
        raise ValueError(f"unknown trace mutation {mode!r}; "
                         f"expected one of {TRACE_MODES}")
    lines = trace.splitlines()
    body = [i for i, line in enumerate(lines[5:], start=5)
            if line.strip()]
    if not body:
        raise ValueError("trace has no body lines to mutate")
    if mode == "drop-step":
        if index >= len(body):
            raise ValueError(f"trace has only {len(body)} body lines")
        del lines[body[index]]
    elif mode == "forge-cache-ref":
        for i in body:
            parts = lines[i].split()
            if parts[0] == "h":
                parts[1] = str(10 ** 9 + int(parts[1]))
                lines[i] = " ".join(parts)
                break
        else:
            for i in body:
                parts = lines[i].split()
                if parts[0] == "k":
                    lines[i] = " ".join(["h", "0"] + parts[1:])
                    break
            else:
                raise ValueError("trace has no component lines "
                                 "to forge")
    else:  # swap-component
        comps = [i for i in body if lines[i].split()[0] == "k"]
        if len(comps) >= 2:
            a, b = comps[0], comps[1]
            pa, pb = lines[a].split(), lines[b].split()
            lines[a] = " ".join([pa[0]] + pb[1:])
            lines[b] = " ".join([pb[0]] + pa[1:])
        elif comps:
            parts = lines[comps[0]].split()
            if len(parts) <= 3:  # "k id 0" — nothing left to drop
                raise ValueError("component too small to mutate")
            lines[comps[0]] = " ".join(parts[:-2] + [parts[-1]])
        else:
            raise ValueError("trace has no component lines to swap")
    return "\n".join(lines) + "\n"


def failing_budget(fail_at: int, **caps) -> Budget:
    """A budget whose ``fail_at``-th charged node raises with reason
    ``"allocation"`` — simulated allocation failure at the Nth node."""
    return Budget(alloc_fail_at=fail_at, **caps)
