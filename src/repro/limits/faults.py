"""Fault injection for the resource-governance layer.

The robustness claims (queries degrade, never crash) are only worth as
much as the faults they were tested against, so the harness makes the
failure modes injectable and deterministic:

* **clock faults** — :class:`FakeClock` (time moves only when the test
  says so) and :class:`SkewedClock` (a real clock with a constant
  offset and/or rate skew, plus one-shot jumps).  Plugged into
  ``Budget(clock=...)``, they let tests hit deadline expiry at an exact
  point in the search, or simulate NTP-style time jumps mid-operation.
* **cache corruption** — :func:`corrupt_artifact` truncates, garbles or
  empties a stored artifact in place, exercising the store's
  quarantine path (``*.corrupt`` rename + ``artifact_corrupt`` stat).
* **allocation failure** — ``Budget(alloc_fail_at=N)`` makes the Nth
  charged node fail with reason ``"allocation"``, simulating an
  allocator giving out at an arbitrary point; :func:`failing_budget` is
  the one-line spelling.

Everything here is deterministic: no randomness, no real waiting.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional

from .budget import Budget

__all__ = ["FakeClock", "SkewedClock", "corrupt_artifact",
           "failing_budget"]

#: corruption modes understood by :func:`corrupt_artifact`
CORRUPT_MODES = ("truncate", "garbage", "empty")


class FakeClock:
    """A manually advanced clock: ``clock()`` returns the set time.

    >>> clock = FakeClock()
    >>> budget = Budget(deadline_s=5.0, clock=clock)
    >>> budget.charge()          # arms the deadline at t=0
    >>> clock.advance(6.0)       # six "seconds" pass instantly
    >>> budget.charge()
    'deadline'
    """

    def __init__(self, now: float = 0.0):
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> "FakeClock":
        if seconds < 0:
            raise ValueError("time only moves forward; "
                             "use jump() on SkewedClock for steps")
        self.now += seconds
        return self


class SkewedClock:
    """A real clock with injected skew: ``offset + rate * real``.

    ``rate > 1`` makes deadlines fire early (the governed code believes
    more time has passed than really has); ``jump()`` adds a one-shot
    step, simulating an NTP correction landing mid-operation.
    """

    def __init__(self, offset: float = 0.0, rate: float = 1.0,
                 base: Optional[object] = None):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.offset = float(offset)
        self.rate = float(rate)
        self.base = base or time.perf_counter

    def __call__(self) -> float:
        return self.offset + self.rate * self.base()

    def jump(self, seconds: float) -> "SkewedClock":
        """Step the reported time by ``seconds`` (may be negative)."""
        self.offset += seconds
        return self


def corrupt_artifact(store, key: str, ext: str,
                     mode: str = "truncate") -> Path:
    """Corrupt the stored artifact ``<key>.<ext>`` in place.

    Modes: ``"truncate"`` keeps roughly the first half of the file
    (a partial write / killed process), ``"garbage"`` replaces the
    content with non-format bytes (bit rot, wrong file), ``"empty"``
    zeroes it.  Returns the corrupted path; raises ``FileNotFoundError``
    if the artifact does not exist.
    """
    if mode not in CORRUPT_MODES:
        raise ValueError(f"unknown corruption mode {mode!r}; "
                         f"expected one of {CORRUPT_MODES}")
    path = store.path_for(key, ext)
    text = path.read_text()
    if mode == "truncate":
        path.write_text(text[:max(1, len(text) // 2)])
    elif mode == "garbage":
        path.write_text("!! this is not a circuit !!\n%\x00garbage\n")
    else:  # empty
        path.write_text("")
    return path


def failing_budget(fail_at: int, **caps) -> Budget:
    """A budget whose ``fail_at``-th charged node raises with reason
    ``"allocation"`` — simulated allocation failure at the Nth node."""
    return Budget(alloc_fail_at=fail_at, **caps)
