"""Retry-with-restarts compilation driver.

Compiled circuit size is notoriously sensitive to the variable order
(Decision-DNNF) or vtree (SDD): the same CNF can be trivial under one
order and exponential under another.  The driver turns that variance
into robustness — run the compiler under a per-attempt
:class:`~repro.limits.budget.Budget`, and on
:class:`~repro.limits.budget.BudgetExceeded` restart with a *different*
variable order / vtree and an exponentially larger budget::

    result = compile_with_restarts(cnf, max_nodes=2_000, attempts=5)
    result.root          # the compiled circuit
    result.attempts      # one record per attempt (strategy, outcome)

Attempt 0 uses the compiler's default strategy (dynamic occurrence
heuristic for Decision-DNNF, balanced vtree for SDD); later attempts
draw seeded random orders / vtrees.  With ``keep_smallest=True`` every
attempt runs and the smallest successful circuit wins — the classic
portfolio mode; by default the first success returns.

If every attempt exhausts its budget the last ``BudgetExceeded`` is
re-raised with the attempt records in ``partial["attempts"]``, so the
caller still sees the full story (the CLI prints it; the anytime
counter is the degradation path when even that is unacceptable).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..logic.cnf import Cnf
from .budget import Budget, BudgetExceeded

__all__ = ["RestartResult", "compile_with_restarts"]


@dataclass
class RestartResult:
    """Outcome of a restart-driven compilation.

    ``root`` is an :class:`~repro.nnf.node.NnfNode` for
    ``format="nnf"`` and an :class:`~repro.sdd.node.SddNode` for
    ``format="sdd"`` (with ``manager`` set).  ``attempts`` holds one
    record per attempt run; ``winner`` indexes the attempt that
    produced ``root``.
    """

    root: object
    format: str
    winner: int
    size: int
    manager: object = None
    attempts: List[Dict] = field(default_factory=list)
    #: pass-pipeline audit trail of the winning attempt (minimize mode)
    optimize: Optional[Dict] = None
    #: Tseitin auxiliaries forgotten by the winning pipeline — exclude
    #: from count widening (the 2^k correction)
    forgotten_vars: frozenset = frozenset()


def _scaled(base: Optional[float], backoff: float, attempt: int,
            integer: bool = False) -> Optional[float]:
    if base is None:
        return None
    value = base * backoff ** attempt
    return max(1, int(value)) if integer else value


def compile_with_restarts(cnf: Cnf, *, format: str = "nnf",
                          attempts: int = 4,
                          deadline_s: Optional[float] = None,
                          max_nodes: Optional[int] = None,
                          backoff: float = 2.0, seed: int = 0,
                          store=None, keep_smallest: bool = False,
                          clock=None, minimize: bool = False,
                          passes=None) -> RestartResult:
    """Compile ``cnf`` with budgeted restarts over diversified strategies.

    Parameters
    ----------
    format:
        ``"nnf"`` (Decision-DNNF via :class:`DnnfCompiler`, varying the
        priority variable order) or ``"sdd"`` (via
        :func:`compile_cnf_sdd`, varying the vtree).
    attempts:
        Maximum number of attempts.
    deadline_s / max_nodes:
        Attempt-0 budget; attempt ``i`` gets ``backoff ** i`` times as
        much.  Both None means unbudgeted attempts (the driver then
        only adds strategy diversity).
    seed:
        Seeds the per-attempt random orders/vtrees (deterministic).
    store:
        Optional :class:`~repro.ir.store.ArtifactStore`; strategies
        key their artifacts independently, so a re-run is served warm.
    keep_smallest:
        Run every attempt and keep the smallest successful circuit
        instead of returning on the first success.
    clock:
        Forwarded to each attempt's :class:`Budget` (fault injection).
    minimize:
        Order/vtree-diversified keep-smallest minimization: forces
        ``keep_smallest`` (every attempt runs) and, for ``"nnf"``,
        additionally runs the certification-gated
        :mod:`repro.ir.passes` pipeline (``passes``, default pipeline
        when None) on each successful attempt — attempts compete on
        their *optimized* node counts and the winner's optimized
        circuit is returned, with the pipeline audit in
        ``result.optimize`` and forgotten Tseitin auxiliaries in
        ``result.forgotten_vars``.  For ``"sdd"`` the vtree
        diversification itself is the minimization.
    """
    if format not in ("nnf", "sdd"):
        raise ValueError(f"unknown format {format!r}")
    if attempts < 1:
        raise ValueError("need at least one attempt")
    keep_smallest = keep_smallest or minimize
    records: List[Dict] = []
    best = None  # (size, attempt index, root, manager, optimize info)
    last_error: Optional[BudgetExceeded] = None
    for attempt in range(attempts):
        budget = Budget(
            deadline_s=_scaled(deadline_s, backoff, attempt),
            max_nodes=_scaled(max_nodes, backoff, attempt, integer=True),
            clock=clock)
        rng = random.Random((seed, attempt).__hash__())
        record: Dict = {"attempt": attempt,
                        "budget": {"deadline_s": budget.deadline_s,
                                   "max_nodes": budget.max_nodes}}
        start = time.perf_counter()
        try:
            if format == "nnf":
                root, manager, strategy = _attempt_nnf(
                    cnf, attempt, rng, budget, store)
                size = root.node_count()
            else:
                root, manager, strategy = _attempt_sdd(
                    cnf, attempt, rng, budget, store)
                size = root.size()
        except BudgetExceeded as error:
            record.update(strategy=error.partial.get("strategy"),
                          outcome=f"budget:{error.reason}",
                          elapsed_s=round(time.perf_counter() - start, 4))
            records.append(record)
            last_error = error
            continue
        optimize_info = None
        if minimize and format == "nnf":
            root, size, optimize_info = _minimize_nnf(
                cnf, root, passes, seed)
            record["optimized_size"] = size
        record.update(strategy=strategy, outcome="ok", size=size,
                      elapsed_s=round(time.perf_counter() - start, 4))
        records.append(record)
        if best is None or size < best[0]:
            best = (size, attempt, root, manager, optimize_info)
        if not keep_smallest:
            break
    if best is None:
        assert last_error is not None
        last_error.partial["attempts"] = records
        raise last_error
    size, winner, root, manager, optimize_info = best
    forgotten = frozenset(
        (optimize_info or {}).get("forgotten_vars", ()))
    return RestartResult(root=root, format=format, winner=winner,
                         size=size, manager=manager, attempts=records,
                         optimize=optimize_info,
                         forgotten_vars=forgotten)


def _minimize_nnf(cnf: Cnf, root, passes, seed: int):
    """Run the pass pipeline on one successful attempt's circuit.
    Returns (possibly optimized root, node count, audit dict)."""
    from ..ir.core import FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC
    from ..ir.lower import ir_to_nnf, nnf_to_ir
    from ..ir.passes import PassManager
    ir = nnf_to_ir(root, flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC)
    manager = PassManager(passes, aux_vars=cnf.aux_vars, seed=seed)
    result = manager.run(ir)
    if not result.changed:
        return root, ir.n, result.as_wire()
    return ir_to_nnf(result.ir), result.ir.n, result.as_wire()


def _attempt_nnf(cnf: Cnf, attempt: int, rng: random.Random,
                 budget: Budget, store):
    from ..compile.dnnf_compiler import DnnfCompiler
    if attempt == 0:
        priority, strategy = None, "default-heuristic"
    else:
        priority = list(range(1, cnf.num_vars + 1))
        rng.shuffle(priority)
        strategy = f"random-order-{attempt}"
    compiler = DnnfCompiler(priority=priority, store=store,
                            budget=budget)
    try:
        return compiler.compile(cnf), None, strategy
    except BudgetExceeded as error:
        error.partial.setdefault("strategy", strategy)
        raise


def _attempt_sdd(cnf: Cnf, attempt: int, rng: random.Random,
                 budget: Budget, store):
    from ..sdd.compiler import compile_cnf_sdd
    from ..vtree.construct import (balanced_vtree, random_vtree,
                                   right_linear_vtree)
    if cnf.num_vars == 0:
        raise ValueError("cannot build a vtree with no variables")
    variables = range(1, cnf.num_vars + 1)
    if attempt == 0:
        vtree, strategy = balanced_vtree(variables), "balanced-vtree"
    elif attempt == 1:
        vtree, strategy = (right_linear_vtree(variables),
                           "right-linear-vtree")
    else:
        vtree, strategy = (random_vtree(variables, rng),
                           f"random-vtree-{attempt}")
    try:
        root, manager = compile_cnf_sdd(cnf, vtree=vtree, store=store,
                                        budget=budget)
        return root, manager, strategy
    except BudgetExceeded as error:
        error.partial.setdefault("strategy", strategy)
        raise
