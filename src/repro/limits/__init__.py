"""Resource governance: budgets, anytime bounds, restarts, faults.

The robustness layer for the compile-then-query pipelines (ROADMAP:
graceful under every scenario).  :class:`Budget` bounds any compile or
count with deadlines and node/recursion/cache caps, enforced
cooperatively by the engines and surfaced as structured
:class:`BudgetExceeded`.  On top of it:

* :func:`anytime_count` / :func:`anytime_wmc` — certified lower/upper
  bounds from the partial decomposition when the budget expires
  (Darwiche 2000);
* :func:`compile_with_restarts` — budgeted attempts over diversified
  variable orders / vtrees with exponential backoff;
* :mod:`repro.limits.faults` — deterministic fault injection (clock
  skew, cache corruption, allocation failure) for the tests.
"""

from .anytime import AnytimeResult, anytime_count, anytime_wmc
from .budget import Budget, BudgetExceeded, resolve_budget
from .faults import (FakeClock, SkewedClock, corrupt_artifact,
                     failing_budget, mutate_artifact)
from .restarts import RestartResult, compile_with_restarts

__all__ = [
    "AnytimeResult", "Budget", "BudgetExceeded", "FakeClock",
    "RestartResult", "SkewedClock", "anytime_count", "anytime_wmc",
    "compile_with_restarts", "corrupt_artifact", "failing_budget",
    "mutate_artifact", "resolve_budget",
]
