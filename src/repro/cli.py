"""Command-line interface: ``python -m repro <command>``.

Mirrors the classic knowledge-compiler workflow (C2D/DSHARP-style):

* ``count FILE.cnf`` — exact model count (d-DNNF based);
* ``sat FILE.cnf`` — satisfiability;
* ``compile FILE.cnf [-o out.nnf] [--format nnf|sdd]`` — compile to
  canonical circuit files (c2d ``.nnf``, or libsdd ``.sdd`` +
  ``.vtree``), optionally through the content-addressed artifact
  store (``--cache-dir``, or ``$REPRO_CACHE_DIR``);
* ``query FILE.cnf --query count|sat|wmc|mpe|marginals`` — compile
  (store-backed) and answer a query in one call;
* ``sdd FILE.cnf [--vtree balanced|right-linear|left-linear]`` —
  compile to an SDD and report size statistics;
* ``enumerate FILE.cnf [--limit N]`` — print models;
* ``explain FILE.cnf --instance "1,-2,3" [--all|--smallest|--limit
  N]`` — compile and enumerate the sufficient reasons (prime
  implicants) of the decision on the instance; under ``--timeout`` /
  ``--max-nodes`` the enumeration degrades to the reasons found so
  far (``c partial`` + exit code 3) instead of failing;
* ``check FILE.nnf|FILE.sdd [--expect PROPS]`` — statically verify the
  tractability properties of a circuit file (exit code 4 plus
  ``c witness`` diagnostics naming the offending node on violation);
  with ``--proof``, FILE is a DIMACS CNF and the independent checker
  replays its stored (or ``--trace``) equivalence trace instead —
  ``s PROVED`` on success, exit code 5 on ``s REFUTED``;
* ``optimize FILE.nnf|FILE.cnf [--passes P1,P2]`` — shrink a circuit
  through the certified optimization pass pipeline
  (``docs/optimization.md``); ``compile --optimize`` and
  ``query --optimize`` run the same pipeline inline;
* ``cache gc [--max-age-days N] [--dry-run]`` — sweep the artifact
  store for orphaned sidecars and stale quarantines;
* ``serve [--port N --workers N --cache-dir DIR]`` — run the
  compile/query HTTP service (``docs/serving.md``);
* ``bench-load --port N`` — drive a duplicate-heavy load burst at a
  running ``serve`` and print the latency/hit-rate report.

``query --gate strict|repair|trust|proved`` selects the property gate
mode (default ``$REPRO_GATE`` or ``trust``): ``strict`` refuses
queries whose required properties are not certified (exit code 4 with
the witness), ``repair`` auto-smooths when smoothness is the only
shortfall, and ``proved`` additionally demands a verified equivalence
proof for the circuit (see ``docs/static-analysis.md`` and
``docs/proofs.md``).

Exit codes: 0 success; 1 unsatisfiable (``sat``) or load-test
failure; 2 usage/input error; 3 budget exceeded; 4 property
violation — a circuit *property* (smoothness, determinism, ...) is
falsified or uncertified; 5 refuted proof — the independent checker
rejected an *equivalence* trace, meaning the compiled circuit cannot
be trusted to match its CNF at all.

``compile`` and ``query`` take resource budgets: ``--timeout SECONDS``
and ``--max-nodes N`` bound the run (exit code 3 with the partial
state as ``c partial`` comments on stderr when exceeded),
``query --anytime`` degrades count/wmc to certified lower/upper bounds
instead of failing, and ``compile --restarts N`` retries over
diversified variable orders/vtrees with exponentially growing budgets
(see ``docs/robustness.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Sequence

from .analyze.gate import PropertyViolation
from .compile.dnnf_compiler import DnnfCompiler
from .limits.budget import Budget, BudgetExceeded
from .logic.cnf import Cnf
from .nnf.io import to_nnf_format
from .nnf.queries import model_count
from .perf import format_stats
from .sat.dpll import is_satisfiable
from .sdd.compiler import compile_cnf_sdd
from .sdd.queries import model_count as sdd_model_count
from .vtree.construct import vtree_from_order

__all__ = ["main"]

#: exit code for a budget-bounded run that ran out of budget
EXIT_BUDGET = 3

#: exit code for a property violation (``check`` failure, or a gated
#: query refused in strict/repair/proved mode)
EXIT_VIOLATION = 4

#: exit code for a refuted equivalence proof: the independent checker
#: rejected the compiler's trace, so the circuit itself is suspect —
#: a strictly worse condition than a falsified property (exit 4),
#: which at least concerns the circuit the compiler really built
EXIT_REFUTED = 5


def _load(path: str) -> Cnf:
    with open(path) as handle:
        return Cnf.from_dimacs(handle.read())


def _budget(args: argparse.Namespace) -> Optional[Budget]:
    """The Budget described by --timeout / --max-nodes (None if unset)."""
    timeout = getattr(args, "timeout", None)
    max_nodes = getattr(args, "max_nodes", None)
    if timeout is None and max_nodes is None:
        return None
    return Budget(deadline_s=timeout, max_nodes=max_nodes)


def _store(args: argparse.Namespace):
    """The artifact store selected by --cache-dir / $REPRO_CACHE_DIR."""
    from .ir.store import ArtifactStore, default_store
    if getattr(args, "cache_dir", None):
        return ArtifactStore(args.cache_dir)
    return default_store()


def _print_store_stats(store) -> None:
    if store is not None:
        print(format_stats(store.stats))
        print(f"c artifact-hit-rate {store.hit_rate():.2f}")


def _cmd_count(args: argparse.Namespace) -> int:
    cnf = _load(args.file)
    compiler = DnnfCompiler(use_components=not args.no_components,
                            use_cache=not args.no_cache)
    circuit = compiler.compile(cnf)
    count = model_count(circuit, range(1, cnf.num_vars + 1))
    print(f"s mc {count}")
    if args.verbose:
        print(f"c decisions {compiler.decisions}")
        print(f"c cache-hits {compiler.cache_hits}")
        print(f"c circuit-edges {circuit.edge_count()}")
    if args.stats:
        print(format_stats(compiler.stats))
    return 0


def _cmd_sat(args: argparse.Namespace) -> int:
    cnf = _load(args.file)
    satisfiable = is_satisfiable(cnf)
    print("s SATISFIABLE" if satisfiable else "s UNSATISFIABLE")
    return 0 if satisfiable else 1


def _cmd_compile(args: argparse.Namespace) -> int:
    cnf = _load(args.file)
    store = _store(args)
    proof = bool(getattr(args, "proof", False))
    if proof and (args.restarts or args.format == "sdd"):
        raise ValueError("--proof needs a single-shot --format nnf "
                         "compile (no --restarts, no sdd)")
    if args.restarts:
        return _compile_restarts(args, cnf, store)
    if args.format == "sdd":
        return _compile_sdd_files(args, cnf, store)
    optimize = ((args.passes or True) if getattr(args, "optimize",
                                                 False) else None)
    compiler = DnnfCompiler(store=store, budget=_budget(args),
                            optimize=optimize, proof=proof)
    try:
        circuit = compiler.compile(cnf)
    except BudgetExceeded:
        # the exit-3 path still reports where the budget went —
        # load tests attribute cost from these counters
        if args.stats:
            print(format_stats(compiler.stats))
            _print_store_stats(store)
        raise
    if compiler.optimize_report is not None:
        report = compiler.optimize_report
        print(f"c optimize passes {','.join(report['passes'])}")
        print(f"c optimize nodes {report['before_nodes']} -> "
              f"{report['after_nodes']}")
        if compiler.forgotten_vars:
            print("c optimize forgotten " + " ".join(
                str(v) for v in sorted(compiler.forgotten_vars)))
    text = to_nnf_format(circuit)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"c wrote {args.output} "
              f"({circuit.node_count()} nodes, "
              f"{circuit.edge_count()} edges)")
    else:
        sys.stdout.write(text)
    exit_code = _report_proof(compiler, cnf, store) if proof else 0
    if args.stats:
        print(format_stats(compiler.stats))
        _print_store_stats(store)
    return exit_code


def _report_proof(compiler: DnnfCompiler, cnf: Cnf, store) -> int:
    """Verify a ``--proof`` compile's equivalence trace with the
    independent checker and print the verdict lines."""
    from .proof import check_proof
    if store is not None:
        from .analyze.proofs import verify_stored_proof
        key = compiler.artifact_key_for(cnf)
        result = verify_stored_proof(store, key, cnf.to_dimacs())
    else:
        result = check_proof(cnf.to_dimacs(), compiler.last_proof or "")
    print(f"c proof steps {result.steps}")
    if result.verdict == "PROVED":
        suffix = f" mc {result.model_count}" \
            if result.model_count is not None else ""
        print("s PROVED" + suffix)
        return 0
    print(f"c proof reason {result.reason}", file=sys.stderr)
    if result.verdict == "INCOMPLETE":
        print("s INCOMPLETE")
        return EXIT_BUDGET
    print("s REFUTED")
    return EXIT_REFUTED


def _compile_restarts(args: argparse.Namespace, cnf: Cnf, store) -> int:
    """--restarts N: the budgeted retry driver instead of a single shot."""
    from .limits.restarts import compile_with_restarts
    result = compile_with_restarts(
        cnf, format=args.format, attempts=args.restarts,
        deadline_s=args.timeout, max_nodes=args.max_nodes, store=store,
        minimize=getattr(args, "optimize", False),
        passes=getattr(args, "passes", None) or None)
    for record in result.attempts:
        print(f"c attempt {record['attempt']} {record['strategy']} "
              f"{record['outcome']}")
    print(f"c winner attempt {result.winner} (size {result.size})")
    if result.optimize is not None:
        print(f"c optimize passes "
              f"{','.join(result.optimize['passes'])}")
        if result.forgotten_vars:
            print("c optimize forgotten " + " ".join(
                str(v) for v in sorted(result.forgotten_vars)))
    if args.format == "sdd":
        from .ir.serialize import write_sdd_file, write_vtree_text
        text = write_sdd_file(result.root)
    else:
        text = to_nnf_format(result.root)
    if args.output:
        base = args.output
        if args.format == "sdd":
            if base.endswith(".sdd"):
                base = base[:-4]
            with open(base + ".sdd", "w") as handle:
                handle.write(text)
            with open(base + ".vtree", "w") as handle:
                handle.write(write_vtree_text(result.manager.vtree))
            print(f"c wrote {base}.sdd + {base}.vtree")
        else:
            with open(base, "w") as handle:
                handle.write(text)
            print(f"c wrote {base} ({result.size} nodes)")
    else:
        sys.stdout.write(text)
    return 0


def _compile_sdd_files(args: argparse.Namespace, cnf: Cnf, store) -> int:
    from .ir.serialize import write_sdd_file, write_vtree_text
    if cnf.num_vars == 0:
        print("c empty formula")
        return 0
    vtree = vtree_from_order(range(1, cnf.num_vars + 1), args.vtree)
    root, manager = compile_cnf_sdd(cnf, vtree=vtree, store=store,
                                    budget=_budget(args))
    sdd_text = write_sdd_file(root)
    vtree_text = write_vtree_text(manager.vtree)
    if args.output:
        base = args.output
        if base.endswith(".sdd"):
            base = base[:-4]
        with open(base + ".sdd", "w") as handle:
            handle.write(sdd_text)
        with open(base + ".vtree", "w") as handle:
            handle.write(vtree_text)
        print(f"c wrote {base}.sdd + {base}.vtree "
              f"(size {root.size()}, {root.node_count()} nodes)")
    else:
        sys.stdout.write(sdd_text)
    if args.stats:
        print(format_stats(manager.stats))
        _print_store_stats(store)
    return 0


def _parse_weights(specs, num_vars: int) -> Dict[int, float]:
    """Literal weights from repeated ``LIT=W`` options; unspecified
    literals weigh 1.0.

    Rejects malformed specs and literals outside ``±1..num_vars`` with
    a one-line error naming the offending spec (a silently accepted
    out-of-range weight would simply never be read by the query).
    """
    weights: Dict[int, float] = {}
    for var in range(1, num_vars + 1):
        weights[var] = weights[-var] = 1.0
    for spec in specs or ():
        lit_text, _, value_text = spec.partition("=")
        try:
            literal = int(lit_text)
            value = float(value_text)
        except ValueError:
            raise ValueError(f"bad weight spec {spec!r} (want LIT=W)")
        if literal == 0 or abs(literal) > num_vars:
            raise ValueError(
                f"bad weight spec {spec!r}: literal {literal} outside "
                f"1..{num_vars} (or its negation)")
        weights[literal] = value
    return weights


def _parse_pass_list(args: argparse.Namespace):
    """The --passes option as a tuple (None = default pipeline)."""
    from .ir.passes import parse_passes
    raw = getattr(args, "passes", None)
    return parse_passes(raw) if raw else None


def _optimize_circuit_ir(args: argparse.Namespace, ir, aux_vars):
    """Run the pass pipeline for an --optimize CLI flag, print the
    ``c optimize`` audit lines and return the PipelineResult."""
    from .ir.passes import optimize_ir
    result = optimize_ir(ir, _parse_pass_list(args), aux_vars=aux_vars,
                         budget=_budget(args))
    print(f"c optimize passes {','.join(result.passes)}")
    print(f"c optimize nodes {result.before_nodes} -> "
          f"{result.after_nodes} "
          f"(reduction {result.reduction:.2%})")
    if result.forgotten:
        print("c optimize forgotten "
              + " ".join(str(v) for v in sorted(result.forgotten)))
    if result.budget_hit:
        print("c optimize budget-hit (partial pipeline kept)")
    return result


def _cmd_optimize(args: argparse.Namespace) -> int:
    """``repro optimize FILE``: shrink a circuit (or compile-then-
    shrink a CNF) through the certified pass pipeline."""
    from .ir.serialize import ir_from_nnf_text, ir_to_nnf_text
    if args.file.endswith(".nnf"):
        with open(args.file) as handle:
            ir = ir_from_nnf_text(handle.read())
        aux_vars: Sequence[int] = ()
    else:
        from .ir.core import FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC
        from .ir.lower import nnf_to_ir
        cnf = _load(args.file)
        store = _store(args)
        compiler = DnnfCompiler(store=store, budget=_budget(args))
        circuit = compiler.compile(cnf)
        ir = nnf_to_ir(circuit,
                       flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC)
        aux_vars = sorted(cnf.aux_vars)
    result = _optimize_circuit_ir(args, ir, aux_vars)
    text = ir_to_nnf_text(result.ir)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"c wrote {args.output} ({result.after_nodes} nodes)")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    """``repro cache gc``: sweep the artifact store for orphaned and
    stale sidecar files and report the bytes reclaimed."""
    import time
    store = _store(args)
    if store is None:
        print("c no cache directory (--cache-dir or $REPRO_CACHE_DIR)")
        return 2
    report = store.gc(now=time.time(),
                      max_corrupt_age_days=args.max_age_days,
                      dry_run=args.dry_run)
    mode = " (dry-run)" if report["dry_run"] else ""
    print(f"c gc scanned {report['scanned']}")
    print(f"c gc removed {report['removed']}{mode}")
    print(f"c gc reclaimed-bytes {report['reclaimed_bytes']}{mode}")
    for name, entry in sorted(report["by_class"].items()):
        print(f"c gc class {name} {entry['files']} files "
              f"{entry['bytes']} bytes")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if getattr(args, "gate", None):
        from .analyze.gate import gate_scope
        with gate_scope(args.gate):
            return _run_query(args)
    return _run_query(args)


def _run_query(args: argparse.Namespace) -> int:
    from .nnf import queries
    cnf = _load(args.file)
    store = _store(args)
    weights = _parse_weights(args.weight, cnf.num_vars)
    if args.anytime:
        return _query_anytime(args, cnf, weights)
    compiler = DnnfCompiler(store=store, budget=_budget(args))
    try:
        circuit = compiler.compile(cnf)
    except BudgetExceeded:
        # counters must reach the exit-3 timeout path too, so load
        # tests can attribute where the budget went (there is no
        # kernel yet — only compiler + store counters exist)
        if args.stats:
            print(format_stats(compiler.stats))
            _print_store_stats(store)
        raise
    if getattr(args, "optimize", False):
        return _query_optimized(args, cnf, circuit, weights, compiler,
                                store)
    from .nnf.kernel import get_kernel
    kernel = get_kernel(circuit)
    kernel.codegen_store = store
    if getattr(args, "backend", None):
        kernel.set_backend(args.backend)
    variables = range(1, cnf.num_vars + 1)
    if args.query == "count":
        print(f"s mc {queries.model_count(circuit, variables)}")
    elif args.query == "sat":
        satisfiable = queries.is_satisfiable_dnnf(circuit)
        print("s SATISFIABLE" if satisfiable else "s UNSATISFIABLE")
    elif args.query == "wmc":
        print(f"s wmc {queries.weighted_model_count(circuit, weights, variables)}")
    elif args.query == "mpe":
        value, model = queries.mpe(circuit, weights, variables)
        literals = " ".join(str(v if model[v] else -v)
                            for v in sorted(model))
        print(f"v {literals} 0")
        print(f"s mpe {value}")
    else:  # marginals
        from .nnf.transform import smooth
        counts = queries.marginal_counts(smooth(circuit), variables)
        for var in variables:
            print(f"c marginal {var} {counts[var]} {counts[-var]}")
        print(f"s mc {queries.model_count(circuit, variables)}")
    if args.stats:
        print(format_stats(compiler.stats))
        _print_store_stats(store)
        _print_backend_stats(kernel)
    return 0


def _query_optimized(args: argparse.Namespace, cnf: Cnf, circuit,
                     weights: Dict[int, float], compiler,
                     store) -> int:
    """--optimize: answer the query on the pass-minimized circuit.

    Forgotten Tseitin auxiliaries are excluded from count widening
    (the 2^k correction), so every answer matches the unoptimized
    path exactly — just over fewer nodes.
    """
    from .ir import facade
    from .ir.core import FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC
    from .ir.lower import nnf_to_ir
    ir = nnf_to_ir(circuit,
                   flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC)
    result = _optimize_circuit_ir(args, ir, sorted(cnf.aux_vars))
    out = facade.query_ir(
        result.ir, args.query, num_vars=cnf.num_vars,
        weights=weights if args.query in ("wmc", "mpe") else None,
        forgotten=result.forgotten, codegen_store=store)
    if args.query == "count":
        print(f"s mc {out['result']}")
    elif args.query == "sat":
        print("s SATISFIABLE" if out["result"]
              else "s UNSATISFIABLE")
    elif args.query == "wmc":
        print(f"s wmc {out['result']}")
    elif args.query == "mpe":
        literals = " ".join(
            str(int(var) if state else -int(var))
            for var, state in sorted(out["model"].items(),
                                     key=lambda kv: int(kv[0])))
        print(f"v {literals} 0")
        print(f"s mpe {out['result']}")
    else:  # marginals
        for var_text, (neg, pos) in sorted(
                out["result"].items(), key=lambda kv: int(kv[0])):
            print(f"c marginal {var_text} {pos} {neg}")
        print(f"s mc {out['count']}")
    if args.stats:
        print(format_stats(compiler.stats))
        _print_store_stats(store)
    return 0


def _print_backend_stats(kernel) -> None:
    """Evaluator-backend counters for ``repro query --stats``: which
    backend answered, codegen source-cache traffic, and the
    compile-vs-eval time split (see docs/performance.md)."""
    print(f"c backend {kernel.backend_name()}")
    compiled = getattr(kernel, "_codegen", None)
    stats = getattr(compiled, "stats", None)
    if stats is not None and stats:
        print(format_stats(stats))


def _query_anytime(args: argparse.Namespace, cnf: Cnf,
                   weights: Dict[int, float]) -> int:
    """--anytime: certified bounds under the budget instead of an
    exception; exact (and indistinguishable from the normal path) when
    the budget survives."""
    from .limits.anytime import anytime_count, anytime_wmc
    if args.query not in ("count", "wmc"):
        raise ValueError(
            f"--anytime supports count and wmc, not {args.query!r}")
    budget = _budget(args)
    if args.query == "count":
        result = anytime_count(cnf, budget)
    else:
        result = anytime_wmc(cnf, weights, budget)
    print(f"c anytime lower {result.lower}")
    print(f"c anytime upper {result.upper}")
    print(f"c anytime reason {result.reason or 'complete'}")
    print(f"c anytime decisions {result.decisions}")
    if result.exact:
        label = "mc" if args.query == "count" else "wmc"
        print(f"s {label} {result.lower}")
    else:
        print(f"s bounds {result.lower} {result.upper}")
    return 0


def _cmd_sdd(args: argparse.Namespace) -> int:
    cnf = _load(args.file)
    if cnf.num_vars == 0:
        print("c empty formula")
        return 0
    vtree = vtree_from_order(range(1, cnf.num_vars + 1), args.vtree)
    root, manager = compile_cnf_sdd(cnf, vtree=vtree)
    print(f"c vtree {args.vtree}")
    print(f"c sdd-size {root.size()}")
    print(f"c sdd-nodes {root.node_count()}")
    print(f"s mc {sdd_model_count(root)}")
    if args.stats:
        print(format_stats(manager.stats))
    return 0


def _cmd_enumerate(args: argparse.Namespace) -> int:
    cnf = _load(args.file)
    from .sat.dpll import enumerate_models
    printed = 0
    for model in enumerate_models(cnf):
        literals = " ".join(str(v if model[v] else -v)
                            for v in sorted(model))
        print(f"v {literals} 0")
        printed += 1
        if args.limit and printed >= args.limit:
            break
    print(f"c {printed} models printed")
    return 0


def _parse_instance(spec: str) -> Dict[int, bool]:
    """``"1,-2,3"`` (commas or spaces) -> {1: True, 2: False, 3: True}."""
    instance: Dict[int, bool] = {}
    for part in spec.replace(",", " ").split():
        lit = int(part)
        if lit == 0:
            raise ValueError("instance literals must be non-zero")
        var = abs(lit)
        if var in instance and instance[var] != (lit > 0):
            raise ValueError(
                f"contradictory instance literals for variable {var}")
        instance[var] = lit > 0
    if not instance:
        raise ValueError("empty instance; pass literals like "
                         '--instance "1,-2,3"')
    return instance


def _cmd_explain(args: argparse.Namespace) -> int:
    """Compile and enumerate sufficient reasons of the decision.

    One budget covers compile + enumeration: a budget that dies in
    the compiler exits 3 via the usual path, while one that dies in
    the (natively anytime) enumeration prints the reasons found so
    far, a ``c partial`` marker, and still exits 3.
    """
    from .ir import facade
    from .ir.core import FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC
    from .ir.lower import nnf_to_ir
    cnf = _load(args.file)
    instance = _parse_instance(args.instance)
    store = _store(args)
    budget = _budget(args)
    compiler = DnnfCompiler(store=store, budget=budget)
    circuit = compiler.compile(cnf)
    ir = nnf_to_ir(circuit,
                   flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC)
    out = facade.explain_ir(ir, instance, limit=args.limit,
                            smallest=args.smallest, budget=budget)
    print("s decision 1")
    if args.smallest:
        reasons = [out["smallest"]] if out["smallest"] is not None \
            else []
    else:
        reasons = out["reasons"]
    for reason in reasons:
        literals = " ".join(str(lit) for lit in reason)
        print(f"v {literals} 0" if literals else "v 0")
    print(f"s reasons {len(reasons)} "
          + ("complete" if out["complete"] else "partial"))
    if args.stats:
        print(f"c probes {out['probes']}")
        print(format_stats(compiler.stats))
    partial = out.get("partial")
    if partial is not None:
        print(f"c partial reason {partial['reason']}", file=sys.stderr)
        return EXIT_BUDGET
    return 0


#: default --expect per circuit format
_CHECK_DEFAULTS = {"nnf": "decomposable,deterministic,smooth",
                   "sdd": "decomposable,deterministic,structured",
                   "obdd": "obdd"}


def _check_proof_file(args: argparse.Namespace) -> int:
    """``repro check FILE.cnf --proof``: replay an equivalence trace
    against the DIMACS with the independent checker.

    The trace comes from ``--trace PATH`` or, by default, from the
    artifact store's ``.proof`` sidecar for the CNF's content key
    (which also memoises the verdict and quarantines on refutation).
    """
    cnf = _load(args.file)
    if args.trace:
        from .proof import check_proof
        with open(args.trace) as handle:
            trace = handle.read()
        result = check_proof(cnf.to_dimacs(), trace,
                             budget=_budget(args))
    else:
        from .analyze.proofs import verify_stored_proof
        from .ir import facade
        store = _store(args)
        if store is None:
            raise ValueError(
                "no trace source: pass --trace PATH or a store via "
                "--cache-dir / $REPRO_CACHE_DIR")
        ticket = facade.compile_ticket(cnf.to_dimacs())
        result = verify_stored_proof(store, ticket.key, ticket.dimacs,
                                     budget=_budget(args))
    print(f"c proof steps {result.steps}")
    if result.verdict == "PROVED":
        suffix = f" mc {result.model_count}" \
            if result.model_count is not None else ""
        print("s PROVED" + suffix)
        return 0
    print(f"c proof reason {result.reason}", file=sys.stderr)
    if result.line is not None:
        print(f"c proof witness-line {result.line}", file=sys.stderr)
    if result.verdict == "INCOMPLETE":
        print("s INCOMPLETE")
        return EXIT_BUDGET
    print("s REFUTED")
    return EXIT_REFUTED


def _cmd_check(args: argparse.Namespace) -> int:
    """Statically verify a circuit file's tractability properties."""
    if getattr(args, "proof", False):
        return _check_proof_file(args)
    from .analyze import (PROPERTY_FLAGS, VERIFIED, certify,
                          verify_obdd_ir)
    fmt = args.format
    if fmt == "auto":
        fmt = "sdd" if args.file.endswith(".sdd") else "nnf"
    vtree = None
    if fmt == "sdd":
        from .ir.lower import sdd_to_ir
        from .ir.serialize import read_sdd_file
        vtree_path = args.vtree_file
        if vtree_path is None:
            base = args.file[:-4] if args.file.endswith(".sdd") \
                else args.file
            vtree_path = base + ".vtree"
        with open(args.file) as handle:
            sdd_text = handle.read()
        with open(vtree_path) as handle:
            vtree_text = handle.read()
        root, manager = read_sdd_file(sdd_text, vtree_text)
        ir = sdd_to_ir(root)
        vtree = manager.vtree
    else:
        from .ir.serialize import ir_from_nnf_text
        with open(args.file) as handle:
            ir = ir_from_nnf_text(handle.read(), flags=0)
    expected = [name.strip() for name in
                (args.expect or _CHECK_DEFAULTS[fmt]).split(",")
                if name.strip()]
    known = set(PROPERTY_FLAGS) | {"obdd", "wellformed"}
    for name in expected:
        if name not in known:
            raise ValueError(f"unknown property {name!r}; expected "
                             f"one of {sorted(known)}")
    order = None
    if args.var_order:
        order = [int(v) for v in args.var_order.split(",")]

    flag_mask = 0
    for name in expected:
        flag_mask |= PROPERTY_FLAGS.get(name, 0)
    cert = certify(ir, flags=flag_mask, vtree=vtree,
                   max_vars=args.max_vars)
    reports = dict(cert.reports)
    if "obdd" in expected:
        reports["obdd"] = verify_obdd_ir(ir, order=order)

    failed = []
    for name in dict.fromkeys(["wellformed"] + expected):
        report = reports.get(name)
        if report is None:
            continue
        print(f"c check {name} {report.status} {report.method}")
        if report.witness is not None:
            print(f"c witness {report.witness.format()}")
        if report.status != VERIFIED:
            failed.append(name)
    if failed:
        print(f"s VIOLATION {' '.join(failed)}")
        return EXIT_VIOLATION
    print("s CERTIFIED " + " ".join(expected))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the compilation service until SIGINT/SIGTERM."""
    from .serve.app import ServerConfig, run_server
    config = ServerConfig(
        host=args.host, port=args.port, workers=args.workers,
        cache_dir=args.cache_dir, max_pending=args.max_pending,
        default_deadline_s=args.default_deadline,
        verify=not args.no_verify)
    return run_server(config)


def _cmd_bench_load(args: argparse.Namespace) -> int:
    """Fire one duplicate-heavy burst at a running server and print
    the latency/hit-rate report as JSON."""
    import json as _json
    from .serve.loadgen import run_load
    report = run_load(
        args.host, args.port, distinct=args.distinct,
        duplicates=args.duplicates, queries=args.queries,
        threads=args.threads, num_vars=args.num_vars,
        num_clauses=args.num_clauses, seed=args.seed,
        deadline_s=args.timeout)
    report.pop("server_stats", None)
    print(_json.dumps(report, indent=2, sort_keys=True))
    return 0 if report["server_5xx"] == 0 else 1


def _add_budget_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="wall-clock budget; exceeding it exits with code 3 "
             "(or degrades to bounds under --anytime)")
    subparser.add_argument(
        "--max-nodes", type=int, metavar="N",
        help="search-node budget (decisions / apply calls); exceeding "
             "it exits with code 3 (or degrades under --anytime)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tractable-circuit toolkit (SAT, #SAT, compilation)",
        epilog="exit codes: 0 ok; 1 unsat; 2 usage/input error; "
               "3 budget exceeded; 4 property violation (a circuit "
               "property such as smoothness or determinism is "
               "falsified or uncertified); 5 refuted proof (the "
               "compiler-independent checker rejected an equivalence "
               "trace — the circuit itself is suspect)")
    commands = parser.add_subparsers(dest="command", required=True)

    count = commands.add_parser("count", help="exact model count")
    count.add_argument("file")
    count.add_argument("--no-components", action="store_true",
                       help="disable component decomposition")
    count.add_argument("--no-cache", action="store_true",
                       help="disable component caching")
    count.add_argument("-v", "--verbose", action="store_true")
    count.add_argument("--stats", action="store_true",
                       help="print perf counters (propagations, cache "
                            "hits, ...) as DIMACS comments")
    count.set_defaults(func=_cmd_count)

    sat = commands.add_parser("sat", help="decide satisfiability")
    sat.add_argument("file")
    sat.set_defaults(func=_cmd_sat)

    compile_cmd = commands.add_parser(
        "compile", help="compile to circuit files (c2d .nnf, or "
                        "libsdd .sdd/.vtree with --format sdd)")
    compile_cmd.add_argument("file")
    compile_cmd.add_argument("-o", "--output")
    compile_cmd.add_argument("--format", default="nnf",
                             choices=["nnf", "sdd"],
                             help="artifact format (default nnf)")
    compile_cmd.add_argument("--vtree", default="balanced",
                             choices=["balanced", "right-linear",
                                      "left-linear"],
                             help="vtree shape for --format sdd")
    compile_cmd.add_argument("--cache-dir",
                             help="content-addressed compilation cache "
                                  "directory (default $REPRO_CACHE_DIR)")
    compile_cmd.add_argument("--stats", action="store_true",
                             help="print compiler + artifact-store "
                                  "perf counters")
    _add_budget_flags(compile_cmd)
    compile_cmd.add_argument(
        "--restarts", type=int, default=0, metavar="N",
        help="budgeted retry driver: up to N attempts over diversified "
             "variable orders/vtrees, doubling --timeout/--max-nodes "
             "each attempt")
    compile_cmd.add_argument(
        "--optimize", action="store_true",
        help="run the certified circuit-optimization pass pipeline "
             "after the compile (with --restarts: attempts compete on "
             "optimized sizes)")
    compile_cmd.add_argument(
        "--passes", metavar="P1,P2,...",
        help="pass pipeline for --optimize (default "
             "const-fold,cse,tseitin-prune)")
    compile_cmd.add_argument(
        "--proof", action="store_true",
        help="emit an equivalence trace during the compile and verify "
             "it with the independent checker: prints s PROVED (with "
             "the proved model count) or s REFUTED (exit code 5; the "
             "stored artifact is quarantined)")
    compile_cmd.set_defaults(func=_cmd_compile)

    optimize_cmd = commands.add_parser(
        "optimize", help="shrink a circuit (.nnf) or compile-then-"
                         "shrink a CNF through the certified pass "
                         "pipeline")
    optimize_cmd.add_argument("file", help=".nnf circuit or DIMACS CNF")
    optimize_cmd.add_argument("-o", "--output")
    optimize_cmd.add_argument(
        "--passes", metavar="P1,P2,...",
        help="comma-separated pass pipeline (default "
             "const-fold,cse,tseitin-prune)")
    optimize_cmd.add_argument("--cache-dir",
                              help="artifact store for the CNF "
                                   "compile step (default "
                                   "$REPRO_CACHE_DIR)")
    _add_budget_flags(optimize_cmd)
    optimize_cmd.set_defaults(func=_cmd_optimize)

    cache = commands.add_parser(
        "cache", help="artifact-store maintenance")
    cache_sub = cache.add_subparsers(dest="cache_command",
                                     required=True)
    cache_gc = cache_sub.add_parser(
        "gc", help="sweep the store for orphaned sidecars "
                   "(.csr/.gen.py/.cert without a live artifact, "
                   "stale .corrupt quarantines, tmp files)")
    cache_gc.add_argument("--cache-dir",
                          help="store directory (default "
                               "$REPRO_CACHE_DIR)")
    cache_gc.add_argument("--max-age-days", type=float, default=7.0,
                          metavar="N",
                          help="reap .corrupt quarantines older than "
                               "N days (default 7)")
    cache_gc.add_argument("--dry-run", action="store_true",
                          help="report what would be removed without "
                               "deleting anything")
    cache_gc.set_defaults(func=_cmd_cache_gc)

    query = commands.add_parser(
        "query", help="compile (store-backed) and answer a query")
    query.add_argument("file")
    query.add_argument("--query", default="count",
                       choices=["count", "sat", "wmc", "mpe",
                                "marginals"])
    query.add_argument("--weight", action="append", metavar="LIT=W",
                       help="literal weight for wmc/mpe (repeatable; "
                            "unset literals weigh 1.0; use "
                            "--weight=-2=0.4 for negative literals)")
    query.add_argument("--cache-dir",
                       help="content-addressed compilation cache "
                            "directory (default $REPRO_CACHE_DIR)")
    query.add_argument("--stats", action="store_true",
                       help="print compiler + artifact-store + "
                            "evaluator-backend counters")
    query.add_argument("--backend", choices=["codegen", "interp"],
                       help="circuit evaluator: per-circuit compiled "
                            "numpy code (codegen, the default) or the "
                            "reference interpreter (overrides "
                            "$REPRO_BACKEND)")
    _add_budget_flags(query)
    query.add_argument(
        "--anytime", action="store_true",
        help="for count/wmc: return certified lower/upper bounds when "
             "the budget expires instead of failing")
    query.add_argument(
        "--gate", choices=["trust", "strict", "repair", "proved"],
        help="property-gate mode (default $REPRO_GATE or trust): "
             "strict refuses uncertified circuits with exit code 4, "
             "repair auto-smooths when possible, proved additionally "
             "requires a verified equivalence proof")
    query.add_argument(
        "--optimize", action="store_true",
        help="answer on the pass-minimized circuit (forgotten "
             "Tseitin auxiliaries excluded from count widening, so "
             "results match the unoptimized path exactly)")
    query.add_argument(
        "--passes", metavar="P1,P2,...",
        help="pass pipeline for --optimize (default "
             "const-fold,cse,tseitin-prune)")
    query.set_defaults(func=_cmd_query)

    sdd = commands.add_parser("sdd", help="compile to an SDD")
    sdd.add_argument("file")
    sdd.add_argument("--vtree", default="balanced",
                     choices=["balanced", "right-linear", "left-linear"])
    sdd.add_argument("--stats", action="store_true",
                     help="print apply-cache perf counters")
    sdd.set_defaults(func=_cmd_sdd)

    enumerate_cmd = commands.add_parser("enumerate",
                                        help="list models (DIMACS v lines)")
    enumerate_cmd.add_argument("file")
    enumerate_cmd.add_argument("--limit", type=int, default=0)
    enumerate_cmd.set_defaults(func=_cmd_enumerate)

    explain = commands.add_parser(
        "explain", help="sufficient reasons (prime implicants) of "
                        "the decision on an instance")
    explain.add_argument("file")
    explain.add_argument("--instance", required=True, metavar="LITS",
                         help="the instance as comma/space-separated "
                              'literals, e.g. "1,-2,3" (spell it '
                              "--instance=-1,2 when the first literal "
                              "is negative)")
    scope = explain.add_mutually_exclusive_group()
    scope.add_argument("--all", action="store_true",
                       help="every sufficient reason (default)")
    scope.add_argument("--smallest", action="store_true",
                       help="one minimum-cardinality reason")
    scope.add_argument("--limit", type=int, metavar="N",
                       help="stop after N reasons")
    explain.add_argument("--cache-dir",
                         help="artifact store directory "
                              "(default $REPRO_CACHE_DIR)")
    explain.add_argument("--stats", action="store_true",
                         help="print probe and compiler counters")
    _add_budget_flags(explain)
    explain.set_defaults(func=_cmd_explain)

    check = commands.add_parser(
        "check", help="statically verify a circuit file's properties "
                      "(exit 4 + c witness lines on violation), or "
                      "with --proof replay a compilation's "
                      "equivalence trace (exit 5 on refutation)")
    check.add_argument("file", help="circuit file (.nnf, or .sdd with "
                                    "a sibling/--vtree-file .vtree); "
                                    "a DIMACS CNF with --proof")
    check.add_argument("--proof", action="store_true",
                       help="treat FILE as a DIMACS CNF and verify "
                            "its equivalence trace with the "
                            "compiler-independent checker: exit 0 + "
                            "s PROVED, or exit 5 + s REFUTED with "
                            "the first bad trace line")
    check.add_argument("--trace", metavar="PATH",
                       help="explicit .proof trace file for --proof "
                            "(default: the store's sidecar for the "
                            "CNF's content key)")
    check.add_argument("--cache-dir",
                       help="artifact store holding the .proof "
                            "sidecar for --proof (default "
                            "$REPRO_CACHE_DIR)")
    check.add_argument("--format", default="auto",
                       choices=["auto", "nnf", "sdd", "obdd"],
                       help="circuit format (auto: by extension; obdd "
                            "checks OBDD discipline on a .nnf file)")
    check.add_argument("--expect", metavar="PROPS",
                       help="comma-separated properties to require "
                            f"(defaults per format: {_CHECK_DEFAULTS})")
    check.add_argument("--vtree-file", metavar="FILE",
                       help="vtree file for --format sdd (default: "
                            "the .sdd path with extension .vtree)")
    check.add_argument("--var-order", metavar="V1,V2,...",
                       help="explicit variable order for --format obdd")
    check.add_argument("--max-vars", type=int, default=16, metavar="N",
                       help="per-gate brute-force budget for the "
                            "determinism check (default 16)")
    check.set_defaults(func=_cmd_check)

    serve = commands.add_parser(
        "serve", help="run the compile/query HTTP service "
                      "(POST /compile, POST /query, GET /stats)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (0 = ephemeral; the bound "
                            "port is printed as 'c serve listening')")
    serve.add_argument("--workers", type=int, default=2,
                       help="compile/query worker processes "
                            "(0 = in-process threads)")
    serve.add_argument("--cache-dir",
                       help="shared artifact-store directory "
                            "(default: a private temp dir)")
    serve.add_argument("--max-pending", type=int, default=32,
                       help="admission control: queued+running worker "
                            "jobs before answering 429")
    serve.add_argument("--default-deadline", type=float, default=30.0,
                       metavar="SECONDS",
                       help="per-request budget when the client sends "
                            "none; expiring compiles degrade to "
                            "certified bounds")
    serve.add_argument("--no-verify", action="store_true",
                       help="skip artifact verification on warm loads")
    serve.set_defaults(func=_cmd_serve)

    bench_load = commands.add_parser(
        "bench-load", help="drive a duplicate-heavy load burst at a "
                           "running repro serve and report p50/p99 "
                           "latency, rps, and hit rates as JSON")
    bench_load.add_argument("--host", default="127.0.0.1")
    bench_load.add_argument("--port", type=int, required=True)
    bench_load.add_argument("--distinct", type=int, default=4,
                            help="distinct CNF instances")
    bench_load.add_argument("--duplicates", type=int, default=8,
                            help="concurrent compile copies per "
                                 "instance (the dedup pressure)")
    bench_load.add_argument("--queries", type=int, default=64,
                            help="warm queries after the compile burst")
    bench_load.add_argument("--threads", type=int, default=8,
                            help="concurrent client threads")
    bench_load.add_argument("--num-vars", type=int, default=24)
    bench_load.add_argument("--num-clauses", type=int, default=60)
    bench_load.add_argument("--seed", type=int, default=0)
    bench_load.add_argument("--timeout", type=float,
                            metavar="SECONDS",
                            help="per-request deadline sent with each "
                                 "request")
    bench_load.set_defaults(func=_cmd_bench_load)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BudgetExceeded as error:
        print(f"error: {error}", file=sys.stderr)
        for key in sorted(error.partial):
            print(f"c partial {key} {error.partial[key]}",
                  file=sys.stderr)
        return EXIT_BUDGET
    except PropertyViolation as error:
        print(f"error: {error}", file=sys.stderr)
        for witness in error.witnesses:
            print(f"c witness {witness.format()}", file=sys.stderr)
        return EXIT_VIOLATION
