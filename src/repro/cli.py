"""Command-line interface: ``python -m repro <command>``.

Mirrors the classic knowledge-compiler workflow (C2D/DSHARP-style):

* ``count FILE.cnf`` — exact model count (d-DNNF based);
* ``sat FILE.cnf`` — satisfiability;
* ``compile FILE.cnf [-o out.nnf]`` — Decision-DNNF in c2d format;
* ``sdd FILE.cnf [--vtree balanced|right-linear|left-linear]`` —
  compile to an SDD and report size statistics;
* ``enumerate FILE.cnf [--limit N]`` — print models.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .compile.dnnf_compiler import DnnfCompiler
from .logic.cnf import Cnf
from .nnf.io import to_nnf_format
from .nnf.queries import model_count
from .perf import format_stats
from .sat.dpll import is_satisfiable
from .sdd.compiler import compile_cnf_sdd
from .sdd.queries import model_count as sdd_model_count
from .vtree.construct import vtree_from_order

__all__ = ["main"]


def _load(path: str) -> Cnf:
    with open(path) as handle:
        return Cnf.from_dimacs(handle.read())


def _cmd_count(args: argparse.Namespace) -> int:
    cnf = _load(args.file)
    compiler = DnnfCompiler(use_components=not args.no_components,
                            use_cache=not args.no_cache)
    circuit = compiler.compile(cnf)
    count = model_count(circuit, range(1, cnf.num_vars + 1))
    print(f"s mc {count}")
    if args.verbose:
        print(f"c decisions {compiler.decisions}")
        print(f"c cache-hits {compiler.cache_hits}")
        print(f"c circuit-edges {circuit.edge_count()}")
    if args.stats:
        print(format_stats(compiler.stats))
    return 0


def _cmd_sat(args: argparse.Namespace) -> int:
    cnf = _load(args.file)
    satisfiable = is_satisfiable(cnf)
    print("s SATISFIABLE" if satisfiable else "s UNSATISFIABLE")
    return 0 if satisfiable else 1


def _cmd_compile(args: argparse.Namespace) -> int:
    cnf = _load(args.file)
    compiler = DnnfCompiler()
    circuit = compiler.compile(cnf)
    text = to_nnf_format(circuit)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"c wrote {args.output} "
              f"({circuit.node_count()} nodes, "
              f"{circuit.edge_count()} edges)")
    else:
        sys.stdout.write(text)
    if args.stats:
        print(format_stats(compiler.stats))
    return 0


def _cmd_sdd(args: argparse.Namespace) -> int:
    cnf = _load(args.file)
    if cnf.num_vars == 0:
        print("c empty formula")
        return 0
    vtree = vtree_from_order(range(1, cnf.num_vars + 1), args.vtree)
    root, manager = compile_cnf_sdd(cnf, vtree=vtree)
    print(f"c vtree {args.vtree}")
    print(f"c sdd-size {root.size()}")
    print(f"c sdd-nodes {root.node_count()}")
    print(f"s mc {sdd_model_count(root)}")
    if args.stats:
        print(format_stats(manager.stats))
    return 0


def _cmd_enumerate(args: argparse.Namespace) -> int:
    cnf = _load(args.file)
    from .sat.dpll import enumerate_models
    printed = 0
    for model in enumerate_models(cnf):
        literals = " ".join(str(v if model[v] else -v)
                            for v in sorted(model))
        print(f"v {literals} 0")
        printed += 1
        if args.limit and printed >= args.limit:
            break
    print(f"c {printed} models printed")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tractable-circuit toolkit (SAT, #SAT, compilation)")
    commands = parser.add_subparsers(dest="command", required=True)

    count = commands.add_parser("count", help="exact model count")
    count.add_argument("file")
    count.add_argument("--no-components", action="store_true",
                       help="disable component decomposition")
    count.add_argument("--no-cache", action="store_true",
                       help="disable component caching")
    count.add_argument("-v", "--verbose", action="store_true")
    count.add_argument("--stats", action="store_true",
                       help="print perf counters (propagations, cache "
                            "hits, ...) as DIMACS comments")
    count.set_defaults(func=_cmd_count)

    sat = commands.add_parser("sat", help="decide satisfiability")
    sat.add_argument("file")
    sat.set_defaults(func=_cmd_sat)

    compile_cmd = commands.add_parser(
        "compile", help="compile to Decision-DNNF (c2d .nnf format)")
    compile_cmd.add_argument("file")
    compile_cmd.add_argument("-o", "--output")
    compile_cmd.add_argument("--stats", action="store_true",
                             help="print compiler perf counters")
    compile_cmd.set_defaults(func=_cmd_compile)

    sdd = commands.add_parser("sdd", help="compile to an SDD")
    sdd.add_argument("file")
    sdd.add_argument("--vtree", default="balanced",
                     choices=["balanced", "right-linear", "left-linear"])
    sdd.add_argument("--stats", action="store_true",
                     help="print apply-cache perf counters")
    sdd.set_defaults(func=_cmd_sdd)

    enumerate_cmd = commands.add_parser("enumerate",
                                        help="list models (DIMACS v lines)")
    enumerate_cmd.add_argument("file")
    enumerate_cmd.add_argument("--limit", type=int, default=0)
    enumerate_cmd.set_defaults(func=_cmd_enumerate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
