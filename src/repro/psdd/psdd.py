"""Probabilistic Sentential Decision Diagrams (PSDDs) [44] — Figs 13–14.

A PSDD assigns a local distribution to every or-gate of an SDD (and a
Bernoulli to every ⊤ leaf): each element of a decision node gets a
probability θ, with the θs of a node summing to one.  The result is a
normalized distribution over the *satisfying inputs* of the SDD — the
paper's "distribution over a structured space".

Construction here *normalizes* a (trimmed) SDD for its full vtree while
building the PSDD, so every variable of the vtree is covered by some
node: a ⊤ over a leaf becomes a Bernoulli, a sub-function lifted over an
internal vtree node becomes a one-element decision.  Sharing is kept —
a PSDD node always denotes one distribution over the variables of its
vtree node, wherever it is referenced.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Tuple

from ..sdd.manager import SddManager
from ..sdd.node import SddNode
from ..vtree.vtree import Vtree

__all__ = ["PsddNode", "psdd_from_sdd"]

#: global id source — PSDD DAGs may mix nodes from different builders
#: (e.g. multiply reuses input nodes), so ids must be globally unique
_NODE_IDS = itertools.count()


class PsddNode:
    """A PSDD node; build with :func:`psdd_from_sdd`.

    Kinds:

    * ``literal`` — mass 1 on the literal's value, over one variable;
    * ``bernoulli`` — Pr(var = 1) = theta, over one variable;
    * ``decision`` — elements ``(prime, sub, theta)`` over an internal
      vtree node; primes partition the node's support on the left vars.

    Ids are globally unique across all PSDD nodes in the process.
    """

    LITERAL = "literal"
    BERNOULLI = "bernoulli"
    DECISION = "decision"

    __slots__ = ("id", "kind", "vtree", "literal", "theta", "elements",
                 "support")

    def __init__(self, node_id: Optional[int] = None, kind: str = "",
                 vtree: Optional[Vtree] = None,
                 literal: int = 0, theta: float = 0.5,
                 elements: Optional[List[List]] = None,
                 support: Optional[SddNode] = None):
        # node_id is accepted for backwards compatibility but ignored:
        # every node draws a fresh globally-unique id
        self.id = next(_NODE_IDS)
        self.kind = kind
        self.vtree = vtree
        self.literal = literal
        self.theta = theta
        # each element is a mutable [prime, sub, theta] triple
        self.elements: List[List] = elements or []
        self.support = support

    @property
    def is_literal(self) -> bool:
        return self.kind == PsddNode.LITERAL

    @property
    def is_bernoulli(self) -> bool:
        return self.kind == PsddNode.BERNOULLI

    @property
    def is_decision(self) -> bool:
        return self.kind == PsddNode.DECISION

    def variables(self) -> frozenset[int]:
        return self.vtree.variables

    # -- traversal ----------------------------------------------------------
    def descendants(self) -> List["PsddNode"]:
        """All reachable PSDD nodes, children before parents."""
        order: List[PsddNode] = []
        seen: set[int] = set()
        stack: List[Tuple[PsddNode, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if node.id in seen:
                continue
            seen.add(node.id)
            stack.append((node, True))
            for prime, sub, _theta in node.elements:
                if prime.id not in seen:
                    stack.append((prime, False))
                if sub.id not in seen:
                    stack.append((sub, False))
        return order

    def size(self) -> int:
        """Total number of elements (the paper's PSDD size measure)."""
        return sum(len(node.elements) for node in self.descendants())

    def to_ir(self):
        """Lower this PSDD onto the flattened execution IR: returns
        ``(ir, params)`` where the IR holds ``KIND_PARAM`` leaves and
        ``params`` is the current θ vector, re-read from the live nodes
        on every call (:func:`repro.ir.lower.psdd_to_ir`)."""
        from ..ir.lower import psdd_to_ir
        return psdd_to_ir(self)

    def parameter_count(self) -> int:
        """Free parameters: (elements - 1) per decision + 1 per Bernoulli."""
        total = 0
        for node in self.descendants():
            if node.is_decision:
                total += len(node.elements) - 1
            elif node.is_bernoulli:
                total += 1
        return total

    # -- semantics ----------------------------------------------------------
    def probability(self, assignment: Mapping[int, bool]) -> float:
        """Pr(x) for a complete assignment over this node's variables."""
        if self.is_literal:
            value = assignment[abs(self.literal)]
            return 1.0 if value == (self.literal > 0) else 0.0
        if self.is_bernoulli:
            var = abs(self.literal)
            return self.theta if assignment[var] else 1.0 - self.theta
        for prime, sub, theta in self.elements:
            if prime.contains(assignment):
                return theta * prime.probability(assignment) * \
                    sub.probability(assignment)
        return 0.0

    def contains(self, assignment: Mapping[int, bool]) -> bool:
        """Is the assignment in this node's support?"""
        return self.support.evaluate(assignment)

    def clone(self) -> "PsddNode":
        """A deep copy with independent parameters (same vtree objects).

        Clones share no mutable state with the original, so they can be
        trained on different data and compared with
        :func:`repro.psdd.queries.kl_divergence`.
        """
        copies: Dict[int, PsddNode] = {}
        for node in self.descendants():
            copy = PsddNode(node.id, node.kind, node.vtree,
                            literal=node.literal, theta=node.theta,
                            elements=[[copies[p.id], copies[s.id], t]
                                      for p, s, t in node.elements],
                            support=node.support)
            copies[node.id] = copy
        return copies[self.id]

    def __repr__(self) -> str:
        if self.is_literal:
            return f"PsddNode(lit {self.literal})"
        if self.is_bernoulli:
            return f"PsddNode(var {abs(self.literal)} ~ " \
                   f"Bernoulli({self.theta:.3f}))"
        return f"PsddNode(decision, {len(self.elements)} elements)"


class _PsddBuilder:
    def __init__(self, manager: SddManager):
        self.manager = manager
        self.memo: Dict[Tuple[int, int], PsddNode] = {}
        self.next_id = 0

    def fresh(self, **kwargs) -> PsddNode:
        node = PsddNode(self.next_id, **kwargs)
        self.next_id += 1
        return node

    def build(self, sdd: SddNode, vtree: Vtree) -> PsddNode:
        key = (sdd.id, vtree.position)
        hit = self.memo.get(key)
        if hit is not None:
            return hit
        node = self._build(sdd, vtree)
        self.memo[key] = node
        return node

    def _build(self, sdd: SddNode, vtree: Vtree) -> PsddNode:
        manager = self.manager
        if sdd.is_false:
            raise ValueError("cannot build a PSDD over an empty space")
        if vtree.is_leaf():
            if sdd.is_true:
                return self.fresh(kind=PsddNode.BERNOULLI, vtree=vtree,
                                  literal=vtree.var, theta=0.5,
                                  support=manager.true)
            if sdd.is_literal and abs(sdd.literal) == vtree.var:
                return self.fresh(kind=PsddNode.LITERAL, vtree=vtree,
                                  literal=sdd.literal, support=sdd)
            raise ValueError("SDD node does not fit the vtree leaf")
        # internal vtree node
        if sdd.is_true:
            elements = [[self.build(manager.true, vtree.left),
                         self.build(manager.true, vtree.right), 1.0]]
            return self.fresh(kind=PsddNode.DECISION, vtree=vtree,
                              elements=elements, support=manager.true)
        if sdd.is_decision and sdd.vtree is vtree:
            elements = []
            live = [(p, s) for p, s in sdd.elements if not s.is_false]
            uniform = 1.0 / len(live) if live else 0.0
            for prime, sub in live:
                elements.append([self.build(prime, vtree.left),
                                 self.build(sub, vtree.right), uniform])
            return self.fresh(kind=PsddNode.DECISION, vtree=vtree,
                              elements=elements, support=sdd)
        # the SDD lives deeper: lift it
        if vtree.left.is_ancestor_of(sdd.vtree):
            elements = [[self.build(sdd, vtree.left),
                         self.build(manager.true, vtree.right), 1.0]]
        elif vtree.right.is_ancestor_of(sdd.vtree):
            elements = [[self.build(manager.true, vtree.left),
                         self.build(sdd, vtree.right), 1.0]]
        else:
            raise ValueError("SDD node does not sit under the vtree node")
        return self.fresh(kind=PsddNode.DECISION, vtree=vtree,
                          elements=elements, support=sdd)


def psdd_from_sdd(sdd: SddNode, vtree: Vtree | None = None) -> PsddNode:
    """Build a PSDD (uniform initial parameters) over the support of
    ``sdd``, normalized for ``vtree`` (default: the manager's root).

    Learning (:mod:`repro.psdd.learn`) then sets the parameters from
    data; until then every decision node is uniform over its elements,
    which is *not* the uniform distribution over the support.
    """
    manager: SddManager = sdd.manager
    if vtree is None:
        vtree = manager.vtree
    builder = _PsddBuilder(manager)
    return builder.build(sdd, vtree)
