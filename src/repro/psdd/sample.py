"""Sampling from PSDD distributions (used to generate synthetic route /
ranking datasets, and by the uniform-sampling application of [75])."""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from .psdd import PsddNode

__all__ = ["sample", "sample_dataset"]


def sample(root: PsddNode, rng: random.Random | None = None
           ) -> Dict[int, bool]:
    """Draw one complete assignment from the PSDD distribution."""
    rng = rng or random.Random()
    assignment: Dict[int, bool] = {}
    stack: List[PsddNode] = [root]
    while stack:
        node = stack.pop()
        if node.is_literal:
            assignment[abs(node.literal)] = node.literal > 0
        elif node.is_bernoulli:
            assignment[abs(node.literal)] = rng.random() < node.theta
        else:
            pick = rng.random()
            cumulative = 0.0
            chosen = node.elements[-1]
            for element in node.elements:
                cumulative += element[2]
                if pick < cumulative:
                    chosen = element
                    break
            stack.append(chosen[0])
            stack.append(chosen[1])
    return assignment


def sample_dataset(root: PsddNode, n: int,
                   rng: random.Random | None = None
                   ) -> List[Tuple[Dict[int, bool], int]]:
    """Draw ``n`` samples, aggregated into (assignment, count) pairs."""
    rng = rng or random.Random()
    counts: Dict[Tuple[Tuple[int, bool], ...], int] = {}
    for _ in range(n):
        assignment = sample(root, rng)
        key = tuple(sorted(assignment.items()))
        counts[key] = counts.get(key, 0) + 1
    return [(dict(key), count) for key, count in counts.items()]
