"""Multiplying PSDDs ([76]; used to turn an SBN into a classical PSDD).

Given PSDDs p and q over the same vtree, their product is the
(unnormalised) function p(x)·q(x).  The algorithm of Shen, Choi &
Darwiche computes a PSDD for the *normalised* product together with the
normalisation constant Z = Σ_x p(x)q(x), recursively: products of
decision nodes pair up their elements (primes intersect, subs
multiply), products of leaves are closed-form.

The resulting PSDD may be *uncompressed* (distinct elements can share a
sub), which PSDDs allow even though canonical SDDs do not.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sdd.manager import SddManager
from .psdd import PsddNode

__all__ = ["multiply"]


class _Multiplier:
    def __init__(self, manager: SddManager):
        self.manager = manager
        self.cache: Dict[Tuple[int, int],
                         Tuple[Optional[PsddNode], float]] = {}
        self.next_id = 0

    def fresh(self, **kwargs) -> PsddNode:
        node = PsddNode(self.next_id, **kwargs)
        self.next_id += 1
        return node

    def multiply(self, p: PsddNode, q: PsddNode
                 ) -> Tuple[Optional[PsddNode], float]:
        """Returns (normalised product node, constant); (None, 0) when
        the supports are disjoint."""
        key = (p.id, q.id) if p.id <= q.id else (q.id, p.id)
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        result = self._multiply(p, q)
        self.cache[key] = result
        return result

    def _multiply(self, p: PsddNode, q: PsddNode
                  ) -> Tuple[Optional[PsddNode], float]:
        if p.vtree is not q.vtree:
            raise ValueError("PSDDs must be normalized for the same vtree")
        if p.is_literal and q.is_literal:
            if p.literal == q.literal:
                return p, 1.0
            return None, 0.0
        if p.is_literal and q.is_bernoulli:
            weight = q.theta if p.literal > 0 else 1.0 - q.theta
            return (p, weight) if weight > 0 else (None, 0.0)
        if p.is_bernoulli and q.is_literal:
            return self._multiply(q, p)
        if p.is_bernoulli and q.is_bernoulli:
            on = p.theta * q.theta
            off = (1.0 - p.theta) * (1.0 - q.theta)
            constant = on + off
            if constant == 0.0:
                return None, 0.0
            node = self.fresh(kind=PsddNode.BERNOULLI, vtree=p.vtree,
                              literal=p.literal, theta=on / constant,
                              support=self.manager.true)
            return node, constant
        if p.is_decision and q.is_decision:
            elements: List[List] = []
            constant = 0.0
            support = self.manager.false
            for p_prime, p_sub, p_theta in p.elements:
                if p_theta == 0.0:
                    continue
                for q_prime, q_sub, q_theta in q.elements:
                    if q_theta == 0.0:
                        continue
                    prime, prime_c = self.multiply(p_prime, q_prime)
                    if prime is None or prime_c == 0.0:
                        continue
                    sub, sub_c = self.multiply(p_sub, q_sub)
                    if sub is None or sub_c == 0.0:
                        continue
                    weight = p_theta * q_theta * prime_c * sub_c
                    elements.append([prime, sub, weight])
                    constant += weight
                    support = self.manager.disjoin(
                        support,
                        self.manager.conjoin(prime.support, sub.support))
            if not elements:
                return None, 0.0
            for element in elements:
                element[2] /= constant
            node = self.fresh(kind=PsddNode.DECISION, vtree=p.vtree,
                              elements=elements, support=support)
            return node, constant
        raise ValueError(
            f"incompatible PSDD node kinds {p.kind!r} and {q.kind!r} "
            "at the same vtree node")


def multiply(p: PsddNode, q: PsddNode
             ) -> Tuple[Optional[PsddNode], float]:
    """The normalised product of two same-vtree PSDDs and its constant.

    ``product.probability(x) * constant == p.probability(x) *
    q.probability(x)`` for every complete x; returns ``(None, 0.0)``
    when the supports are disjoint.

    Both PSDDs must have been built against the same
    :class:`~repro.sdd.manager.SddManager` (their supports are combined
    with its apply).
    """
    if p.support is None or q.support is None:
        raise ValueError("PSDD nodes must carry their supports")
    manager = p.support.manager
    if q.support.manager is not manager:
        raise ValueError("PSDDs must share an SDD manager")
    return _Multiplier(manager).multiply(p, q)
