"""PSDD queries: marginals, MPE, entropy, KL — all linear in PSDD size.

The paper: "Both MPE and MAR queries can be computed in time linear in
the PSDD size [44]."

Two many-query fast paths live here as well: ``marginal_batch``
answers N evidence instantiations in one numpy sweep over the PSDD
(one length-N row per node), and ``variable_marginals`` computes
Pr(X=1) for *every* variable from a single upward + downward
derivative pass instead of |vars| full evaluations (the legacy
per-variable loop survives as ``variable_marginals_legacy`` for
cross-checking).
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence, Tuple

from .psdd import PsddNode

__all__ = ["marginal", "marginal_legacy", "marginal_batch", "mpe",
           "entropy", "kl_divergence", "support_size",
           "variable_marginals", "variable_marginals_legacy"]


def marginal(root: PsddNode, evidence: Mapping[int, bool]) -> float:
    """Pr(evidence) for a partial assignment (MAR).

    Runs on the shared IR kernel (:mod:`repro.ir`): the PSDD structure
    lowers once (cached) with ``KIND_PARAM`` leaves for the θs, and the
    parameter vector is re-read from the live nodes per call — in-place
    θ updates are always reflected.  Evidence becomes literal weights
    (set variable → 1/0, unset → 1/1).  The seed's recursive traversal
    survives as :func:`marginal_legacy` (``REPRO_LEGACY=1`` routes back
    to it).
    """
    from ..compat import legacy_enabled
    if legacy_enabled():
        return marginal_legacy(root, evidence)
    from ..ir import ir_kernel, psdd_to_ir
    ir, params = psdd_to_ir(root)
    weights: Dict[int, float] = {}
    for var in ir.variables():
        if var in evidence:
            weights[var] = 1.0 if evidence[var] else 0.0
            weights[-var] = 0.0 if evidence[var] else 1.0
        else:
            weights[var] = weights[-var] = 1.0
    return ir_kernel(ir).wmc(weights, params=params)


def marginal_legacy(root: PsddNode, evidence: Mapping[int, bool]) -> float:
    """The seed MAR traversal (dict-per-call recursion).

    .. deprecated:: access via :mod:`repro.compat`; kept as the
       cross-check reference and benchmark baseline.
    """
    cache: Dict[int, float] = {}

    def value(node: PsddNode) -> float:
        hit = cache.get(node.id)
        if hit is not None:
            return hit
        if node.is_literal:
            var = abs(node.literal)
            if var in evidence:
                result = 1.0 if evidence[var] == (node.literal > 0) else 0.0
            else:
                result = 1.0
        elif node.is_bernoulli:
            var = abs(node.literal)
            if var in evidence:
                result = node.theta if evidence[var] else 1.0 - node.theta
            else:
                result = 1.0
        else:
            result = sum(theta * value(prime) * value(sub)
                         for prime, sub, theta in node.elements)
        cache[node.id] = result
        return result

    return value(root)


def marginal_batch(root: PsddNode,
                   evidence_batch: Sequence[Mapping[int, bool]]
                   ) -> "object":
    """Pr(evidence) for N partial assignments in one numpy sweep.

    Column ``j`` of the returned length-N float array equals
    ``marginal(root, evidence_batch[j])``; each PSDD node is visited
    once with a length-N value row.
    """
    import numpy as np
    evidence_batch = list(evidence_batch)
    n = len(evidence_batch)
    # per-variable "is set" masks and set values, built lazily
    set_mask: Dict[int, object] = {}
    set_value: Dict[int, object] = {}

    def columns(var: int):
        if var not in set_mask:
            set_mask[var] = np.array([var in e for e in evidence_batch],
                                     dtype=bool)
            set_value[var] = np.array([e.get(var, False)
                                       for e in evidence_batch],
                                      dtype=bool)
        return set_mask[var], set_value[var]

    values: Dict[int, object] = {}
    ones = np.ones(n)
    for node in root.descendants():
        if node.is_literal:
            mask, value = columns(abs(node.literal))
            match = value == (node.literal > 0)
            row = np.where(mask, match.astype(float), ones)
        elif node.is_bernoulli:
            mask, value = columns(abs(node.literal))
            row = np.where(mask,
                           np.where(value, node.theta, 1.0 - node.theta),
                           ones)
        else:
            row = np.zeros(n)
            for prime, sub, theta in node.elements:
                row = row + theta * values[prime.id] * values[sub.id]
        values[node.id] = row
    return values[root.id]


def variable_marginals(root: PsddNode) -> Dict[int, float]:
    """Pr(X = 1) for every variable, from one upward + downward pass.

    With no evidence every node's upward value is 1 (each node is a
    normalized distribution over its vtree variables), so only the
    downward pass matters: the derivative of a node is the probability
    mass flowing through it, and Pr(X = 1) is the derivative-weighted
    sum of the leaf distributions over X — |vars| evaluations collapse
    into a single traversal.
    """
    from ..compat import legacy_enabled
    if legacy_enabled():
        return variable_marginals_legacy(root)
    order = root.descendants()
    derivative: Dict[int, float] = {node.id: 0.0 for node in order}
    derivative[root.id] = 1.0
    result: Dict[int, float] = {}
    for node in reversed(order):
        d = derivative[node.id]
        if node.is_decision:
            # upward values are all 1, so each element passes d·θ to
            # both its prime and its sub
            for prime, sub, theta in node.elements:
                flow = d * theta
                derivative[prime.id] += flow
                derivative[sub.id] += flow
        elif node.is_literal:
            var = abs(node.literal)
            if node.literal > 0:
                result[var] = result.get(var, 0.0) + d
            else:
                result.setdefault(var, 0.0)
        else:  # bernoulli
            var = abs(node.literal)
            result[var] = result.get(var, 0.0) + d * node.theta
    for var in root.variables():
        result.setdefault(var, 0.0)
    return {var: result[var] for var in sorted(result)}


def variable_marginals_legacy(root: PsddNode) -> Dict[int, float]:
    """Pr(X = 1) for every variable, by |vars| evidence evaluations —
    the reference implementation :func:`variable_marginals` is
    cross-checked against.

    .. deprecated:: access via :mod:`repro.compat`; kept as the
       cross-check reference and benchmark baseline.
    """
    return {var: marginal_legacy(root, {var: True})
            for var in sorted(root.variables())}


def mpe(root: PsddNode, evidence: Mapping[int, bool] | None = None
        ) -> Tuple[Dict[int, bool], float]:
    """The most probable completion of ``evidence`` and its probability."""
    evidence = dict(evidence or {})
    value_cache: Dict[int, float] = {}
    choice_cache: Dict[int, int] = {}

    def value(node: PsddNode) -> float:
        hit = value_cache.get(node.id)
        if hit is not None:
            return hit
        if node.is_literal:
            var = abs(node.literal)
            if var in evidence:
                result = 1.0 if evidence[var] == (node.literal > 0) else 0.0
            else:
                result = 1.0
        elif node.is_bernoulli:
            var = abs(node.literal)
            if var in evidence:
                result = node.theta if evidence[var] else 1.0 - node.theta
            else:
                result = max(node.theta, 1.0 - node.theta)
        else:
            best, best_index = -1.0, 0
            for i, (prime, sub, theta) in enumerate(node.elements):
                candidate = theta * value(prime) * value(sub)
                if candidate > best:
                    best, best_index = candidate, i
            choice_cache[node.id] = best_index
            result = best
        value_cache[node.id] = result
        return result

    best_value = value(root)
    assignment: Dict[int, bool] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_literal:
            assignment[abs(node.literal)] = node.literal > 0
        elif node.is_bernoulli:
            var = abs(node.literal)
            if var in evidence:
                assignment[var] = evidence[var]
            else:
                assignment[var] = node.theta >= 1.0 - node.theta
        else:
            prime, sub, _theta = node.elements[choice_cache[node.id]]
            stack.append(prime)
            stack.append(sub)
    # evidence may pin literals that the chosen path already fixed; the
    # path choice respected evidence through the value computation, but a
    # literal node contradicting evidence can be chosen only when the
    # evidence has probability 0
    for var, value_ in evidence.items():
        if assignment.get(var, value_) != value_:
            return dict(evidence), 0.0
        assignment[var] = value_
    return assignment, best_value


def support_size(root: PsddNode) -> int:
    """Number of assignments in the support (satisfying SDD inputs)."""
    cache: Dict[int, int] = {}

    def count(node: PsddNode) -> int:
        hit = cache.get(node.id)
        if hit is not None:
            return hit
        if node.is_literal:
            result = 1
        elif node.is_bernoulli:
            result = 2
        else:
            result = sum(count(prime) * count(sub)
                         for prime, sub, _theta in node.elements)
        cache[node.id] = result
        return result

    return count(root)


def entropy(root: PsddNode) -> float:
    """Shannon entropy (nats) of the PSDD distribution, computed
    recursively: H(node) = Σᵢ θᵢ (−log θᵢ + H(primeᵢ) + H(subᵢ))."""
    cache: Dict[int, float] = {}

    def h(node: PsddNode) -> float:
        hit = cache.get(node.id)
        if hit is not None:
            return hit
        if node.is_literal:
            result = 0.0
        elif node.is_bernoulli:
            result = _bernoulli_entropy(node.theta)
        else:
            result = 0.0
            for prime, sub, theta in node.elements:
                if theta > 0:
                    result += theta * (-math.log(theta) + h(prime) + h(sub))
        cache[node.id] = result
        return result

    return h(root)


def _bernoulli_entropy(theta: float) -> float:
    result = 0.0
    for p in (theta, 1.0 - theta):
        if p > 0:
            result -= p * math.log(p)
    return result


def kl_divergence(p_root: PsddNode, q_root: PsddNode) -> float:
    """KL(P ‖ Q) for two PSDDs with *identical structure* (same circuit,
    different parameters) — the common case after learning the same
    compiled SDD on two datasets."""
    cache: Dict[Tuple[int, int], float] = {}

    def kl(p: PsddNode, q: PsddNode) -> float:
        key = (p.id, q.id)
        hit = cache.get(key)
        if hit is not None:
            return hit
        if p.kind != q.kind or p.vtree is not q.vtree:
            raise ValueError("PSDDs do not share structure")
        if p.is_literal:
            if p.literal != q.literal:
                raise ValueError("PSDDs do not share structure")
            result = 0.0
        elif p.is_bernoulli:
            result = _bernoulli_kl(p.theta, q.theta)
        else:
            if len(p.elements) != len(q.elements):
                raise ValueError("PSDDs do not share structure")
            result = 0.0
            for (pp, ps, pt), (qp, qs, qt) in zip(p.elements, q.elements):
                if pt == 0.0:
                    continue
                if qt == 0.0:
                    result = float("inf")
                    break
                result += pt * (math.log(pt / qt) + kl(pp, qp) + kl(ps, qs))
        cache[key] = result
        return result

    return kl(p_root, q_root)


def _bernoulli_kl(p: float, q: float) -> float:
    result = 0.0
    for a, b in ((p, q), (1.0 - p, 1.0 - q)):
        if a == 0.0:
            continue
        if b == 0.0:
            return float("inf")
        result += a * math.log(a / b)
    return result
