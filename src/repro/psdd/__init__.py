"""Probabilistic SDDs: learning distributions over structured spaces."""

from .psdd import PsddNode, psdd_from_sdd
from .learn import WeightedData, learn_parameters, log_likelihood
from .queries import (entropy, kl_divergence, marginal, marginal_batch,
                      mpe, support_size, variable_marginals)
from .sample import sample, sample_dataset
from .multiply import multiply
from .em import em_learn, incomplete_log_likelihood

__all__ = ["PsddNode", "psdd_from_sdd", "WeightedData",
           "learn_parameters", "log_likelihood", "entropy",
           "kl_divergence", "marginal", "marginal_batch", "mpe",
           "support_size", "variable_marginals", "sample",
           "sample_dataset", "multiply", "em_learn",
           "incomplete_log_likelihood"]
