"""Maximum-likelihood PSDD parameter learning from complete data [44].

With complete data, ML parameters come from one pass per example: walk
the circuit along the (unique, by strong determinism) active path,
counting how often each element / Bernoulli fires; parameters are the
normalized counts (Fig 15).  Time is linear in circuit size × data
size, as the paper states.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence, Tuple

from .psdd import PsddNode

__all__ = ["learn_parameters", "log_likelihood", "WeightedData"]

#: complete assignments with multiplicities, e.g. from Fig 15's table
WeightedData = Sequence[Tuple[Mapping[int, bool], float]]


def learn_parameters(root: PsddNode, data: WeightedData,
                     alpha: float = 0.0) -> PsddNode:
    """Set ML parameters in place (returns ``root`` for chaining).

    Parameters
    ----------
    data:
        Sequence of ``(assignment, count)`` pairs; assignments must be
        complete over the PSDD variables and inside its support.
    alpha:
        Laplace smoothing pseudo-count added per element / per Bernoulli
        value (0 = plain maximum likelihood).
    """
    element_counts: Dict[int, List[float]] = {}
    bernoulli_counts: Dict[int, List[float]] = {}  # [neg, pos]
    for node in root.descendants():
        if node.is_decision:
            element_counts[node.id] = [0.0] * len(node.elements)
        elif node.is_bernoulli:
            bernoulli_counts[node.id] = [0.0, 0.0]

    for assignment, count in data:
        if count < 0:
            raise ValueError("negative example count")
        _count_example(root, assignment, count, element_counts,
                       bernoulli_counts)

    for node in root.descendants():
        if node.is_decision:
            counts = element_counts[node.id]
            total = sum(counts) + alpha * len(counts)
            if total > 0:
                for i, element in enumerate(node.elements):
                    element[2] = (counts[i] + alpha) / total
            else:  # node never visited: keep a uniform distribution
                uniform = 1.0 / len(node.elements)
                for element in node.elements:
                    element[2] = uniform
        elif node.is_bernoulli:
            neg, pos = bernoulli_counts[node.id]
            total = neg + pos + 2 * alpha
            node.theta = (pos + alpha) / total if total > 0 else 0.5
    return root


def _count_example(root: PsddNode, assignment: Mapping[int, bool],
                   count: float,
                   element_counts: Dict[int, List[float]],
                   bernoulli_counts: Dict[int, List[float]]) -> None:
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_literal:
            value = assignment[abs(node.literal)]
            if value != (node.literal > 0):
                raise ValueError(
                    f"example {dict(assignment)} is outside the PSDD "
                    "support (violates the symbolic knowledge)")
        elif node.is_bernoulli:
            var = abs(node.literal)
            bernoulli_counts[node.id][1 if assignment[var] else 0] += count
        else:
            for i, (prime, sub, _theta) in enumerate(node.elements):
                if prime.contains(assignment):
                    element_counts[node.id][i] += count
                    stack.append(prime)
                    stack.append(sub)
                    break
            else:
                raise ValueError(
                    f"example {dict(assignment)} is outside the PSDD "
                    "support (violates the symbolic knowledge)")


def log_likelihood(root: PsddNode, data: WeightedData) -> float:
    """Σ count · log Pr(example); -inf if any example has probability 0."""
    total = 0.0
    for assignment, count in data:
        p = root.probability(assignment)
        if p == 0.0:
            return float("-inf")
        total += count * math.log(p)
    return total
