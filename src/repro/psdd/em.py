"""EM parameter learning for PSDDs from *incomplete* data ([17]).

With missing values, ML parameters have no closed form; EM alternates:

* E-step — for each partial example, compute the expected number of
  times each element / Bernoulli value fires, by an upward (marginal)
  pass followed by a downward flow pass on the PSDD;
* M-step — normalise the expected counts, exactly as in the complete-
  data learner.

The flow computation is the standard probabilistic-circuits recipe:
``flow(root) = 1``; an or-element (p, s, θ) receives
``flow(node) · θ·val(p)·val(s) / val(node)``, which it passes to both
its prime and its sub.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence, Tuple

from .psdd import PsddNode

__all__ = ["em_learn", "incomplete_log_likelihood"]

PartialData = Sequence[Tuple[Mapping[int, bool], float]]


def incomplete_log_likelihood(root: PsddNode, data: PartialData) -> float:
    """Σ count · log Pr(partial example) (marginal likelihood)."""
    from .queries import marginal
    total = 0.0
    for evidence, count in data:
        p = marginal(root, evidence)
        if p == 0.0:
            return float("-inf")
        total += count * math.log(p)
    return total


def em_learn(root: PsddNode, data: PartialData, iterations: int = 30,
             alpha: float = 0.01, tolerance: float = 1e-7) -> List[float]:
    """Run EM in place; returns the log-likelihood trace.

    ``alpha`` is a Laplace pseudo-count applied at every M-step (it also
    keeps parameters off the boundary, which EM cannot leave).  Stops
    early when the likelihood improves by less than ``tolerance``.
    """
    trace: List[float] = []
    for _ in range(iterations):
        element_counts: Dict[int, List[float]] = {}
        bernoulli_counts: Dict[int, List[float]] = {}
        for node in root.descendants():
            if node.is_decision:
                element_counts[node.id] = [0.0] * len(node.elements)
            elif node.is_bernoulli:
                bernoulli_counts[node.id] = [0.0, 0.0]
        log_likelihood = 0.0
        for evidence, count in data:
            p = _accumulate_flows(root, evidence, count,
                                  element_counts, bernoulli_counts)
            if p == 0.0:
                raise ValueError(
                    f"evidence {dict(evidence)} has probability zero "
                    "under the current parameters")
            log_likelihood += count * math.log(p)
        trace.append(log_likelihood)
        _m_step(root, element_counts, bernoulli_counts, alpha)
        if len(trace) >= 2 and trace[-1] - trace[-2] < tolerance:
            break
    return trace


def _evidence_value(node: PsddNode, evidence: Mapping[int, bool],
                    cache: Dict[int, float]) -> float:
    hit = cache.get(node.id)
    if hit is not None:
        return hit
    if node.is_literal:
        var = abs(node.literal)
        if var in evidence:
            value = 1.0 if evidence[var] == (node.literal > 0) else 0.0
        else:
            value = 1.0
    elif node.is_bernoulli:
        var = abs(node.literal)
        if var in evidence:
            value = node.theta if evidence[var] else 1.0 - node.theta
        else:
            value = 1.0
    else:
        value = sum(theta
                    * _evidence_value(prime, evidence, cache)
                    * _evidence_value(sub, evidence, cache)
                    for prime, sub, theta in node.elements)
    cache[node.id] = value
    return value


def _accumulate_flows(root: PsddNode, evidence: Mapping[int, bool],
                      count: float,
                      element_counts: Dict[int, List[float]],
                      bernoulli_counts: Dict[int, List[float]]) -> float:
    """One E-step example: returns Pr(evidence), adds expected counts."""
    values: Dict[int, float] = {}
    p_evidence = _evidence_value(root, evidence, values)
    if p_evidence == 0.0:
        return 0.0
    flows: Dict[int, float] = {root.id: count}
    order = root.descendants()  # children first; traverse reversed
    for node in reversed(order):
        flow = flows.get(node.id, 0.0)
        if flow == 0.0:
            continue
        if node.is_bernoulli:
            var = abs(node.literal)
            if var in evidence:
                bernoulli_counts[node.id][1 if evidence[var] else 0] += \
                    flow
            else:
                bernoulli_counts[node.id][1] += flow * node.theta
                bernoulli_counts[node.id][0] += flow * (1.0 - node.theta)
        elif node.is_decision:
            total = values[node.id]
            if total == 0.0:
                continue
            for i, (prime, sub, theta) in enumerate(node.elements):
                contribution = theta * values[prime.id] * values[sub.id]
                if contribution == 0.0:
                    continue
                share = flow * contribution / total
                element_counts[node.id][i] += share
                flows[prime.id] = flows.get(prime.id, 0.0) + share
                flows[sub.id] = flows.get(sub.id, 0.0) + share
    return p_evidence


def _m_step(root: PsddNode, element_counts: Dict[int, List[float]],
            bernoulli_counts: Dict[int, List[float]],
            alpha: float) -> None:
    for node in root.descendants():
        if node.is_decision:
            counts = element_counts[node.id]
            total = sum(counts) + alpha * len(counts)
            if total > 0:
                for i, element in enumerate(node.elements):
                    element[2] = (counts[i] + alpha) / total
        elif node.is_bernoulli:
            neg, pos = bernoulli_counts[node.id]
            total = neg + pos + 2 * alpha
            if total > 0:
                node.theta = (pos + alpha) / total
