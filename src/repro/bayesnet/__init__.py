"""Discrete Bayesian networks, variable elimination, the Fig 2 queries."""

from .factor import Factor
from .network import BayesianNetwork, Cpt
from .elimination import eliminate, marginal, min_fill_order, posterior
from .queries import (d_map, d_mar, d_mpe, d_sdp, map_query, mar, mpe, sdp)
from .examples import chain_network, medical_network, random_network
from .sampling import (forward_sample, gibbs_sampling,
                       likelihood_weighting, sample_dataset)

__all__ = ["Factor", "BayesianNetwork", "Cpt", "eliminate", "marginal",
           "min_fill_order", "posterior", "d_map", "d_mar", "d_mpe",
           "d_sdp", "map_query", "mar", "mpe", "sdp", "chain_network",
           "medical_network", "random_network", "forward_sample",
           "likelihood_weighting", "sample_dataset", "gibbs_sampling"]
