"""Variable elimination — the classical dedicated inference algorithm.

The paper (Section 2) contrasts dedicated algorithms like VE with the
reduction-to-WMC route; both are implemented here so the SEC2.2
benchmark can check them against each other.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from .factor import Factor
from .network import BayesianNetwork

__all__ = ["eliminate", "marginal", "posterior", "min_fill_order"]


def min_fill_order(network: BayesianNetwork,
                   keep: Iterable[str] = ()) -> List[str]:
    """A min-fill elimination order over variables not in ``keep``."""
    keep = set(keep)
    # build the moral graph
    neighbours: Dict[str, set] = {v: set() for v in network.variables}
    for name in network.variables:
        family = set(network.parents(name)) | {name}
        for a in family:
            for b in family:
                if a != b:
                    neighbours[a].add(b)
    order: List[str] = []
    remaining = [v for v in network.variables if v not in keep]
    while remaining:
        def fill_cost(v: str) -> int:
            nbrs = [n for n in neighbours[v] if n not in order]
            return sum(1 for i, a in enumerate(nbrs)
                       for b in nbrs[i + 1:] if b not in neighbours[a])
        best = min(remaining, key=lambda v: (fill_cost(v), v))
        order.append(best)
        remaining.remove(best)
        nbrs = [n for n in neighbours[best] if n not in order]
        for a in nbrs:
            for b in nbrs:
                if a != b:
                    neighbours[a].add(b)
    return order


def eliminate(factors: Sequence[Factor], order: Sequence[str]) -> Factor:
    """Sum out variables in ``order`` from the factor product."""
    factors = list(factors)
    for variable in order:
        involved = [f for f in factors if variable in f.variables]
        if not involved:
            continue
        product = involved[0]
        for factor in involved[1:]:
            product = product.multiply(factor)
        summed = product.sum_out([variable])
        factors = [f for f in factors if variable not in f.variables]
        factors.append(summed)
    result = Factor.unit()
    for factor in factors:
        result = result.multiply(factor)
    return result


def marginal(network: BayesianNetwork, query: Sequence[str],
             evidence: Mapping[str, int] | None = None) -> Factor:
    """The (unnormalized) marginal over ``query`` given ``evidence``:
    Pr(query, evidence) as a factor.

    Normalize (or divide by Pr(evidence)) for conditional queries; see
    :func:`posterior`.
    """
    evidence = dict(evidence or {})
    factors = [f.reduce(evidence) for f in network.factors()]
    order = min_fill_order(network,
                           keep=set(query) | set(evidence))
    order = [v for v in order if v not in evidence]
    return eliminate(factors, order)


def posterior(network: BayesianNetwork, query: Sequence[str],
              evidence: Mapping[str, int] | None = None) -> Factor:
    """Pr(query | evidence), normalized.  Raises on zero-probability
    evidence."""
    return marginal(network, query, evidence).normalize()
