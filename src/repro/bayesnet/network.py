"""Discrete Bayesian networks.

A network is a DAG of named variables; each variable carries a CPT
conditioned on its parents (Fig 2, Fig 4).  The induced distribution is
the product of CPT entries compatible with each joint instantiation —
exactly the table the paper shows in Fig 4.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from .factor import Factor

__all__ = ["BayesianNetwork", "Cpt"]


class Cpt:
    """A conditional probability table.

    ``values`` has shape ``(*parent cards, own card)``; each slice over
    the last axis must sum to 1.
    """

    __slots__ = ("variable", "parents", "values")

    def __init__(self, variable: str, parents: Sequence[str],
                 values: np.ndarray):
        values = np.asarray(values, dtype=float)
        if np.any(values < 0):
            raise ValueError(f"negative probability in CPT of {variable}")
        sums = values.sum(axis=-1)
        if not np.allclose(sums, 1.0):
            raise ValueError(
                f"CPT rows of {variable} must sum to 1 (got {sums})")
        self.variable = variable
        self.parents = tuple(parents)
        self.values = values

    @property
    def cardinality(self) -> int:
        return self.values.shape[-1]

    def __repr__(self) -> str:
        if self.parents:
            return f"Cpt({self.variable} | {', '.join(self.parents)})"
        return f"Cpt({self.variable})"


class BayesianNetwork:
    """A Bayesian network over named discrete variables."""

    def __init__(self):
        self._cpts: Dict[str, Cpt] = {}
        self._order: List[str] = []

    # -- construction -----------------------------------------------------------
    def add_variable(self, name: str, parents: Sequence[str],
                     values) -> "BayesianNetwork":
        """Add a variable with its CPT.  Parents must already exist.

        Returns self so calls can be chained.
        """
        if name in self._cpts:
            raise ValueError(f"variable {name!r} already present")
        for parent in parents:
            if parent not in self._cpts:
                raise ValueError(f"unknown parent {parent!r} of {name!r}")
        cpt = Cpt(name, parents, np.asarray(values, dtype=float))
        expected = tuple(self.cardinality(p) for p in parents) + \
            (cpt.cardinality,)
        if cpt.values.shape != expected:
            raise ValueError(
                f"CPT of {name!r} has shape {cpt.values.shape}, "
                f"expected {expected}")
        self._cpts[name] = cpt
        self._order.append(name)
        return self

    # -- structure ---------------------------------------------------------------
    @property
    def variables(self) -> List[str]:
        """Variables in insertion (hence topological) order."""
        return list(self._order)

    def cpt(self, name: str) -> Cpt:
        return self._cpts[name]

    def parents(self, name: str) -> Tuple[str, ...]:
        return self._cpts[name].parents

    def cardinality(self, name: str) -> int:
        return self._cpts[name].cardinality

    def cardinalities(self) -> Dict[str, int]:
        return {v: self.cardinality(v) for v in self._order}

    def parameter_count(self) -> int:
        """Total number of CPT entries (Fig 4's network has ten)."""
        return sum(cpt.values.size for cpt in self._cpts.values())

    def factors(self) -> List[Factor]:
        """One factor per CPT (the VE starting point)."""
        cards = self.cardinalities()
        result = []
        for name in self._order:
            cpt = self._cpts[name]
            variables = cpt.parents + (name,)
            result.append(Factor(variables, cards, cpt.values))
        return result

    # -- joint distribution --------------------------------------------------------
    def states(self) -> Iterator[Dict[str, int]]:
        """All joint instantiations, in lexicographic state order."""
        names = self._order
        ranges = [range(self.cardinality(v)) for v in names]
        for state in itertools.product(*ranges):
            yield dict(zip(names, state))

    def probability(self, instantiation: Mapping[str, int]) -> float:
        """Probability of a complete instantiation: the product of
        compatible CPT entries (the Fig 4 semantics)."""
        value = 1.0
        for name in self._order:
            cpt = self._cpts[name]
            index = tuple(instantiation[p] for p in cpt.parents) + \
                (instantiation[name],)
            value *= float(cpt.values[index])
        return value

    def joint_factor(self) -> Factor:
        """The full joint as a single factor (small networks only)."""
        result = Factor.unit()
        for factor in self.factors():
            result = result.multiply(factor)
        return result

    def __repr__(self) -> str:
        return f"BayesianNetwork({len(self._order)} variables)"
