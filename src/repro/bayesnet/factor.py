"""Discrete factors (potentials) over named variables, on numpy.

A :class:`Factor` maps joint states of its variables to non-negative
reals.  Factors are the working objects of variable elimination:
multiply, sum out, max out, reduce by evidence, normalize.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["Factor"]


class Factor:
    """An immutable factor.

    Parameters
    ----------
    variables:
        Ordered variable names; one array axis per variable.
    cardinalities:
        Mapping of each variable to its number of states.
    values:
        Array of shape ``tuple(cardinalities[v] for v in variables)``.
    """

    __slots__ = ("variables", "cardinalities", "values")

    def __init__(self, variables: Sequence[str],
                 cardinalities: Mapping[str, int],
                 values: np.ndarray):
        variables = tuple(variables)
        if len(set(variables)) != len(variables):
            raise ValueError("duplicate variables in factor")
        shape = tuple(cardinalities[v] for v in variables)
        values = np.asarray(values, dtype=float)
        if values.shape != shape:
            raise ValueError(f"values shape {values.shape} != {shape}")
        object.__setattr__(self, "variables", variables)
        object.__setattr__(self, "cardinalities",
                           {v: cardinalities[v] for v in variables})
        object.__setattr__(self, "values", values)

    def __setattr__(self, *args):
        raise AttributeError("Factor objects are immutable")

    # -- constructors ------------------------------------------------------
    @classmethod
    def unit(cls) -> "Factor":
        """The empty factor with value 1 (multiplicative identity)."""
        return cls((), {}, np.array(1.0))

    @classmethod
    def from_dict(cls, variables: Sequence[str],
                  cardinalities: Mapping[str, int],
                  table: Mapping[Tuple[int, ...], float]) -> "Factor":
        """Build from a dict of state-tuples (missing entries are 0)."""
        shape = tuple(cardinalities[v] for v in variables)
        values = np.zeros(shape)
        for state, value in table.items():
            values[state] = value
        return cls(variables, cardinalities, values)

    # -- views ---------------------------------------------------------------
    def __call__(self, assignment: Mapping[str, int]) -> float:
        """Value at a (super)assignment of the factor's variables."""
        index = tuple(assignment[v] for v in self.variables)
        return float(self.values[index])

    def __repr__(self) -> str:
        return f"Factor({', '.join(self.variables)})"

    def total(self) -> float:
        return float(self.values.sum())

    # -- algebra ---------------------------------------------------------------
    def multiply(self, other: "Factor") -> "Factor":
        """Pointwise product, aligning shared variables."""
        variables = list(self.variables)
        variables += [v for v in other.variables if v not in variables]
        cards = {**self.cardinalities, **other.cardinalities}
        for v in set(self.variables) & set(other.variables):
            if self.cardinalities[v] != other.cardinalities[v]:
                raise ValueError(f"cardinality mismatch on {v}")
        lhs = self._broadcast(variables, cards)
        rhs = other._broadcast(variables, cards)
        return Factor(variables, cards, lhs * rhs)

    def _broadcast(self, variables: List[str],
                   cards: Mapping[str, int]) -> np.ndarray:
        axes = [variables.index(v) for v in self.variables]
        expanded = np.moveaxis(
            self.values.reshape(self.values.shape + (1,) * (
                len(variables) - len(self.variables))),
            range(len(self.variables)), axes)
        shape = tuple(cards[v] for v in variables)
        return np.broadcast_to(expanded, shape)

    def sum_out(self, variables: Iterable[str]) -> "Factor":
        """Marginalize the given variables away by summation."""
        return self._reduce_axes(variables, np.sum)

    def max_out(self, variables: Iterable[str]) -> "Factor":
        """Marginalize the given variables away by maximisation."""
        return self._reduce_axes(variables, np.max)

    def _reduce_axes(self, variables: Iterable[str], op) -> "Factor":
        drop = [v for v in variables if v in self.variables]
        if not drop:
            return self
        axes = tuple(self.variables.index(v) for v in drop)
        remaining = [v for v in self.variables if v not in drop]
        values = op(self.values, axis=axes)
        return Factor(remaining, self.cardinalities, values)

    def reduce(self, evidence: Mapping[str, int]) -> "Factor":
        """Fix evidence variables to given states (drops those axes)."""
        relevant = {v: s for v, s in evidence.items()
                    if v in self.variables}
        if not relevant:
            return self
        index = tuple(relevant.get(v, slice(None)) for v in self.variables)
        remaining = [v for v in self.variables if v not in relevant]
        return Factor(remaining, self.cardinalities, self.values[index])

    def normalize(self) -> "Factor":
        """Scale to total mass 1 (raises on the zero factor)."""
        total = self.values.sum()
        if total == 0:
            raise ZeroDivisionError("cannot normalize a zero factor")
        return Factor(self.variables, self.cardinalities,
                      self.values / total)

    def argmax(self) -> Dict[str, int]:
        """The state of maximal value (ties broken lexicographically)."""
        flat = int(np.argmax(self.values))
        state = np.unravel_index(flat, self.values.shape)
        return dict(zip(self.variables, map(int, state)))
