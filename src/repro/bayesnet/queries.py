"""The four queries of Fig 2: MPE, MAR, MAP, SDP — and their decision
versions D-MPE, D-MAR, D-MAP, D-SDP that are complete for NP, PP,
NP^PP and PP^PP respectively.

These implementations are *dedicated* algorithms (VE plus enumeration
over the query variables), the classical route the paper contrasts with
reduction to weighted model counting; the WMC route lives in
:mod:`repro.wmc`.  Exactness is the goal here, not scale: MAP and SDP
enumerate the instantiations of their query/observable sets.
"""

from __future__ import annotations

import itertools
from typing import Dict, Mapping, Optional, Sequence, Tuple

from .elimination import marginal, min_fill_order
from .factor import Factor
from .network import BayesianNetwork

__all__ = ["mar", "mpe", "map_query", "sdp",
           "d_mar", "d_mpe", "d_map", "d_sdp"]


def mar(network: BayesianNetwork, query: Mapping[str, int],
        evidence: Mapping[str, int] | None = None) -> float:
    """MAR: the (posterior) marginal probability Pr(query | evidence).

    ``query`` is a partial instantiation; with empty evidence this is
    the paper's Pr(x).  D-MAR (PP-complete) asks whether it exceeds k.
    """
    evidence = dict(evidence or {})
    query = dict(query)
    # query variables already fixed by evidence resolve immediately
    for name in list(query):
        if name in evidence:
            if evidence[name] != query.pop(name):
                return 0.0
    if not query:
        return 1.0
    factor = marginal(network, list(query), evidence)
    numerator = factor(query)
    denominator = factor.total()
    if denominator == 0:
        raise ZeroDivisionError("evidence has probability zero")
    return numerator / denominator


def mpe(network: BayesianNetwork,
        evidence: Mapping[str, int] | None = None
        ) -> Tuple[Dict[str, int], float]:
    """MPE: a most probable *complete* instantiation extending the
    evidence, with its joint probability Pr(x) (not conditioned).

    Computed by max-product elimination, with the maximiser recovered by
    sequential conditioning (n·k max-eliminations).
    """
    evidence = dict(evidence or {})
    target = _max_value(network, evidence)
    assignment = dict(evidence)
    for name in network.variables:
        if name in assignment:
            continue
        for state in range(network.cardinality(name)):
            trial = {**assignment, name: state}
            if _max_value(network, trial) >= target - 1e-12:
                assignment[name] = state
                break
        else:  # numerical fallback: take the best state
            best = max(range(network.cardinality(name)),
                       key=lambda s: _max_value(network,
                                                {**assignment, name: s}))
            assignment[name] = best
    return assignment, network.probability(assignment)


def _max_value(network: BayesianNetwork,
               evidence: Mapping[str, int]) -> float:
    factors = [f.reduce(evidence) for f in network.factors()]
    order = [v for v in min_fill_order(network, keep=evidence)
             if v not in evidence]
    for variable in order:
        involved = [f for f in factors if variable in f.variables]
        if not involved:
            continue
        product = involved[0]
        for factor in involved[1:]:
            product = product.multiply(factor)
        factors = [f for f in factors if variable not in f.variables]
        factors.append(product.max_out([variable]))
    result = Factor.unit()
    for factor in factors:
        result = result.multiply(factor)
    return float(result.values.max())


def map_query(network: BayesianNetwork, map_vars: Sequence[str],
              evidence: Mapping[str, int] | None = None
              ) -> Tuple[Dict[str, int], float]:
    """MAP: the most probable instantiation of ``map_vars`` (all other
    variables summed out), with Pr(y, e).

    D-MAP is NP^PP-complete; here we enumerate the (usually small) MAP
    variable set and sum the rest out by VE.
    """
    evidence = dict(evidence or {})
    best_y: Optional[Dict[str, int]] = None
    best_p = -1.0
    ranges = [range(network.cardinality(v)) for v in map_vars]
    for states in itertools.product(*ranges):
        y = dict(zip(map_vars, states))
        if any(evidence.get(v, s) != s for v, s in y.items()):
            continue
        factor = marginal(network, [], {**evidence, **y})
        p = factor.total()
        if p > best_p:
            best_p, best_y = p, y
    assert best_y is not None
    return best_y, best_p


def sdp(network: BayesianNetwork, decision_var: str, decision_state: int,
        threshold: float, observables: Sequence[str],
        evidence: Mapping[str, int] | None = None) -> float:
    """SDP: the same-decision probability [18, 31].

    The current decision is ``Pr(decision_var = decision_state |
    evidence) >= threshold``.  The SDP is the probability, over the
    joint states y of the ``observables``, that the decision computed
    with the extra observation y is the same:

        SDP = Σ_y Pr(y | e) · [ (Pr(x | e, y) >= T) == (Pr(x | e) >= T) ]

    D-SDP (is the SDP > k?) is PP^PP-complete.
    """
    evidence = dict(evidence or {})
    current = mar(network, {decision_var: decision_state}, evidence)
    current_decision = current >= threshold
    total = 0.0
    ranges = [range(network.cardinality(v)) for v in observables]
    for states in itertools.product(*ranges):
        y = dict(zip(observables, states))
        try:
            p_y = mar(network, y, evidence)
        except ZeroDivisionError:
            continue
        if p_y == 0.0:
            continue
        p_x = mar(network, {decision_var: decision_state},
                  {**evidence, **y})
        if (p_x >= threshold) == current_decision:
            total += p_y
    return total


# -- decision versions (the Fig 2 table) ----------------------------------------

def d_mpe(network: BayesianNetwork, k: float,
          evidence: Mapping[str, int] | None = None) -> bool:
    """D-MPE (NP-complete): is there an instantiation with Pr > k?"""
    _assignment, p = mpe(network, evidence)
    return p > k


def d_mar(network: BayesianNetwork, query: Mapping[str, int], k: float,
          evidence: Mapping[str, int] | None = None) -> bool:
    """D-MAR (PP-complete): is Pr(x | e) > k?"""
    return mar(network, query, evidence) > k


def d_map(network: BayesianNetwork, map_vars: Sequence[str], k: float,
          evidence: Mapping[str, int] | None = None) -> bool:
    """D-MAP (NP^PP-complete): is there y with Pr(y, e) > k?"""
    _y, p = map_query(network, map_vars, evidence)
    return p > k


def d_sdp(network: BayesianNetwork, decision_var: str,
          decision_state: int, threshold: float,
          observables: Sequence[str], k: float,
          evidence: Mapping[str, int] | None = None) -> bool:
    """D-SDP (PP^PP-complete): is the same-decision probability > k?"""
    return sdp(network, decision_var, decision_state, threshold,
               observables, evidence) > k
