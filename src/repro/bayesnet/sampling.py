"""Sampling-based inference for Bayesian networks.

Forward (ancestral) sampling and likelihood weighting — the standard
approximate substrate, useful as an independent cross-check of the
exact engines (VE and the WMC pipeline) and for generating synthetic
datasets from networks.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping

import numpy as np

from .network import BayesianNetwork

__all__ = ["forward_sample", "sample_dataset", "likelihood_weighting",
           "gibbs_sampling"]


def forward_sample(network: BayesianNetwork,
                   rng: random.Random | None = None) -> Dict[str, int]:
    """One ancestral sample from the joint distribution."""
    rng = rng or random.Random()
    sample: Dict[str, int] = {}
    for name in network.variables:
        cpt = network.cpt(name)
        index = tuple(sample[p] for p in cpt.parents)
        distribution = cpt.values[index]
        sample[name] = _draw(distribution, rng)
    return sample


def _draw(distribution: np.ndarray, rng: random.Random) -> int:
    pick = rng.random()
    cumulative = 0.0
    for state, p in enumerate(distribution):
        cumulative += float(p)
        if pick < cumulative:
            return state
    return len(distribution) - 1


def sample_dataset(network: BayesianNetwork, n: int,
                   rng: random.Random | None = None
                   ) -> List[Dict[str, int]]:
    """``n`` independent joint samples."""
    rng = rng or random.Random()
    return [forward_sample(network, rng) for _ in range(n)]


def likelihood_weighting(network: BayesianNetwork,
                         query: Mapping[str, int],
                         evidence: Mapping[str, int] | None = None,
                         samples: int = 10000,
                         rng: random.Random | None = None) -> float:
    """Estimate Pr(query | evidence) by likelihood weighting.

    Evidence variables are clamped and contribute their CPT entry to
    the sample weight; the estimate is the weighted fraction of samples
    consistent with the query.
    """
    rng = rng or random.Random()
    evidence = dict(evidence or {})
    numerator = 0.0
    denominator = 0.0
    for _ in range(samples):
        weight = 1.0
        sample: Dict[str, int] = {}
        for name in network.variables:
            cpt = network.cpt(name)
            index = tuple(sample[p] for p in cpt.parents)
            distribution = cpt.values[index]
            if name in evidence:
                state = evidence[name]
                weight *= float(distribution[state])
                sample[name] = state
            else:
                sample[name] = _draw(distribution, rng)
        denominator += weight
        if all(sample[v] == s for v, s in query.items()):
            numerator += weight
    if denominator == 0.0:
        raise ZeroDivisionError("all samples had zero weight")
    return numerator / denominator


def gibbs_sampling(network: BayesianNetwork,
                   query: Mapping[str, int],
                   evidence: Mapping[str, int] | None = None,
                   samples: int = 10000, burn_in: int = 500,
                   rng: random.Random | None = None) -> float:
    """Estimate Pr(query | evidence) by Gibbs sampling.

    Each step resamples one non-evidence variable from its Markov-
    blanket conditional.  Requires an ergodic chain: networks with
    deterministic (0/1) CPT rows can trap the sampler — prefer
    :func:`likelihood_weighting` or the exact engines there.
    """
    rng = rng or random.Random()
    evidence = dict(evidence or {})
    state = forward_sample(network, rng)
    state.update(evidence)
    free = [name for name in network.variables if name not in evidence]
    if not free:
        return 1.0 if all(state[v] == s for v, s in query.items()) \
            else 0.0
    children: Dict[str, List[str]] = {name: [] for name in
                                      network.variables}
    for name in network.variables:
        for parent in network.parents(name):
            children[parent].append(name)

    def blanket_distribution(name: str) -> List[float]:
        cpt = network.cpt(name)
        scores = []
        for value in range(cpt.cardinality):
            state[name] = value
            score = float(cpt.values[
                tuple(state[p] for p in cpt.parents) + (value,)])
            for child in children[name]:
                child_cpt = network.cpt(child)
                score *= float(child_cpt.values[
                    tuple(state[p] for p in child_cpt.parents)
                    + (state[child],)])
            scores.append(score)
        total = sum(scores)
        if total == 0.0:
            # deterministic dead-end: keep the current value
            scores = [1.0 if v == state[name] else 0.0
                      for v in range(cpt.cardinality)]
            total = 1.0
        return [s / total for s in scores]

    hits = 0
    kept = 0
    for step in range(burn_in + samples):
        name = free[step % len(free)]
        distribution = blanket_distribution(name)
        state[name] = _draw(np.asarray(distribution), rng)
        if step >= burn_in:
            kept += 1
            if all(state[v] == s for v, s in query.items()):
                hits += 1
    return hits / kept
