"""Example networks from the paper.

* :func:`medical_network` — the Fig 2 network (sex, c, T1, T2, AGREE).
  The paper does not print its CPTs, so we quantify it with plausible
  numbers (documented below); the *queries and their complexity story*
  are what the figure demonstrates, not particular values.
* :func:`chain_network` — the Fig 4 network A → B, A → C, parameterised
  by the ten θ values.
* :func:`random_network` — random binary networks for benchmarks.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

from .network import BayesianNetwork

__all__ = ["medical_network", "chain_network", "random_network"]


def medical_network() -> BayesianNetwork:
    """The Fig 2 medical network.

    States: every variable is binary with state 1 = "true"/"positive"/
    "male" and state 0 the complement.  Quantification (not given in the
    paper; chosen so the condition is rare, the tests are good but
    imperfect, and AGREE is the deterministic indicator T1 == T2):

    * Pr(sex = male) = 0.55
    * Pr(c | male) = 0.05,  Pr(c | female) = 0.01
    * Pr(T1 = +ve | c) = 0.95, Pr(T1 = +ve | ¬c) = 0.02
    * Pr(T2 = +ve | c) = 0.90, Pr(T2 = +ve | ¬c) = 0.05
    * AGREE = 1 iff T1 == T2 (0/1 CPT)

    The test accuracies are strong enough that observing both tests
    positive pushes Pr(c | T1, T2) above 0.9 — so the Fig 2 SDP story
    ("operate if Pr(c) > 90%"; how likely is that decision to stick
    after seeing the tests?) is non-trivial on this quantification.
    """
    network = BayesianNetwork()
    network.add_variable("sex", (), [0.45, 0.55])
    network.add_variable("c", ("sex",), [[0.99, 0.01], [0.95, 0.05]])
    network.add_variable("T1", ("c",), [[0.98, 0.02], [0.05, 0.95]])
    network.add_variable("T2", ("c",), [[0.95, 0.05], [0.10, 0.90]])
    agree = np.zeros((2, 2, 2))
    for t1 in (0, 1):
        for t2 in (0, 1):
            agree[t1, t2, int(t1 == t2)] = 1.0
    network.add_variable("AGREE", ("T1", "T2"), agree)
    return network


def chain_network(theta_a: float = 0.6,
                  theta_b_given_a: Sequence[float] = (0.2, 0.9),
                  theta_c_given_a: Sequence[float] = (0.7, 0.3)
                  ) -> BayesianNetwork:
    """The Fig 4 network over binary A, B, C with A → B and A → C.

    ``theta_b_given_a[i]`` is Pr(B=1 | A=i); likewise for C.  The
    network has ten parameters, as the paper notes.
    """
    network = BayesianNetwork()
    network.add_variable("A", (), [1 - theta_a, theta_a])
    network.add_variable("B", ("A",), [
        [1 - theta_b_given_a[0], theta_b_given_a[0]],
        [1 - theta_b_given_a[1], theta_b_given_a[1]]])
    network.add_variable("C", ("A",), [
        [1 - theta_c_given_a[0], theta_c_given_a[0]],
        [1 - theta_c_given_a[1], theta_c_given_a[1]]])
    return network


def random_network(num_vars: int, max_parents: int = 2,
                   rng: random.Random | None = None,
                   zero_fraction: float = 0.0) -> BayesianNetwork:
    """A random binary Bayesian network.

    ``zero_fraction`` forces that fraction of CPT rows to be
    deterministic (0/1 rows) — the regime in which the paper notes
    reduction-based approaches shine (determinism and context-specific
    independence, Section 2).
    """
    rng = rng or random.Random()
    network = BayesianNetwork()
    names = [f"X{i}" for i in range(num_vars)]
    for i, name in enumerate(names):
        pool = names[:i]
        count = min(len(pool), rng.randint(0, max_parents))
        parents = rng.sample(pool, count) if count else []
        shape = (2,) * len(parents)
        rows = np.empty(shape + (2,))
        for index in np.ndindex(*shape) if parents else [()]:
            if rng.random() < zero_fraction:
                p = float(rng.random() < 0.5)
            else:
                p = rng.uniform(0.05, 0.95)
            rows[index] = [1 - p, p]
        network.add_variable(name, parents, rows)
    return network
