"""The SDD manager: unique tables, apply, negation (Darwiche 2011 [28]).

The manager owns a vtree and guarantees canonicity: two SDDs built in
the same manager represent the same Boolean function iff they are the
same object.  ``apply`` (conjoin/disjoin) is the polytime O(s·t)
bottom-up operation the paper highlights as what makes SDDs a *basis
for computation*: compile once, then combine and query.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..perf.instrument import Counter
from ..vtree.vtree import Vtree
from .node import SddNode

__all__ = ["SddManager"]

AND = "and"
OR = "or"

Element = Tuple[SddNode, SddNode]


class SddManager:
    """Factory for canonical SDDs over a fixed vtree.

    ``budget`` (optional :class:`~repro.limits.budget.Budget`) is
    charged one node per non-trivial apply call — the unit of bottom-up
    compilation work — and raises
    :class:`~repro.limits.budget.BudgetExceeded` on exhaustion with the
    manager's node/apply counters in ``partial``.
    """

    def __init__(self, vtree: Vtree, budget=None):
        self.vtree = vtree
        self.budget = budget
        #: perf counters: apply_calls / apply_cache_hits accumulate
        #: over the manager's lifetime (see ``repro.perf``)
        self.stats = Counter()
        self._next_id = 0
        self.true = self._fresh(SddNode.TRUE, None, 0, ())
        self.false = self._fresh(SddNode.FALSE, None, 0, ())
        self.true.negation = self.false
        self.false.negation = self.true
        self._literals: Dict[int, SddNode] = {}
        self._unique: Dict[Tuple[int, Tuple[Tuple[int, int], ...]],
                           SddNode] = {}
        self._apply_cache: Dict[Tuple[str, int, int], SddNode] = {}

    def _fresh(self, kind: str, vtree: Optional[Vtree], literal: int,
               elements: Tuple[Element, ...]) -> SddNode:
        node = SddNode(self, self._next_id, kind, vtree, literal, elements)
        self._next_id += 1
        return node

    # -- terminals -------------------------------------------------------------
    def literal(self, literal: int) -> SddNode:
        """The SDD for a literal (±var); the variable must be in the
        manager's vtree."""
        node = self._literals.get(literal)
        if node is None:
            leaf = self.vtree.find_leaf(abs(literal))
            node = self._fresh(SddNode.LITERAL, leaf, literal, ())
            self._literals[literal] = node
        return node

    def constant(self, value: bool) -> SddNode:
        return self.true if value else self.false

    # -- canonical decision-node constructor -------------------------------------
    def _decision(self, vtree: Vtree, elements: Sequence[Element]
                  ) -> SddNode:
        """Build a compressed, trimmed, unique decision node.

        ``elements`` must have non-false, mutually exclusive, exhaustive
        primes (the apply algorithm guarantees this).
        """
        # compression: merge elements that share a sub
        by_sub: Dict[int, List[SddNode]] = {}
        subs: Dict[int, SddNode] = {}
        for prime, sub in elements:
            by_sub.setdefault(sub.id, []).append(prime)
            subs[sub.id] = sub
        compressed: List[Element] = []
        for sub_id, primes in by_sub.items():
            prime = primes[0]
            for other in primes[1:]:
                prime = self.apply(prime, other, OR)
            compressed.append((prime, subs[sub_id]))
        # trimming
        if len(compressed) == 1:
            prime, sub = compressed[0]
            # exhaustive single prime is valid, hence the TRUE node
            assert prime.is_true, "single prime must be ⊤ (canonicity)"
            return sub
        if len(compressed) == 2:
            (p1, s1), (p2, s2) = compressed
            if s1.is_true and s2.is_false:
                return p1
            if s1.is_false and s2.is_true:
                return p2
        key = (vtree.position,
               tuple(sorted((p.id, s.id) for p, s in compressed)))
        node = self._unique.get(key)
        if node is None:
            ordered = tuple(sorted(compressed, key=lambda e: e[0].id))
            node = self._fresh(SddNode.DECISION, vtree, 0, ordered)
            self._unique[key] = node
        return node

    # -- negation ----------------------------------------------------------------
    def negate(self, node: SddNode) -> SddNode:
        """¬node in time linear in the SDD size (memoised per node)."""
        if node.negation is not None:
            return node.negation
        if node.is_literal:
            result = self.literal(-node.literal)
        else:
            result = self._decision(
                node.vtree,
                [(prime, self.negate(sub))
                 for prime, sub in node.elements])
        node.negation = result
        result.negation = node
        return result

    # -- apply ----------------------------------------------------------------
    def apply(self, a: SddNode, b: SddNode, op: str) -> SddNode:
        """Conjoin (op='and') or disjoin (op='or') two SDDs."""
        if op == AND:
            if a.is_false or b.is_false:
                return self.false
            if a.is_true:
                return b
            if b.is_true:
                return a
            if a is b:
                return a
            if a.negation is b:
                return self.false
        elif op == OR:
            if a.is_true or b.is_true:
                return self.true
            if a.is_false:
                return b
            if b.is_false:
                return a
            if a is b:
                return a
            if a.negation is b:
                return self.true
        else:
            raise ValueError(f"unknown op {op!r}")
        key = (op, *sorted((a.id, b.id)))
        if self.budget is not None:
            self.budget.tick(partial={
                "operation": "sdd-apply",
                "apply_calls": self.stats["apply_calls"],
                "live_nodes": self._next_id})
        self.stats.incr("apply_calls")
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.stats.incr("apply_cache_hits")
            return cached
        result = self._apply_inner(a, b, op)
        self._apply_cache[key] = result
        return result

    def _apply_inner(self, a: SddNode, b: SddNode, op: str) -> SddNode:
        va, vb = a.vtree, b.vtree
        if va is vb and va.is_leaf():
            # distinct literals on the same variable are complementary
            return self.false if op == AND else self.true
        if va is vb:
            lca = va
        else:
            lca = va.lca(vb)
        a_elements = self._normalized_elements(a, lca)
        b_elements = self._normalized_elements(b, lca)
        product: List[Element] = []
        for pa, sa in a_elements:
            for pb, sb in b_elements:
                prime = self.apply(pa, pb, AND)
                if prime.is_false:
                    continue
                product.append((prime, self.apply(sa, sb, op)))
        return self._decision(lca, product)

    def _normalized_elements(self, node: SddNode, vtree: Vtree
                             ) -> List[Element]:
        """Element list of ``node`` viewed as a decision node at
        ``vtree`` (an ancestor-or-self of node.vtree)."""
        if node.vtree is vtree:
            if node.is_decision:
                return list(node.elements)
            # literal at a leaf lca cannot occur (handled by caller)
            raise AssertionError("unexpected literal at internal lca")
        if vtree.left.is_ancestor_of(node.vtree):
            return [(node, self.true), (self.negate(node), self.false)]
        if vtree.right.is_ancestor_of(node.vtree):
            return [(self.true, node)]
        raise AssertionError("node does not sit under the lca")

    # -- convenience --------------------------------------------------------------
    def conjoin(self, a: SddNode, b: SddNode) -> SddNode:
        return self.apply(a, b, AND)

    def disjoin(self, a: SddNode, b: SddNode) -> SddNode:
        return self.apply(a, b, OR)

    def conjoin_all(self, nodes: Iterable[SddNode]) -> SddNode:
        result = self.true
        for node in nodes:
            result = self.apply(result, node, AND)
            if result.is_false:
                break
        return result

    def disjoin_all(self, nodes: Iterable[SddNode]) -> SddNode:
        result = self.false
        for node in nodes:
            result = self.apply(result, node, OR)
            if result.is_true:
                break
        return result

    def term(self, literals: Sequence[int]) -> SddNode:
        """Conjunction of literals."""
        return self.conjoin_all(self.literal(lit) for lit in literals)

    def clause(self, literals: Sequence[int]) -> SddNode:
        """Disjunction of literals."""
        return self.disjoin_all(self.literal(lit) for lit in literals)

    def exactly(self, assignment: Dict[int, bool]) -> SddNode:
        """The term fixing every variable in ``assignment``."""
        return self.term([v if value else -v
                          for v, value in assignment.items()])

    def live_node_count(self) -> int:
        """Number of decision nodes interned so far (manager pressure)."""
        return len(self._unique)
