"""Sentential Decision Diagrams: canonical tractable circuits with apply."""

from .node import SddNode
from .manager import SddManager
from .queries import (enumerate_models, model_count, sdd_to_nnf,
                      to_dot, weighted_model_count)
from .compiler import compile_cnf_sdd, compile_formula_sdd, compile_terms_sdd
from .transform import condition, exists, forall, rename_literals

__all__ = ["SddNode", "SddManager", "enumerate_models", "model_count",
           "sdd_to_nnf", "to_dot", "weighted_model_count", "compile_cnf_sdd",
           "compile_formula_sdd", "compile_terms_sdd", "condition", "exists",
           "forall", "rename_literals"]
