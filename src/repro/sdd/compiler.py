"""Bottom-up compilation into SDDs.

CNFs compile clause-by-clause with apply; formulas compile recursively.
This mirrors how the SDD library is used as a knowledge compiler [12]:
the polytime apply of SDDs is what makes bottom-up compilation feasible
(plain DNNFs cannot be conjoined in polytime, Section 3).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from ..logic.cnf import Cnf
from ..logic.formula import (And as FAnd, Constant, Formula, Lit,
                             Or as FOr)
from ..vtree.construct import balanced_vtree
from ..vtree.vtree import Vtree
from .manager import SddManager
from .node import SddNode

__all__ = ["compile_cnf_sdd", "compile_formula_sdd", "compile_terms_sdd"]


def compile_cnf_sdd(cnf: Cnf, manager: SddManager | None = None,
                    vtree: Vtree | None = None, store=None,
                    budget=None) -> Tuple[SddNode, SddManager]:
    """Compile a CNF into an SDD.  Returns (root, manager).

    When no manager/vtree is given, a balanced vtree over
    ``1..num_vars`` is used.

    ``store`` is an optional :class:`repro.ir.store.ArtifactStore`
    (default: :func:`repro.ir.store.default_store`, i.e.
    ``$REPRO_CACHE_DIR``): compilations are keyed by the SHA-256 of
    (compiler, vtree text, DIMACS) and served from canonical
    ``.sdd``/``.vtree`` files on a hit.  Only used when no ``manager``
    is passed — a cached SDD is rebuilt into a fresh manager over the
    stored vtree, which cannot be merged into a caller-owned one.

    ``budget`` (explicit, else ambient) bounds the compilation — one
    charge per apply call.  It is installed on the fresh manager this
    function creates; a caller-owned ``manager`` keeps its own budget.
    """
    from ..limits.budget import resolve_budget
    budget = resolve_budget(budget)
    if manager is None:
        if vtree is None:
            if cnf.num_vars == 0:
                raise ValueError("cannot build a vtree with no variables")
            vtree = balanced_vtree(range(1, cnf.num_vars + 1))
        if store is None:
            from ..ir.store import default_store
            store = default_store()
        if store is not None:
            from ..ir.serialize import write_vtree_text
            from ..ir.store import artifact_key
            key = artifact_key(cnf.to_dimacs(), "sdd",
                               {"vtree": write_vtree_text(vtree)})
            cached = store.load_sdd(key)
            if cached is not None:
                return cached
            manager = SddManager(vtree, budget=budget)
            root = _compile_clauses(cnf, manager)
            store.save_sdd(key, root)
            return root, manager
        manager = SddManager(vtree, budget=budget)
    return _compile_clauses(cnf, manager), manager


def _compile_clauses(cnf: Cnf, manager: SddManager) -> SddNode:
    clause_nodes = [manager.clause(clause) for clause in cnf.clauses]
    clause_nodes.sort(key=lambda node: node.size())
    return manager.conjoin_all(clause_nodes)


def compile_formula_sdd(formula: Formula, manager: SddManager) -> SddNode:
    """Compile a formula into an SDD by structural apply."""
    nnf = formula.to_nnf()
    cache: Dict[Formula, SddNode] = {}

    def build(f: Formula) -> SddNode:
        if f in cache:
            return cache[f]
        if isinstance(f, Constant):
            result = manager.constant(f.value)
        elif isinstance(f, Lit):
            result = manager.literal(f.literal)
        elif isinstance(f, FAnd):
            result = manager.conjoin_all(build(c) for c in f.children)
        elif isinstance(f, FOr):
            result = manager.disjoin_all(build(c) for c in f.children)
        else:
            raise TypeError(f"unexpected formula node {f!r}")
        cache[f] = result
        return result

    return build(nnf)


def compile_terms_sdd(terms: Iterable[Sequence[int]],
                      manager: SddManager) -> SddNode:
    """Disjoin a set of terms (e.g. one term per valid route, Fig 16)."""
    return manager.disjoin_all(manager.term(term) for term in terms)
