"""Bottom-up compilation into SDDs.

CNFs compile clause-by-clause with apply; formulas compile recursively.
This mirrors how the SDD library is used as a knowledge compiler [12]:
the polytime apply of SDDs is what makes bottom-up compilation feasible
(plain DNNFs cannot be conjoined in polytime, Section 3).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from ..logic.cnf import Cnf
from ..logic.formula import (And as FAnd, Constant, Formula, Lit,
                             Or as FOr)
from ..vtree.construct import balanced_vtree
from ..vtree.vtree import Vtree
from .manager import SddManager
from .node import SddNode

__all__ = ["compile_cnf_sdd", "compile_formula_sdd", "compile_terms_sdd"]


def compile_cnf_sdd(cnf: Cnf, manager: SddManager | None = None,
                    vtree: Vtree | None = None, store=None,
                    budget=None, minimize: bool = False,
                    minimize_attempts: int = 3,
                    seed: int = 0) -> Tuple[SddNode, SddManager]:
    """Compile a CNF into an SDD.  Returns (root, manager).

    When no manager/vtree is given, a balanced vtree over
    ``1..num_vars`` is used.

    ``store`` is an optional :class:`repro.ir.store.ArtifactStore`
    (default: :func:`repro.ir.store.default_store`, i.e.
    ``$REPRO_CACHE_DIR``): compilations are keyed by the SHA-256 of
    (compiler, vtree text, DIMACS) and served from canonical
    ``.sdd``/``.vtree`` files on a hit.  Only used when no ``manager``
    is passed — a cached SDD is rebuilt into a fresh manager over the
    stored vtree, which cannot be merged into a caller-owned one.

    ``budget`` (explicit, else ambient) bounds the compilation — one
    charge per apply call.  It is installed on the fresh manager this
    function creates; a caller-owned ``manager`` keeps its own budget.

    ``minimize=True`` is the post-compile minimization hook: after the
    primary compile, up to ``minimize_attempts`` additional vtrees
    (balanced / right-linear / seeded random — the keep-smallest
    diversification of :func:`repro.limits.restarts.
    compile_with_restarts`) are tried and the smallest result kept —
    but only when its exact model count (via the lowered IR kernel)
    agrees with the primary compile's; a disagreement keeps the
    primary.  Only applies when no caller ``manager``/``vtree`` pins
    the structure.
    """
    from ..limits.budget import resolve_budget
    budget = resolve_budget(budget)
    if manager is None:
        pinned = vtree is not None
        if vtree is None:
            if cnf.num_vars == 0:
                raise ValueError("cannot build a vtree with no variables")
            vtree = balanced_vtree(range(1, cnf.num_vars + 1))
        if store is None:
            from ..ir.store import default_store
            store = default_store()
        if store is not None:
            from ..ir.serialize import write_vtree_text
            from ..ir.store import artifact_key
            key = artifact_key(cnf.to_dimacs(), "sdd",
                               {"vtree": write_vtree_text(vtree)})
            cached = store.load_sdd(key)
            if cached is not None:
                return cached
            manager = SddManager(vtree, budget=budget)
            root = _compile_clauses(cnf, manager)
            if minimize and not pinned:
                root, manager = _minimize_vtree(
                    cnf, root, manager, budget,
                    minimize_attempts, seed)
            store.save_sdd(key, root)
            return root, manager
        manager = SddManager(vtree, budget=budget)
        root = _compile_clauses(cnf, manager)
        if minimize and not pinned:
            root, manager = _minimize_vtree(
                cnf, root, manager, budget, minimize_attempts, seed)
        return root, manager
    return _compile_clauses(cnf, manager), manager


def _minimize_vtree(cnf: Cnf, root: SddNode, manager: SddManager,
                    budget, attempts: int, seed: int
                    ) -> Tuple[SddNode, SddManager]:
    """Keep-smallest vtree diversification with a count cross-check.

    Each candidate vtree recompiles the CNF from scratch; a candidate
    replaces the incumbent only when it is strictly smaller *and* its
    exact model count (on the lowered IR) matches the incumbent's.
    Budget exhaustion mid-search keeps the best-so-far — degrade,
    never error.
    """
    import random as _random

    from ..ir.kernel import ir_kernel
    from ..ir.lower import sdd_to_ir
    from ..limits.budget import BudgetExceeded
    from ..vtree.construct import random_vtree, right_linear_vtree

    variables = list(range(1, cnf.num_vars + 1))
    rng = _random.Random(seed)
    candidates = [right_linear_vtree(variables)]
    while len(candidates) < max(0, attempts):
        candidates.append(random_vtree(variables, rng=rng))
    best_root, best_manager = root, manager
    best_size = sdd_to_ir(root).n
    best_count = ir_kernel(sdd_to_ir(root)).model_count()
    for candidate in candidates[:max(0, attempts)]:
        try:
            alt_manager = SddManager(candidate, budget=budget)
            alt_root = _compile_clauses(cnf, alt_manager)
        except BudgetExceeded:
            break
        alt_ir = sdd_to_ir(alt_root)
        if alt_ir.n >= best_size:
            continue
        if ir_kernel(alt_ir).model_count() != best_count:
            continue  # cross-check failed: keep the certified incumbent
        best_root, best_manager, best_size = (alt_root, alt_manager,
                                              alt_ir.n)
    return best_root, best_manager


def _compile_clauses(cnf: Cnf, manager: SddManager) -> SddNode:
    clause_nodes = [manager.clause(clause) for clause in cnf.clauses]
    clause_nodes.sort(key=lambda node: node.size())
    return manager.conjoin_all(clause_nodes)


def compile_formula_sdd(formula: Formula, manager: SddManager) -> SddNode:
    """Compile a formula into an SDD by structural apply."""
    nnf = formula.to_nnf()
    cache: Dict[Formula, SddNode] = {}

    def build(f: Formula) -> SddNode:
        if f in cache:
            return cache[f]
        if isinstance(f, Constant):
            result = manager.constant(f.value)
        elif isinstance(f, Lit):
            result = manager.literal(f.literal)
        elif isinstance(f, FAnd):
            result = manager.conjoin_all(build(c) for c in f.children)
        elif isinstance(f, FOr):
            result = manager.disjoin_all(build(c) for c in f.children)
        else:
            raise TypeError(f"unexpected formula node {f!r}")
        cache[f] = result
        return result

    return build(nnf)


def compile_terms_sdd(terms: Iterable[Sequence[int]],
                      manager: SddManager) -> SddNode:
    """Disjoin a set of terms (e.g. one term per valid route, Fig 16)."""
    return manager.disjoin_all(manager.term(term) for term in terms)
