"""SDD nodes (Sentential Decision Diagrams, [28]).

An SDD node is either a constant (⊤/⊥), a literal attached to the leaf
vtree node of its variable, or a *decision* node attached to an internal
vtree node ``v``: a set of elements ``(p₁,s₁),…,(pₖ,sₖ)`` — the
multiplexer fragment of Fig 9.  Primes ``pᵢ`` are SDDs over variables
inside ``v.left``; subs ``sᵢ`` are SDDs over variables inside
``v.right`` (or constants).  Primes are exhaustive, mutually exclusive
and non-false — the *strong determinism* the paper describes: under any
input exactly one prime is high, and the node passes its sub's value.

Nodes are *compressed* (distinct subs) and *trimmed* (no ``{(⊤,s)}`` or
``{(p,⊤),(¬p,⊥)}`` nodes), which makes them canonical for their vtree
[28, 89]: equal Boolean functions are pointer-equal nodes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..vtree.vtree import Vtree

__all__ = ["SddNode"]


class SddNode:
    """Create via :class:`repro.sdd.manager.SddManager` only."""

    __slots__ = ("manager", "id", "vtree", "kind", "literal", "elements",
                 "negation")

    TRUE = "true"
    FALSE = "false"
    LITERAL = "literal"
    DECISION = "decision"

    def __init__(self, manager, node_id: int, kind: str,
                 vtree: Optional[Vtree], literal: int,
                 elements: Tuple[Tuple["SddNode", "SddNode"], ...]):
        self.manager = manager
        self.id = node_id
        self.kind = kind
        self.vtree = vtree
        self.literal = literal
        self.elements = elements
        self.negation: Optional[SddNode] = None  # memoised by manager

    # -- structure ----------------------------------------------------------
    @property
    def is_true(self) -> bool:
        return self.kind == SddNode.TRUE

    @property
    def is_false(self) -> bool:
        return self.kind == SddNode.FALSE

    @property
    def is_constant(self) -> bool:
        return self.kind in (SddNode.TRUE, SddNode.FALSE)

    @property
    def is_literal(self) -> bool:
        return self.kind == SddNode.LITERAL

    @property
    def is_decision(self) -> bool:
        return self.kind == SddNode.DECISION

    def variables(self) -> frozenset[int]:
        """Variables of the vtree node the SDD is normalized for.

        The function may not *depend* on all of them, but trimmed SDDs
        never attach above the variables they mention.
        """
        if self.is_constant:
            return frozenset()
        return self.vtree.variables

    # -- traversal ----------------------------------------------------------
    def descendants(self) -> List["SddNode"]:
        """All reachable nodes (this one included), children first."""
        order: List[SddNode] = []
        seen: set[int] = set()
        stack: List[Tuple[SddNode, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if node.id in seen:
                continue
            seen.add(node.id)
            stack.append((node, True))
            for prime, sub in node.elements:
                if prime.id not in seen:
                    stack.append((prime, False))
                if sub.id not in seen:
                    stack.append((sub, False))
        return order

    def size(self) -> int:
        """SDD size: total number of elements over all decision nodes —
        the measure the paper reports (e.g. the 8.9M-edge PSDD)."""
        return sum(len(node.elements) for node in self.descendants()
                   if node.is_decision)

    def node_count(self) -> int:
        return len(self.descendants())

    def to_ir(self):
        """Lower this SDD onto the flattened execution IR
        (:func:`repro.ir.lower.sdd_to_ir`); cached on the manager."""
        from ..ir.lower import sdd_to_ir
        return sdd_to_ir(self)

    # -- semantics ----------------------------------------------------------
    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Circuit output under a complete assignment."""
        values: Dict[int, bool] = {}
        for node in self.descendants():
            if node.is_true:
                values[node.id] = True
            elif node.is_false:
                values[node.id] = False
            elif node.is_literal:
                value = assignment[abs(node.literal)]
                values[node.id] = value if node.literal > 0 else not value
            else:
                result = False
                for prime, sub in node.elements:
                    if values[prime.id]:
                        result = values[sub.id]
                        break
                values[node.id] = result
        return values[self.id]

    def __repr__(self) -> str:
        if self.is_constant:
            return f"SddNode({self.kind})"
        if self.is_literal:
            return f"SddNode(lit {self.literal})"
        return f"SddNode(decision, {len(self.elements)} elements, " \
               f"size {self.size()})"
