"""Queries on SDDs: counting, WMC, enumeration, NNF export.

Counting uses scope-aware recursion (a node normalized for vtree ``v``
is counted over ``vars(v)`` and scaled by 2^gap into larger scopes), so
explicit smoothing is never materialised.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Tuple

from ..nnf.node import NnfManager, NnfNode
from ..vtree.vtree import Vtree
from .manager import SddManager
from .node import SddNode

__all__ = ["model_count", "weighted_model_count", "enumerate_models",
           "sdd_to_nnf", "to_dot"]


def model_count(node: SddNode, scope: Vtree | None = None) -> int:
    """#SAT over the variables of ``scope`` (default: the whole vtree)."""
    manager: SddManager = node.manager
    if scope is None:
        scope = manager.vtree
    cache: Dict[Tuple[int, int], int] = {}

    def mc(n: SddNode, s: Vtree) -> int:
        if n.is_false:
            return 0
        if n.is_true:
            return 1 << len(s.variables)
        key = (n.id, s.position)
        hit = cache.get(key)
        if hit is not None:
            return hit
        if n.is_literal:
            value = 1 << (len(s.variables) - 1)
        else:
            v = n.vtree
            inner = sum(mc(p, v.left) * mc(sub, v.right)
                        for p, sub in n.elements)
            value = inner << (len(s.variables) - len(v.variables))
        cache[key] = value
        return value

    if not node.is_constant and not scope.is_ancestor_of(node.vtree):
        raise ValueError("scope does not cover the node's vtree")
    return mc(node, scope)


def weighted_model_count(node: SddNode, weights: Mapping[int, float],
                         scope: Vtree | None = None) -> float:
    """WMC with literal weights; a variable absent from the node's
    support contributes W(v) + W(-v)."""
    manager: SddManager = node.manager
    if scope is None:
        scope = manager.vtree
    gap_cache: Dict[Tuple[int, int], float] = {}

    def gap_weight(outer: Vtree, inner_vars: frozenset[int]) -> float:
        value = 1.0
        for var in outer.variables - inner_vars:
            value *= weights[var] + weights[-var]
        return value

    cache: Dict[Tuple[int, int], float] = {}

    def wmc(n: SddNode, s: Vtree) -> float:
        if n.is_false:
            return 0.0
        if n.is_true:
            return gap_weight(s, frozenset())
        key = (n.id, s.position)
        hit = cache.get(key)
        if hit is not None:
            return hit
        if n.is_literal:
            value = weights[n.literal] * gap_weight(
                s, frozenset((abs(n.literal),)))
        else:
            v = n.vtree
            inner = sum(wmc(p, v.left) * wmc(sub, v.right)
                        for p, sub in n.elements)
            value = inner * gap_weight(s, v.variables)
        cache[key] = value
        return value

    if not node.is_constant and not scope.is_ancestor_of(node.vtree):
        raise ValueError("scope does not cover the node's vtree")
    return wmc(node, scope)


def enumerate_models(node: SddNode, scope: Vtree | None = None
                     ) -> Iterator[Dict[int, bool]]:
    """Yield all models over the variables of ``scope``."""
    manager: SddManager = node.manager
    if scope is None:
        scope = manager.vtree

    def rec(n: SddNode, s: Vtree) -> Iterator[Dict[int, bool]]:
        if n.is_false:
            return
        if n.is_true:
            yield from _all_assignments(sorted(s.variables))
            return
        if n.is_literal:
            var = abs(n.literal)
            rest = sorted(s.variables - {var})
            for partial in _all_assignments(rest):
                partial[var] = n.literal > 0
                yield partial
            return
        v = n.vtree
        free = sorted(s.variables - v.variables)
        for prime, sub in n.elements:
            for left in rec(prime, v.left):
                for right in rec(sub, v.right):
                    for extra in _all_assignments(free):
                        yield {**left, **right, **extra}

    if not node.is_constant and not scope.is_ancestor_of(node.vtree):
        raise ValueError("scope does not cover the node's vtree")
    yield from rec(node, scope)


def _all_assignments(variables: List[int]) -> Iterator[Dict[int, bool]]:
    if not variables:
        yield {}
        return
    var, rest = variables[0], variables[1:]
    for partial in _all_assignments(rest):
        for value in (False, True):
            yield {var: value, **partial}


def sdd_to_nnf(node: SddNode, manager: NnfManager | None = None) -> NnfNode:
    """Export an SDD as a structured d-DNNF circuit (Fig 9 ↔ Fig 13)."""
    if manager is None:
        manager = NnfManager()
    cache: Dict[int, NnfNode] = {}
    for n in node.descendants():
        if n.is_true:
            cache[n.id] = manager.true()
        elif n.is_false:
            cache[n.id] = manager.false()
        elif n.is_literal:
            cache[n.id] = manager.literal(n.literal)
        else:
            cache[n.id] = manager.disjoin(
                *(manager.conjoin(cache[p.id], cache[s.id])
                  for p, s in n.elements))
    return cache[node.id]


def to_dot(node: SddNode, name=str) -> str:
    """Graphviz dot source for an SDD (decision nodes as element boxes)."""
    lines = ["digraph sdd {", "  rankdir=TB;"]
    for n in node.descendants():
        if n.is_true:
            lines.append(f'  n{n.id} [shape=box, label="⊤"];')
        elif n.is_false:
            lines.append(f'  n{n.id} [shape=box, label="⊥"];')
        elif n.is_literal:
            sign = "" if n.literal > 0 else "¬"
            lines.append(f'  n{n.id} [shape=box, '
                         f'label="{sign}{name(abs(n.literal))}"];')
        else:
            ports = "|".join(f"<e{i}> •" for i in range(len(n.elements)))
            lines.append(f'  n{n.id} [shape=record, label="{ports}"];')
            for i, (prime, sub) in enumerate(n.elements):
                lines.append(f"  n{n.id}:e{i} -> n{prime.id} "
                             '[style=dashed];')
                lines.append(f"  n{n.id}:e{i} -> n{sub.id};")
    lines.append("}")
    return "\n".join(lines)
