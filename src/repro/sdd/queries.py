"""Queries on SDDs: counting, WMC, enumeration, NNF export.

Counting normalizes every node to its *own* vtree (a node is counted
over ``vars(vtree(node))`` and scaled by 2^gap into larger scopes), so
explicit smoothing is never materialised.  The normalization makes a
node's count scope-independent, which buys two things over the seed's
``(node, scope)``-keyed recursion:

* one value per node — computed by a single iterative children-first
  pass, no recursion depth limit, and memoised on the manager, so
  repeated ``model_count`` calls on the same node are O(1);
* a reusable *plan* (topological order plus per-element gap-variable
  tuples), also cached on the manager, so repeated WMC calls with
  different weight vectors skip all vtree set algebra.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Tuple

from ..nnf.node import NnfManager, NnfNode
from ..vtree.vtree import Vtree
from .manager import SddManager
from .node import SddNode

__all__ = ["model_count", "model_count_legacy", "weighted_model_count",
           "weighted_model_count_legacy", "enumerate_models",
           "sdd_to_nnf", "to_dot"]

# plan entry: (node id, kind code, payload).  Kinds: 0 false, 1 true,
# 2 literal (payload: the literal), 3 decision (payload: a tuple of
# (prime id, prime gap vars, sub id, sub gap vars) — the gap variables
# complete the prime/sub into the element's half-scope).
_FALSE, _TRUE, _LITERAL, _DECISION = range(4)
_PlanEntry = Tuple[int, int, object]


def _vtree_vars(n: SddNode) -> frozenset:
    return n.vtree.variables if n.vtree is not None else frozenset()


def _plan(node: SddNode) -> List[_PlanEntry]:
    """The (cached) evaluation plan for ``node``'s sub-SDD."""
    manager: SddManager = node.manager
    cache = getattr(manager, "_plan_cache", None)
    if cache is None:
        cache = manager._plan_cache = {}
    plan = cache.get(node.id)
    if plan is not None:
        return plan
    plan = []
    for n in node.descendants():
        if n.is_constant:
            plan.append((n.id, _TRUE if n.is_true else _FALSE, None))
        elif n.is_literal:
            plan.append((n.id, _LITERAL, n.literal))
        else:
            v = n.vtree
            left_vars, right_vars = v.left.variables, v.right.variables
            elements = tuple(
                (p.id, tuple(sorted(left_vars - _vtree_vars(p))),
                 s.id, tuple(sorted(right_vars - _vtree_vars(s))))
                for p, s in n.elements)
            plan.append((n.id, _DECISION, elements))
    cache[node.id] = plan
    return plan


def model_count(node: SddNode, scope: Vtree | None = None) -> int:
    """#SAT over the variables of ``scope`` (default: the whole vtree).

    Runs on the shared IR kernel (:mod:`repro.ir`): the SDD lowers once
    (cached on its manager) and the kernel's gap-aware counting pass
    replaces the plan-based scheme of the seed — which survives as
    :func:`model_count_legacy` (``REPRO_LEGACY=1`` routes back to it).
    """
    from ..compat import legacy_enabled
    if legacy_enabled():
        return model_count_legacy(node, scope)
    manager: SddManager = node.manager
    if scope is None:
        scope = manager.vtree
    if not node.is_constant and not scope.is_ancestor_of(node.vtree):
        raise ValueError("scope does not cover the node's vtree")
    if node.is_false:
        return 0
    from ..ir import ir_kernel, sdd_to_ir
    ir = sdd_to_ir(node)
    count = ir_kernel(ir).model_count()
    return count << (len(scope.variables) - len(ir.variables()))


def model_count_legacy(node: SddNode, scope: Vtree | None = None) -> int:
    """The seed plan-based counting pass (vtree-normalized values).

    .. deprecated:: access via :mod:`repro.compat`; kept as the
       cross-check reference and benchmark baseline.
    """
    manager: SddManager = node.manager
    if scope is None:
        scope = manager.vtree
    if not node.is_constant and not scope.is_ancestor_of(node.vtree):
        raise ValueError("scope does not cover the node's vtree")
    if node.is_false:
        return 0
    if node.is_true:
        return 1 << len(scope.variables)
    mc_cache = getattr(manager, "_mc_cache", None)
    if mc_cache is None:
        mc_cache = manager._mc_cache = {}
    inner = mc_cache.get(node.id)
    if inner is None:
        counts: Dict[int, int] = {}
        for nid, kind, payload in _plan(node):
            if kind == _DECISION:
                counts[nid] = sum(
                    (counts[pid] << len(p_gap))
                    * (counts[sid] << len(s_gap))
                    for pid, p_gap, sid, s_gap in payload)
                mc_cache[nid] = counts[nid]
            else:
                # constants count 1/0 over no variables; a literal 1
                # over its own variable
                counts[nid] = 0 if kind == _FALSE else 1
        inner = counts[node.id]
        mc_cache[node.id] = inner
    return inner << (len(scope.variables) - len(_vtree_vars(node)))


def weighted_model_count(node: SddNode, weights: Mapping[int, float],
                         scope: Vtree | None = None) -> float:
    """WMC with literal weights; a variable absent from the node's
    support contributes W(v) + W(-v).

    IR-kernel backed like :func:`model_count`; the seed's plan-based
    pass survives as :func:`weighted_model_count_legacy`.
    """
    from ..compat import legacy_enabled
    if legacy_enabled():
        return weighted_model_count_legacy(node, weights, scope)
    manager: SddManager = node.manager
    if scope is None:
        scope = manager.vtree
    if not node.is_constant and not scope.is_ancestor_of(node.vtree):
        raise ValueError("scope does not cover the node's vtree")
    if node.is_false:
        return 0.0
    from ..ir import ir_kernel, sdd_to_ir
    ir = sdd_to_ir(node)
    result = ir_kernel(ir).wmc(weights)
    for var in scope.variables - ir.variables():
        result *= weights[var] + weights[-var]
    return result


def weighted_model_count_legacy(node: SddNode,
                                weights: Mapping[int, float],
                                scope: Vtree | None = None) -> float:
    """The seed plan-based WMC pass.

    .. deprecated:: access via :mod:`repro.compat`; kept as the
       cross-check reference and benchmark baseline.
    """
    manager: SddManager = node.manager
    if scope is None:
        scope = manager.vtree
    if not node.is_constant and not scope.is_ancestor_of(node.vtree):
        raise ValueError("scope does not cover the node's vtree")

    def gap_factor(gap_vars) -> float:
        value = 1.0
        for var in gap_vars:
            value *= weights[var] + weights[-var]
        return value

    if node.is_false:
        return 0.0
    if node.is_true:
        return gap_factor(sorted(scope.variables))
    values: Dict[int, float] = {}
    for nid, kind, payload in _plan(node):
        if kind == _DECISION:
            values[nid] = sum(
                values[pid] * gap_factor(p_gap)
                * values[sid] * gap_factor(s_gap)
                for pid, p_gap, sid, s_gap in payload)
        elif kind == _LITERAL:
            values[nid] = weights[payload]
        else:
            values[nid] = 0.0 if kind == _FALSE else 1.0
    outer = sorted(scope.variables - _vtree_vars(node))
    return values[node.id] * gap_factor(outer)


def enumerate_models(node: SddNode, scope: Vtree | None = None
                     ) -> Iterator[Dict[int, bool]]:
    """Yield all models over the variables of ``scope``."""
    manager: SddManager = node.manager
    if scope is None:
        scope = manager.vtree

    def rec(n: SddNode, s: Vtree) -> Iterator[Dict[int, bool]]:
        if n.is_false:
            return
        if n.is_true:
            yield from _all_assignments(sorted(s.variables))
            return
        if n.is_literal:
            var = abs(n.literal)
            rest = sorted(s.variables - {var})
            for partial in _all_assignments(rest):
                partial[var] = n.literal > 0
                yield partial
            return
        v = n.vtree
        free = sorted(s.variables - v.variables)
        for prime, sub in n.elements:
            for left in rec(prime, v.left):
                for right in rec(sub, v.right):
                    for extra in _all_assignments(free):
                        yield {**left, **right, **extra}

    if not node.is_constant and not scope.is_ancestor_of(node.vtree):
        raise ValueError("scope does not cover the node's vtree")
    yield from rec(node, scope)


def _all_assignments(variables: List[int]) -> Iterator[Dict[int, bool]]:
    if not variables:
        yield {}
        return
    var, rest = variables[0], variables[1:]
    for partial in _all_assignments(rest):
        for value in (False, True):
            yield {var: value, **partial}


def sdd_to_nnf(node: SddNode, manager: NnfManager | None = None) -> NnfNode:
    """Export an SDD as a structured d-DNNF circuit (Fig 9 ↔ Fig 13)."""
    if manager is None:
        manager = NnfManager()
    cache: Dict[int, NnfNode] = {}
    for n in node.descendants():
        if n.is_true:
            cache[n.id] = manager.true()
        elif n.is_false:
            cache[n.id] = manager.false()
        elif n.is_literal:
            cache[n.id] = manager.literal(n.literal)
        else:
            cache[n.id] = manager.disjoin(
                *(manager.conjoin(cache[p.id], cache[s.id])
                  for p, s in n.elements))
    return cache[node.id]


def to_dot(node: SddNode, name=str) -> str:
    """Graphviz dot source for an SDD (decision nodes as element boxes)."""
    lines = ["digraph sdd {", "  rankdir=TB;"]
    for n in node.descendants():
        if n.is_true:
            lines.append(f'  n{n.id} [shape=box, label="⊤"];')
        elif n.is_false:
            lines.append(f'  n{n.id} [shape=box, label="⊥"];')
        elif n.is_literal:
            sign = "" if n.literal > 0 else "¬"
            lines.append(f'  n{n.id} [shape=box, '
                         f'label="{sign}{name(abs(n.literal))}"];')
        else:
            ports = "|".join(f"<e{i}> •" for i in range(len(n.elements)))
            lines.append(f'  n{n.id} [shape=record, label="{ports}"];')
            for i, (prime, sub) in enumerate(n.elements):
                lines.append(f"  n{n.id}:e{i} -> n{prime.id} "
                             '[style=dashed];')
                lines.append(f"  n{n.id}:e{i} -> n{sub.id};")
    lines.append("}")
    return "\n".join(lines)
