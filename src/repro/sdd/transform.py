"""SDD transformations: conditioning, quantification, renaming.

Conditioning substitutes constants for literals and re-canonicalises
bottom-up through apply, so results stay canonical SDDs in the same
manager.  Quantification is the classic ∃v f = f|v ∨ f|¬v.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from .manager import SddManager
from .node import SddNode

__all__ = ["condition", "exists", "forall", "rename_literals"]


def condition(node: SddNode, evidence: Mapping[int, bool]) -> SddNode:
    """The SDD of the function with ``evidence`` variables fixed.

    The result no longer depends on the evidence variables (it remains
    a function over the manager's full variable set).
    """
    manager: SddManager = node.manager
    cache: Dict[int, SddNode] = {}

    def rec(n: SddNode) -> SddNode:
        if n.is_constant:
            return n
        hit = cache.get(n.id)
        if hit is not None:
            return hit
        if n.is_literal:
            var = abs(n.literal)
            if var in evidence:
                consistent = evidence[var] == (n.literal > 0)
                result = manager.true if consistent else manager.false
            else:
                result = n
        else:
            result = manager.false
            for prime, sub in n.elements:
                result = manager.disjoin(
                    result, manager.conjoin(rec(prime), rec(sub)))
        cache[n.id] = result
        return result

    return rec(node)


def exists(node: SddNode, variables: Iterable[int]) -> SddNode:
    """Existential quantification: ∃v. f = f|v ∨ f|¬v."""
    manager: SddManager = node.manager
    result = node
    for var in variables:
        result = manager.disjoin(condition(result, {var: True}),
                                 condition(result, {var: False}))
    return result


def forall(node: SddNode, variables: Iterable[int]) -> SddNode:
    """Universal quantification: ∀v. f = f|v ∧ f|¬v."""
    manager: SddManager = node.manager
    result = node
    for var in variables:
        result = manager.conjoin(condition(result, {var: True}),
                                 condition(result, {var: False}))
    return result


def rename_literals(node: SddNode, target: SddManager,
                    mapping: Mapping[int, int] | None = None) -> SddNode:
    """Rebuild an SDD in another manager, optionally renaming variables.

    ``mapping`` sends source variables to target variables (identity by
    default).  The target vtree may be completely different; the
    function is reconstructed bottom-up with apply.
    """
    mapping = dict(mapping or {})
    cache: Dict[int, SddNode] = {}

    def rec(n: SddNode) -> SddNode:
        if n.is_true:
            return target.true
        if n.is_false:
            return target.false
        hit = cache.get(n.id)
        if hit is not None:
            return hit
        if n.is_literal:
            var = abs(n.literal)
            new_var = mapping.get(var, var)
            result = target.literal(new_var if n.literal > 0
                                    else -new_var)
        else:
            result = target.false
            for prime, sub in n.elements:
                result = target.disjoin(
                    result, target.conjoin(rec(prime), rec(sub)))
        cache[n.id] = result
        return result

    return rec(node)
