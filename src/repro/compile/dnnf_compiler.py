"""Compiling CNF into Decision-DNNF by exhaustive DPLL.

This is the "language of search" construction [38]: running a
sharpSAT-style exhaustive DPLL search (unit propagation, component
decomposition, component caching) and keeping its *trace* yields a
Decision-DNNF circuit — decomposable, deterministic, with every or-gate
a decision gate.  DSHARP [56] is exactly this construction on top of
sharpSAT; ours sits on top of :mod:`repro.sat`.

The compiler optionally takes a *priority* variable ordering: priority
variables are decided before all others.  Compiling with the E-MAJSAT
``Y`` variables as priorities produces a *constrained* Decision-DNNF on
which E-MAJSAT and MAJMAJSAT become circuit evaluations (Section 3,
[61, 67]); see :mod:`repro.solvers`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..logic.cnf import Cnf
from ..nnf.node import NnfManager, NnfNode
from ..sat.components import split_components

__all__ = ["DnnfCompiler", "compile_cnf"]

Clause = Tuple[int, ...]


class DnnfCompiler:
    """CNF → Decision-DNNF knowledge compiler.

    Parameters
    ----------
    manager:
        The :class:`NnfManager` to build nodes in (fresh one by default).
    use_components:
        Split residual CNFs into independent components (and-nodes).
    use_cache:
        Memoise compiled components.
    priority:
        Variables to branch on first, in order.  While any priority
        variable occurs in the residual CNF, component decomposition is
        still applied, but branching picks priority variables — this
        yields circuits in which every path decides all (relevant)
        priority variables before any other variable.
    """

    def __init__(self, manager: NnfManager | None = None,
                 use_components: bool = True, use_cache: bool = True,
                 priority: Sequence[int] | None = None):
        self.manager = manager or NnfManager()
        self.use_components = use_components
        self.use_cache = use_cache
        self.priority = {v: i for i, v in enumerate(priority or ())}
        self.cache: Dict[FrozenSet[Clause], NnfNode] = {}
        self.cache_hits = 0
        self.decisions = 0

    def compile(self, cnf: Cnf) -> NnfNode:
        """Compile; the circuit mentions only constrained variables.

        Variables of ``cnf`` that appear in no clause are unconstrained:
        count with ``model_count(root, variables=range(1, n+1))`` to
        account for them.
        """
        self.cache.clear()
        self.cache_hits = 0
        self.decisions = 0
        if any(len(c) == 0 for c in cnf.clauses):
            return self.manager.false()
        return self._compile(list(cnf.clauses))

    # -- search --------------------------------------------------------------
    def _compile(self, clauses: List[Clause]) -> NnfNode:
        implied, residual = self._unit_propagate(clauses)
        if residual is None:
            return self.manager.false()
        guards = [self.manager.literal(lit) for lit in sorted(
            implied, key=abs)]
        if not residual:
            return self.manager.conjoin(*guards)
        if self.use_components:
            parts = split_components(residual)
        else:
            parts = [residual]
        compiled = [self._compile_component(part) for part in parts]
        return self.manager.conjoin(*(guards + compiled))

    def _compile_component(self, clauses: List[Clause]) -> NnfNode:
        key: Optional[FrozenSet[Clause]] = None
        if self.use_cache:
            key = frozenset(clauses)
            hit = self.cache.get(key)
            if hit is not None:
                self.cache_hits += 1
                return hit
        var = self._pick_variable(clauses)
        self.decisions += 1
        branches = []
        for value in (True, False):
            literal = var if value else -var
            conditioned = self._condition(clauses, var, value)
            if conditioned is None:
                sub = self.manager.false()
            else:
                sub = self._compile(conditioned)
            branches.append(self.manager.conjoin(
                self.manager.literal(literal), sub))
        node = self.manager.disjoin(*branches)
        if key is not None:
            self.cache[key] = node
        return node

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _unit_propagate(clauses: List[Clause]
                        ) -> Tuple[List[int], Optional[List[Clause]]]:
        """Returns (implied literals, residual clauses) or (_, None) on
        conflict.  The residual mentions no implied variable."""
        implied: Dict[int, bool] = {}
        current = clauses
        while True:
            units = [c[0] for c in current if len(c) == 1]
            if not units:
                return ([v if val else -v for v, val in implied.items()],
                        current)
            for lit in units:
                var, value = abs(lit), lit > 0
                if implied.get(var, value) != value:
                    return ([], None)
                implied[var] = value
            reduced: List[Clause] = []
            for clause in current:
                satisfied = False
                kept: List[int] = []
                for lit in clause:
                    var = abs(lit)
                    if var in implied:
                        if implied[var] == (lit > 0):
                            satisfied = True
                            break
                    else:
                        kept.append(lit)
                if satisfied:
                    continue
                if not kept:
                    return ([], None)
                reduced.append(tuple(kept))
            current = reduced

    def _pick_variable(self, clauses: List[Clause]) -> int:
        counts: Dict[int, int] = {}
        for clause in clauses:
            for lit in clause:
                counts[abs(lit)] = counts.get(abs(lit), 0) + 1
        prioritized = [v for v in counts if v in self.priority]
        if prioritized:
            return min(prioritized, key=lambda v: self.priority[v])
        return max(counts, key=lambda v: (counts[v], -v))

    @staticmethod
    def _condition(clauses: List[Clause], var: int, value: bool
                   ) -> Optional[List[Clause]]:
        result: List[Clause] = []
        for clause in clauses:
            if any(abs(lit) == var and (lit > 0) == value for lit in clause):
                continue
            reduced = tuple(lit for lit in clause if abs(lit) != var)
            if not reduced:
                return None
            result.append(reduced)
        return result


def compile_cnf(cnf: Cnf, manager: NnfManager | None = None,
                priority: Sequence[int] | None = None) -> NnfNode:
    """One-shot CNF → Decision-DNNF compilation."""
    compiler = DnnfCompiler(manager=manager, priority=priority)
    return compiler.compile(cnf)
