"""Compiling CNF into Decision-DNNF by exhaustive DPLL.

This is the "language of search" construction [38]: running a
sharpSAT-style exhaustive DPLL search (unit propagation, component
decomposition, component caching) and keeping its *trace* yields a
Decision-DNNF circuit — decomposable, deterministic, with every or-gate
a decision gate.  DSHARP [56] is exactly this construction on top of
sharpSAT; ours sits on top of :mod:`repro.sat`.

The compiler optionally takes a *priority* variable ordering: priority
variables are decided before all others.  Compiling with the E-MAJSAT
``Y`` variables as priorities produces a *constrained* Decision-DNNF on
which E-MAJSAT and MAJMAJSAT become circuit evaluations (Section 3,
[61, 67]); see :mod:`repro.solvers`.

Hot-path configuration (see ``docs/performance.md``): by default the
search runs on a persistent two-watched-literal trail engine over
clause indices — conditioning is an enqueue plus propagation,
unconditioning a trail rewind, and no residual clause list is ever
materialised (``propagator="legacy"`` restores the seed's recursion
with per-node clause-list rebuilding and rescan propagation as a
benchmark baseline).  ``cache_mode`` picks the component cache keys:
cheap canonical hashes by default, ``"exact"`` collision-free
materialised keys.  ``stats`` is a
:class:`repro.perf.instrument.Counter` accumulating propagations,
clause visits, decisions and cache hits per ``compile`` call.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..limits.budget import Budget, BudgetExceeded, resolve_budget
from ..logic.cnf import Cnf
from ..nnf.node import NnfManager, NnfNode
from ..perf.instrument import Counter
from ..sat.components import split_components, trail_components
from ..sat.counter import component_key
from ..sat.propagation import TrailPropagator

__all__ = ["DnnfCompiler", "compile_cnf"]

Clause = Tuple[int, ...]


class DnnfCompiler:
    """CNF → Decision-DNNF knowledge compiler.

    Parameters
    ----------
    manager:
        The :class:`NnfManager` to build nodes in (fresh one by default).
    use_components:
        Split residual CNFs into independent components (and-nodes).
    use_cache:
        Memoise compiled components.
    priority:
        Variables to branch on first, in order.  While any priority
        variable occurs in the residual CNF, component decomposition is
        still applied, but branching picks priority variables — this
        yields circuits in which every path decides all (relevant)
        priority variables before any other variable.
    cache_mode:
        ``"hash"`` (default) keys the component cache by a cheap
        canonical hash; ``"exact"`` by the frozenset of clauses — the
        collision-free correctness fallback.
    propagator:
        ``"watched"`` (default) runs the trail-based search on the
        two-watched-literal engine; ``"legacy"`` the seed's clause-list
        recursion with rescan propagation, kept as a measurable
        baseline.  ``None`` defers to
        :func:`repro.compat.default_propagator` (``REPRO_LEGACY``).
    store:
        An optional :class:`repro.ir.store.ArtifactStore`: compilations
        are looked up by the SHA-256 of (compiler name, config, DIMACS
        text) and served from disk on a hit — the circuit is read back
        from canonical ``.nnf`` text and lifted into ``manager``.
        Defaults to :func:`repro.ir.store.default_store`
        (``$REPRO_CACHE_DIR``, unset → no caching).
    budget:
        Optional :class:`~repro.limits.budget.Budget`: one node charged
        per decision, one cache entry per memoised component.
        Exhaustion raises
        :class:`~repro.limits.budget.BudgetExceeded` with the
        decision/cache/circuit counters so far in ``partial``.  With no
        explicit budget the ambient one (:meth:`Budget.scope`) governs;
        :func:`repro.limits.restarts.compile_with_restarts` builds the
        budgeted retry loop on top.
    optimize:
        Post-compile optimization hook.  ``None`` (default) leaves the
        compiled circuit untouched; ``True`` runs the default
        :mod:`repro.ir.passes` pipeline, a pass-name sequence or
        comma-string runs that pipeline.  Every rewrite is
        certification-gated; the Tseitin auxiliaries recorded in the
        input CNF's ``aux_vars`` metadata drive the pruning pass, and
        any variables actually forgotten land in
        :attr:`forgotten_vars` (the caller must exclude them when
        widening model counts — the 2^k correction).  With a store,
        the optimized twin is saved as a variant artifact keyed by the
        pipeline signature; warm loads reuse it via
        :meth:`~repro.ir.store.ArtifactStore.load_variant`.
        :attr:`optimize_report` carries the per-pass audit trail.
    proof:
        Emit a ``repro-proof/1`` equivalence trace while searching
        (:mod:`repro.proof`): every decision split, component
        partition, unit implication, conflict leaf and cache
        back-reference is logged so the independent checker
        (:func:`repro.proof.check_proof`) can replay the compilation
        against the original DIMACS and certify circuit ≡ CNF.  The
        sealed trace lands on :attr:`last_proof` (and as a ``.proof``
        sidecar in the store, when one is wired).  Proof mode always
        re-runs the search — a warm artifact has no trace — and
        requires the watched propagator.  A budget-interrupted
        compile leaves :attr:`last_proof` as None: partial traces
        prove nothing.
    """

    def __init__(self, manager: NnfManager | None = None,
                 use_components: bool = True, use_cache: bool = True,
                 priority: Sequence[int] | None = None,
                 cache_mode: str = "hash",
                 propagator: str | None = None, store=None,
                 budget: Optional[Budget] = None,
                 optimize: "bool | str | Sequence[str] | None" = None,
                 proof: bool = False):
        if propagator is None:
            from ..compat import default_propagator
            propagator = default_propagator()
        if cache_mode not in ("hash", "exact"):
            raise ValueError(f"unknown cache_mode {cache_mode!r}")
        if propagator not in ("watched", "legacy"):
            raise ValueError(f"unknown propagator {propagator!r}")
        if proof and propagator != "watched":
            raise ValueError(
                "proof logging requires the watched (trail) "
                "propagator; the legacy baseline emits no trace")
        if store is None:
            from ..ir.store import default_store
            store = default_store()
        self.manager = manager or NnfManager()
        self.use_components = use_components
        self.use_cache = use_cache
        self.cache_mode = cache_mode
        self.propagator = propagator
        self.store = store
        self.budget = budget
        self._active_budget: Optional[Budget] = None
        self.priority = {v: i for i, v in enumerate(priority or ())}
        if optimize is True:
            optimize = ()  # the default pipeline
        elif optimize is False:
            optimize = None
        if optimize is not None:
            from ..ir.passes import parse_passes
            optimize = parse_passes(optimize or None)
        self.optimize = optimize
        self.optimize_report: Optional[dict] = None
        self.forgotten_vars: frozenset[int] = frozenset()
        self.proof = proof
        #: the ``repro-proof/1`` trace of the last proof-mode compile
        self.last_proof: Optional[str] = None
        self._trace = None
        self._proof_ids: Dict[Hashable, int] = {}
        self.cache: Dict[Hashable, NnfNode] = {}
        self.stats = Counter()
        self.cache_hits = 0
        self.decisions = 0

    def compile(self, cnf: Cnf) -> NnfNode:
        """Compile; the circuit mentions only constrained variables.

        Variables of ``cnf`` that appear in no clause are unconstrained:
        count with ``model_count(root, variables=range(1, n+1))`` to
        account for them.
        """
        self.cache.clear()
        self.stats.clear()
        self.cache_hits = 0
        self.decisions = 0
        self.optimize_report = None
        self.forgotten_vars = frozenset()
        self.last_proof = None
        self._trace = None
        self._proof_ids = {}
        self._active_budget = resolve_budget(self.budget)
        key = None
        if self.store is not None:
            key = self._artifact_key(cnf)
        if self.proof:
            # proof mode always re-runs the search — a warm artifact
            # has no trace to vouch for it (the facade short-circuits
            # already-PROVED keys before ever reaching the compiler)
            from ..proof.trace import TraceBuilder, dimacs_digest
            self._trace = TraceBuilder(cnf.num_vars, len(cnf.clauses),
                                       dimacs_digest(cnf.to_dimacs()))
        if any(len(c) == 0 for c in cnf.clauses):
            root = self.manager.false()
            if key is not None:
                # the trivial artifact still has to land in the store:
                # a .proof sidecar with no .nnf to bind to would refute
                from ..ir.core import (FLAG_DECOMPOSABLE,
                                       FLAG_DETERMINISTIC)
                from ..ir.lower import nnf_to_ir
                self.store.save_nnf(key, nnf_to_ir(
                    root, flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC))
            if self._trace is not None:
                self._trace.root_conflict()
                self._finish_proof(key, root)
            return root
        if self.store is not None and self._trace is None:
            from ..ir.core import FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC
            cached = self.store.load_nnf(
                key, flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC)
            if cached is not None:
                from ..ir.lower import ir_to_nnf
                self.stats.incr("artifact_cache_hits")
                if self.optimize is not None:
                    return self._post_optimize(cnf, key, cached)
                return ir_to_nnf(cached, self.manager)
        try:
            if self.propagator == "watched":
                root = self._compile_trail(list(cnf.clauses))
            else:
                root = self._compile(list(cnf.clauses))
        except BudgetExceeded as error:
            self._trace = None  # a partial trace proves nothing
            error.partial.setdefault("operation", "compile")
            error.partial.setdefault("decisions", self.decisions)
            error.partial.setdefault("cache_entries", len(self.cache))
            raise
        if self._trace is not None:
            self._finish_proof(key, root)
        base_ir = None
        if key is not None:
            from ..ir.core import FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC
            from ..ir.lower import nnf_to_ir
            # Decision-DNNF is decomposable and deterministic by
            # construction; assert it so the artifact certificate
            # covers exactly the flags the warm-load path claims
            base_ir = nnf_to_ir(
                root, flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC)
            self.store.save_nnf(key, base_ir)
        if self.optimize is not None:
            if base_ir is None:
                from ..ir.core import (FLAG_DECOMPOSABLE,
                                       FLAG_DETERMINISTIC)
                from ..ir.lower import nnf_to_ir
                base_ir = nnf_to_ir(
                    root, flags=FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC)
            return self._post_optimize(cnf, key, base_ir)
        return root

    def _finish_proof(self, key: Optional[str], root: NnfNode) -> None:
        """Seal the emitted trace: bind it to the built circuit's
        semantic digest, expose it on :attr:`last_proof`, and file it
        as a ``.proof`` sidecar next to the artifact when a store is
        wired."""
        from ..proof.trace import circuit_digest
        trace = self._trace
        self._trace = None
        if trace is None:
            return
        trace.set_circuit_digest(circuit_digest(root))
        text = trace.text()
        self.last_proof = text
        self.stats.incr("proof_steps", trace.steps())
        if self.store is not None and key is not None:
            self.store.save_proof(key, text)

    def _post_optimize(self, cnf: Cnf, key: Optional[str],
                       ir) -> NnfNode:
        """Run the certification-gated pass pipeline on the compiled
        circuit; reuse / record a store variant when a store is wired.
        Degrades to the unoptimized circuit, never errors."""
        from ..ir.lower import ir_to_nnf
        from ..ir.passes import PassManager, pipeline_signature
        passes = self.optimize or ()
        if key is not None and self.store is not None:
            signature = pipeline_signature(passes)
            cached = self.store.load_variant(key, signature)
            if cached is not None:
                variant, info = cached
                self.forgotten_vars = frozenset(
                    int(v) for v in info.get("forgotten", ()))
                self.optimize_report = {
                    "passes": list(passes), "signature": signature,
                    "before_nodes": ir.n, "after_nodes": variant.n,
                    "forgotten_vars": sorted(self.forgotten_vars),
                    "cached": True}
                self.stats.incr("optimize_variant_hits")
                return ir_to_nnf(variant, self.manager)
        pass_manager = PassManager(
            passes, aux_vars=getattr(cnf, "aux_vars", frozenset()))
        result = pass_manager.run(ir, budget=self._active_budget)
        self.optimize_report = result.as_wire()
        self.forgotten_vars = result.forgotten
        if result.changed and key is not None and self.store is not None:
            self.store.save_variant(key, result.ir, result.signature,
                                    result.passes, result.forgotten)
        return ir_to_nnf(result.ir, self.manager)

    def _artifact_key(self, cnf: Cnf) -> str:
        from ..ir.store import artifact_key
        config = {
            "use_components": self.use_components,
            "use_cache": self.use_cache,
            "cache_mode": self.cache_mode,
            "propagator": self.propagator,
            "priority": sorted(self.priority, key=self.priority.get),
        }
        return artifact_key(cnf.to_dimacs(), "dnnf", config)

    def artifact_key_for(self, cnf: Cnf) -> str:
        """The store content key this compiler would file ``cnf``
        under — the dedup key of the serving layer."""
        return self._artifact_key(cnf)

    # -- trail-based search (the default, sharpSAT-style) ---------------------
    # The same architecture as ModelCounter's trail path: one persistent
    # watched-literal engine per compile, conditioning by trail
    # enqueue/rewind, and clause *indices* instead of materialised
    # residual clause lists.  The trail delta of a branch (decision plus
    # propagated literals) becomes the branch's literal conjuncts, so
    # the produced circuit is a Decision-DNNF exactly like the legacy
    # recursion's — shapes can differ marginally because the index-based
    # cache distinguishes clause multiplicity where frozensets do not.
    def _compile_trail(self, clauses: List[Clause]) -> NnfNode:
        engine = TrailPropagator(clauses, max(
            (abs(lit) for c in clauses for lit in c), default=0), self.stats)
        trace = self._trace
        if not engine.assert_root():
            if trace is not None:
                trace.root_conflict()
            return self.manager.false()
        root_lits = sorted(engine.trail, key=abs)
        if trace is not None:
            trace.root(root_lits)
        guards = [self.manager.literal(lit) for lit in root_lits]
        parts = self._ct_parts(range(len(clauses)), engine, clauses)
        return self.manager.conjoin(*(guards + parts))

    def _ct_parts(self, indices, engine: TrailPropagator,
                  clauses: List[Clause]) -> List[NnfNode]:
        components, occ = trail_components(clauses, indices, engine.values,
                                           self.use_components)
        if self.use_components and components:
            self.stats.incr("component_splits")
            self.stats.incr("components_found", len(components))
        if self._trace is not None:
            self._trace.begin_partition(len(components))
        return [self._ct_component(comp_indices, comp_vars, occ,
                                   engine, clauses)
                for comp_indices, comp_vars in components]

    def _ct_component(self, comp_indices: List[int], comp_vars: List[int],
                      occ, engine: TrailPropagator,
                      clauses: List[Clause]) -> NnfNode:
        trace = self._trace
        key: Optional[Hashable] = None
        if self.use_cache:
            # (clause ids, free vars) fully determines the residual: all
            # assigned literals of an unsatisfied clause are false
            ids = tuple(comp_indices)
            vrs = tuple(sorted(comp_vars))
            key = ((hash(ids), hash(vrs))
                   if self.cache_mode == "hash" else (ids, vrs))
            hit = self.cache.get(key)
            if hit is not None:
                self.cache_hits += 1
                self.stats.incr("cache_hits")
                if trace is not None:
                    # back-reference to the hit's proved subtrace; the
                    # checker re-derives both residuals, so a key
                    # collision serving the wrong node is refuted
                    trace.cache_hit(self._proof_ids[key], comp_indices)
                return hit
        if self._active_budget is not None:
            self._active_budget.tick()
        var = self._pick_trail(comp_vars, occ)
        self.decisions += 1
        self.stats.incr("decisions")
        if trace is not None:
            trace.begin_component(comp_indices)
            trace.decision(var)
        branches = []
        for value in (True, False):
            literal = var if value else -var
            mark = len(engine.trail)
            if engine.condition(literal):
                # the decision literal (trail[mark]) must stay the first
                # conjunct: or-gates are decision gates (X∧α)∨(¬X∧β)
                implied = sorted(engine.trail[mark + 1:], key=abs)
                if trace is not None:
                    trace.branch(literal, implied)
                guards = [self.manager.literal(lit)
                          for lit in [literal] + implied]
                parts = self._ct_parts(comp_indices, engine, clauses)
                branches.append(self.manager.conjoin(*(guards + parts)))
            else:
                if trace is not None:
                    trace.branch_conflict(literal)
                branches.append(self.manager.conjoin(
                    self.manager.literal(literal), self.manager.false()))
            engine.undo_to(mark)
        node = self.manager.disjoin(*branches)
        if trace is not None:
            pid = trace.end_component()
            if key is not None:
                self._proof_ids[key] = pid
        if key is not None:
            if self._active_budget is not None:
                self._active_budget.charge_cache()
            self.cache[key] = node
        return node

    def _pick_trail(self, comp_vars: List[int], occ) -> int:
        if self.priority:
            prioritized = [v for v in comp_vars if v in self.priority]
            if prioritized:
                return min(prioritized, key=lambda v: self.priority[v])
        # all occurrences of a component variable lie inside the
        # component, so the shared occurrence lists are its scores
        return max(comp_vars, key=lambda v: (len(occ[v]), -v))

    # -- clause-list search (the measurable legacy baseline) -------------------
    def _compile(self, clauses: List[Clause]) -> NnfNode:
        implied, residual = self._unit_propagate(clauses)
        if residual is None:
            return self.manager.false()
        guards = [self.manager.literal(lit) for lit in sorted(
            implied, key=abs)]
        if not residual:
            return self.manager.conjoin(*guards)
        if self.use_components:
            parts = split_components(residual, self.stats)
        else:
            parts = [residual]
        compiled = [self._compile_component(part) for part in parts]
        return self.manager.conjoin(*(guards + compiled))

    def _compile_component(self, clauses: List[Clause]) -> NnfNode:
        key: Optional[Hashable] = None
        if self.use_cache:
            key = component_key(clauses, self.cache_mode)
            hit = self.cache.get(key)
            if hit is not None:
                self.cache_hits += 1
                self.stats.incr("cache_hits")
                return hit
        if self._active_budget is not None:
            self._active_budget.tick()
        var = self._pick_variable(clauses)
        self.decisions += 1
        self.stats.incr("decisions")
        branches = []
        for value in (True, False):
            literal = var if value else -var
            conditioned = self._condition(clauses, var, value)
            if conditioned is None:
                sub = self.manager.false()
            else:
                sub = self._compile(conditioned)
            branches.append(self.manager.conjoin(
                self.manager.literal(literal), sub))
        node = self.manager.disjoin(*branches)
        if key is not None:
            self.cache[key] = node
        return node

    # -- helpers ---------------------------------------------------------------
    def _unit_propagate(self, clauses: List[Clause]
                        ) -> Tuple[List[int], Optional[List[Clause]]]:
        """Returns (implied literals, residual clauses) or (_, None) on
        conflict.  The residual mentions no implied variable."""
        return self._unit_propagate_legacy(clauses, self.stats)

    @staticmethod
    def _unit_propagate_legacy(clauses: List[Clause],
                               stats: Counter | None = None
                               ) -> Tuple[List[int],
                                          Optional[List[Clause]]]:
        """The seed propagator: re-scans every clause per round."""
        implied: Dict[int, bool] = {}
        current = clauses
        while True:
            if stats is not None:
                stats.incr("clause_visits", len(current))
            units = [c[0] for c in current if len(c) == 1]
            if not units:
                return ([v if val else -v for v, val in implied.items()],
                        current)
            for lit in units:
                var, value = abs(lit), lit > 0
                if implied.get(var, value) != value:
                    return ([], None)
                implied[var] = value
                if stats is not None:
                    stats.incr("propagations")
            reduced: List[Clause] = []
            for clause in current:
                satisfied = False
                kept: List[int] = []
                for lit in clause:
                    var = abs(lit)
                    if var in implied:
                        if implied[var] == (lit > 0):
                            satisfied = True
                            break
                    else:
                        kept.append(lit)
                if satisfied:
                    continue
                if not kept:
                    return ([], None)
                reduced.append(tuple(kept))
            current = reduced

    def _pick_variable(self, clauses: List[Clause]) -> int:
        counts: Dict[int, int] = {}
        for clause in clauses:
            for lit in clause:
                counts[abs(lit)] = counts.get(abs(lit), 0) + 1
        if self.priority:
            prioritized = [v for v in counts if v in self.priority]
            if prioritized:
                return min(prioritized, key=lambda v: self.priority[v])
        return max(counts, key=lambda v: (counts[v], -v))

    @staticmethod
    def _condition(clauses: List[Clause], var: int, value: bool
                   ) -> Optional[List[Clause]]:
        # satisfied clauses are dropped first, so the remaining
        # occurrences of `var` are exactly the false literal — tuple
        # containment scans at C level
        true_lit = var if value else -var
        false_lit = -true_lit
        result: List[Clause] = []
        for clause in clauses:
            if true_lit in clause:
                continue
            if false_lit in clause:
                reduced = tuple(lit for lit in clause if lit != false_lit)
                if not reduced:
                    return None
                result.append(reduced)
            else:
                result.append(clause)
        return result


def compile_cnf(cnf: Cnf, manager: NnfManager | None = None,
                priority: Sequence[int] | None = None,
                budget: Optional[Budget] = None) -> NnfNode:
    """One-shot CNF → Decision-DNNF compilation."""
    compiler = DnnfCompiler(manager=manager, priority=priority,
                            budget=budget)
    return compiler.compile(cnf)
