"""Knowledge compilers: CNF to Decision-DNNF."""

from .dnnf_compiler import DnnfCompiler, compile_cnf

__all__ = ["DnnfCompiler", "compile_cnf"]
