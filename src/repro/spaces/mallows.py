"""The Mallows ranking model [49] — the dedicated baseline of Fig 17.

Pr(σ) ∝ φ^d(σ, σ₀) with d the Kendall-tau distance to a central
ranking σ₀ and dispersion φ ∈ (0, 1].  The paper's point (Section 4.1,
[17]) is that PSDDs learned on the ranking space are *competitive with
dedicated approaches* like this one; the FIG17 benchmark makes that
comparison.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, Tuple

__all__ = ["kendall_tau", "MallowsModel", "fit_mallows", "borda_ranking"]


def kendall_tau(a: Sequence[int], b: Sequence[int]) -> int:
    """Number of discordant pairs between two rankings.

    Rankings are sequences where position j holds the item ranked j-th.
    """
    if sorted(a) != sorted(b):
        raise ValueError("rankings must be over the same items")
    position_in_b = {item: j for j, item in enumerate(b)}
    mapped = [position_in_b[item] for item in a]
    count = 0
    for i in range(len(mapped)):
        for j in range(i + 1, len(mapped)):
            if mapped[i] > mapped[j]:
                count += 1
    return count


class MallowsModel:
    """Mallows distribution with central ranking ``center`` and
    dispersion ``phi``."""

    def __init__(self, center: Sequence[int], phi: float):
        if not 0 < phi <= 1:
            raise ValueError("phi must be in (0, 1]")
        self.center = list(center)
        self.phi = phi
        self.n = len(self.center)

    def normalizer(self) -> float:
        """Z = Π_{i=1}^{n-1} (1 + φ + ... + φ^i)."""
        z = 1.0
        for i in range(1, self.n):
            z *= sum(self.phi ** k for k in range(i + 1))
        return z

    def probability(self, ranking: Sequence[int]) -> float:
        return self.phi ** kendall_tau(ranking, self.center) / \
            self.normalizer()

    def log_likelihood(self, data: Sequence[Tuple[Sequence[int], float]]
                       ) -> float:
        log_z = math.log(self.normalizer())
        total = 0.0
        for ranking, count in data:
            total += count * (kendall_tau(ranking, self.center)
                              * math.log(self.phi) - log_z)
        return total

    def sample(self, rng: random.Random | None = None) -> List[int]:
        """Repeated-insertion sampling (RIM): insert the i-th central
        item at offset k from the end with probability ∝ φ^k."""
        rng = rng or random.Random()
        result: List[int] = []
        for i, item in enumerate(self.center):
            weights = [self.phi ** (i - pos) for pos in range(i + 1)]
            total = sum(weights)
            pick = rng.random() * total
            cumulative = 0.0
            position = i
            for pos, w in enumerate(weights):
                cumulative += w
                if pick < cumulative:
                    position = pos
                    break
            result.insert(position, item)
        return result


def borda_ranking(data: Sequence[Tuple[Sequence[int], float]]
                  ) -> List[int]:
    """The Borda-count consensus ranking (items by mean position)."""
    totals: Dict[int, float] = {}
    weights: float = 0.0
    for ranking, count in data:
        for position, item in enumerate(ranking):
            totals[item] = totals.get(item, 0.0) + count * position
        weights += count
    return sorted(totals, key=lambda item: (totals[item], item))


def fit_mallows(data: Sequence[Tuple[Sequence[int], float]],
                grid: int = 200) -> MallowsModel:
    """Fit center (Borda consensus) and dispersion (grid + golden
    refinement over φ ∈ (0, 1])."""
    center = borda_ranking(data)

    def ll(phi: float) -> float:
        return MallowsModel(center, phi).log_likelihood(data)

    best_phi, best_ll = 1.0, ll(1.0)
    for k in range(1, grid):
        phi = k / grid
        value = ll(phi)
        if value > best_ll:
            best_phi, best_ll = phi, value
    # golden-section refinement around the grid optimum
    lo = max(best_phi - 1.0 / grid, 1e-6)
    hi = min(best_phi + 1.0 / grid, 1.0)
    golden = (math.sqrt(5) - 1) / 2
    for _ in range(60):
        mid1 = hi - golden * (hi - lo)
        mid2 = lo + golden * (hi - lo)
        if ll(mid1) < ll(mid2):
            lo = mid1
        else:
            hi = mid2
    phi = (lo + hi) / 2
    if ll(phi) < best_ll:
        phi = best_phi
    return MallowsModel(center, phi)
