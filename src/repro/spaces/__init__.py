"""Structured/combinatorial probability spaces: routes and rankings."""

from .gridmap import RoadMap, grid_map
from .routes import (RouteModel, degree_relaxation_cnf, enumerate_routes,
                     route_space_sdd)
from .rankings import RankingSpace
from .subsets import SubsetSpace, exactly_k_sdd
from .mallows import MallowsModel, borda_ranking, fit_mallows, kendall_tau

__all__ = ["SubsetSpace", "exactly_k_sdd",
           "RoadMap", "grid_map", "RouteModel", "degree_relaxation_cnf",
           "enumerate_routes", "route_space_sdd", "RankingSpace",
           "MallowsModel", "borda_ranking", "fit_mallows", "kendall_tau"]
