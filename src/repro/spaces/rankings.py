"""Ranking (total order) spaces over n items (Fig 17).

A ranking of n items is encoded with n² Boolean variables A_ij — true
iff item i sits at position j.  The valid assignments are exactly the
permutation matrices: each item in exactly one position and each
position holding exactly one item.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..logic.cnf import Cnf, exactly_one
from ..sdd.compiler import compile_cnf_sdd
from ..sdd.manager import SddManager
from ..sdd.node import SddNode
from ..vtree.construct import balanced_vtree

__all__ = ["RankingSpace"]


class RankingSpace:
    """The combinatorial space of rankings of ``n`` items.

    Items and positions are 0-based; ``variable(i, j)`` is the Boolean
    variable for "item i is at position j" (the paper's A_ij, Fig 17).
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("need at least one item")
        self.n = n

    def variable(self, item: int, position: int) -> int:
        if not (0 <= item < self.n and 0 <= position < self.n):
            raise ValueError("item/position out of range")
        return item * self.n + position + 1

    def variables(self) -> List[int]:
        return list(range(1, self.n * self.n + 1))

    def constraint_cnf(self) -> Cnf:
        """Permutation-matrix constraints: exactly one position per item
        and exactly one item per position."""
        clauses: List[Tuple[int, ...]] = []
        for item in range(self.n):
            clauses.extend(exactly_one(
                [self.variable(item, j) for j in range(self.n)]))
        for position in range(self.n):
            clauses.extend(exactly_one(
                [self.variable(i, position) for i in range(self.n)]))
        return Cnf(clauses, num_vars=self.n * self.n)

    def compile(self, manager: SddManager | None = None
                ) -> Tuple[SddNode, SddManager]:
        """Compile the space into an SDD (model count = n!)."""
        cnf = self.constraint_cnf()
        if manager is None:
            manager = SddManager(balanced_vtree(self.variables()))
        return compile_cnf_sdd(cnf, manager=manager)

    # -- encoding / decoding -----------------------------------------------------
    def ranking_assignment(self, ranking: Sequence[int]
                           ) -> Dict[int, bool]:
        """The complete assignment of a ranking.

        ``ranking[j]`` is the item at position j (a permutation of
        0..n-1) — the red assignment on the left of Fig 17.
        """
        if sorted(ranking) != list(range(self.n)):
            raise ValueError(f"{ranking!r} is not a permutation")
        positive = {self.variable(item, position)
                    for position, item in enumerate(ranking)}
        return {v: v in positive for v in self.variables()}

    def assignment_ranking(self, assignment: Mapping[int, bool]
                           ) -> List[int]:
        """Decode an in-space assignment back to its ranking."""
        ranking = [-1] * self.n
        placed: set[int] = set()
        for item in range(self.n):
            for position in range(self.n):
                if assignment[self.variable(item, position)]:
                    if ranking[position] != -1:
                        raise ValueError("two items share a position")
                    if item in placed:
                        raise ValueError("item appears in two positions")
                    ranking[position] = item
                    placed.add(item)
        if -1 in ranking:
            raise ValueError("assignment is not a valid ranking")
        return ranking

    def is_valid(self, assignment: Mapping[int, bool]) -> bool:
        """Validity test (the orange assignment on the right of Fig 17,
        with item 2 in two positions, fails it)."""
        try:
            self.assignment_ranking(assignment)
        except ValueError:
            return False
        return True
