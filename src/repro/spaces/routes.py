"""Route spaces: compiling "all valid routes" into tractable circuits
and learning route distributions from trajectory data (Figs 16, 22).

The exact space (simple source→destination paths) is compiled by
enumerating paths and disjoining their terms into an SDD.  A degree-
constraint CNF *relaxation* is also provided: it is linear to build and
captures the local "0-or-2 incident edges" conditions, but admits
spurious models containing disjoint cycles — the reason the paper's
references develop dedicated compilation [16, 60].  A test/bench
contrasts the two.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, \
    Sequence, Tuple

import networkx as nx

from ..logic.cnf import Cnf, exactly_one
from ..sdd.compiler import compile_terms_sdd
from ..sdd.manager import SddManager
from ..sdd.node import SddNode
from ..psdd.psdd import PsddNode, psdd_from_sdd
from ..psdd.learn import learn_parameters
from ..psdd.queries import marginal
from ..vtree.construct import balanced_vtree
from .gridmap import Node, RoadMap

__all__ = ["enumerate_routes", "route_space_sdd", "degree_relaxation_cnf",
           "RouteModel"]


def enumerate_routes(road_map: RoadMap, source: Node, destination: Node,
                     max_length: Optional[int] = None
                     ) -> List[List[Node]]:
    """All simple paths source → destination as node sequences."""
    cutoff = max_length if max_length is not None else None
    return [list(path) for path in nx.all_simple_paths(
        road_map.graph, source, destination, cutoff=cutoff)]


def route_space_sdd(road_map: RoadMap, source: Node, destination: Node,
                    manager: SddManager | None = None,
                    max_length: Optional[int] = None
                    ) -> Tuple[SddNode, SddManager, List[List[Node]]]:
    """Compile the space of valid routes into an SDD.

    Returns (sdd, manager, routes).  Satisfying inputs of the SDD are
    exactly the edge assignments of the enumerated routes.
    """
    routes = enumerate_routes(road_map, source, destination, max_length)
    if not routes:
        raise ValueError("no route between the given endpoints")
    if manager is None:
        manager = SddManager(balanced_vtree(road_map.variables()))
    terms = []
    for route in routes:
        assignment = road_map.route_assignment(route)
        terms.append([v if value else -v
                      for v, value in sorted(assignment.items())])
    return compile_terms_sdd(terms, manager), manager, routes


def degree_relaxation_cnf(road_map: RoadMap, source: Node,
                          destination: Node) -> Cnf:
    """The local-degree CNF relaxation of the route space.

    Constraints: the source and destination have exactly one incident
    selected edge; every other node has zero or two.  Every valid simple
    route satisfies this, but so do route-plus-disjoint-cycle artifacts
    (the connectivity side conditions of [16, 60] are what remove them).
    """
    clauses: List[Tuple[int, ...]] = []
    for node in road_map.nodes:
        incident = road_map.incident_variables(node)
        if node in (source, destination):
            clauses.extend(exactly_one(incident))
        else:
            # zero or two: for every selected edge there is another
            # selected companion, and never three selected
            for i, var in enumerate(incident):
                others = [w for w in incident if w != var]
                clauses.append(tuple([-var] + others))
            for i, a in enumerate(incident):
                for j, b in enumerate(incident[i + 1:], i + 1):
                    for c in incident[j + 1:]:
                        clauses.append((-a, -b, -c))
    return Cnf(clauses, num_vars=road_map.num_edges)


class RouteModel:
    """A learned distribution over routes (the paper's GPS use case).

    Compile the route space once; learn PSDD parameters from observed
    trajectories; then query edge marginals ("how likely is this street
    on a trip?"), route probabilities and most-probable completions.
    """

    def __init__(self, road_map: RoadMap, source: Node,
                 destination: Node, max_length: Optional[int] = None):
        self.road_map = road_map
        self.source = source
        self.destination = destination
        self.sdd, self.manager, self.routes = route_space_sdd(
            road_map, source, destination, max_length=max_length)
        self.psdd: PsddNode = psdd_from_sdd(self.sdd)

    def fit(self, trajectories: Sequence[Sequence[Node]],
            alpha: float = 0.0) -> "RouteModel":
        """Learn parameters from node-path trajectories."""
        counts: Dict[Tuple[Tuple[int, bool], ...], int] = {}
        for path in trajectories:
            assignment = self.road_map.route_assignment(path)
            key = tuple(sorted(assignment.items()))
            counts[key] = counts.get(key, 0) + 1
        data = [(dict(key), count) for key, count in counts.items()]
        learn_parameters(self.psdd, data, alpha=alpha)
        return self

    def route_probability(self, path: Sequence[Node]) -> float:
        return self.psdd.probability(self.road_map.route_assignment(path))

    def edge_marginal(self, a: Node, b: Node) -> float:
        """Pr(edge {a,b} is on the route)."""
        return marginal(self.psdd, {self.road_map.edge_variable(a, b):
                                    True})

    def most_probable_route(self) -> Tuple[List[Node], float]:
        from ..psdd.queries import mpe
        assignment, p = mpe(self.psdd)
        edges = self.road_map.assignment_route_edges(assignment)
        path = self._edges_to_path(edges)
        return path, p

    def _edges_to_path(self, edges: List[Tuple[Node, Node]]
                       ) -> List[Node]:
        sub = nx.Graph(edges)
        return nx.shortest_path(sub, self.source, self.destination)

    def sample_routes(self, n: int, rng: random.Random | None = None
                      ) -> List[List[Node]]:
        from ..psdd.sample import sample
        rng = rng or random.Random()
        result = []
        for _ in range(n):
            assignment = sample(self.psdd, rng)
            edges = self.road_map.assignment_route_edges(assignment)
            result.append(self._edges_to_path(edges))
        return result
