"""k-subset spaces: tractable models for subset selection ([77]).

The structured space of "choose exactly k of n items" compiles into an
SDD of size O(n·k) by the standard dynamic program; PSDDs over it model
distributions over fixed-size subsets (course schedules, committees,
baskets) with all the usual linear-time queries.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set, Tuple

from ..sdd.manager import SddManager
from ..sdd.node import SddNode
from ..vtree.construct import right_linear_vtree

__all__ = ["SubsetSpace", "exactly_k_sdd"]


def exactly_k_sdd(manager: SddManager, variables: Sequence[int],
                  k: int) -> SddNode:
    """The SDD of "exactly k of ``variables`` are true".

    Built by the choose DP  e(i, j) = (xᵢ ∧ e(i+1, j−1)) ∨
    (¬xᵢ ∧ e(i+1, j)); with apply-based construction the result is the
    canonical SDD for the manager's vtree regardless of the DP order.
    """
    variables = list(variables)
    n = len(variables)
    if not 0 <= k <= n:
        raise ValueError("k out of range")
    cache: Dict[Tuple[int, int], SddNode] = {}

    def build(i: int, j: int) -> SddNode:
        if j < 0 or j > n - i:
            return manager.false
        if i == n:
            return manager.true if j == 0 else manager.false
        key = (i, j)
        hit = cache.get(key)
        if hit is not None:
            return hit
        var = variables[i]
        node = manager.disjoin(
            manager.conjoin(manager.literal(var), build(i + 1, j - 1)),
            manager.conjoin(manager.literal(-var), build(i + 1, j)))
        cache[key] = node
        return node

    return build(0, k)


class SubsetSpace:
    """The space of k-element subsets of items 1..n."""

    def __init__(self, n: int, k: int,
                 manager: SddManager | None = None):
        if n < 1:
            raise ValueError("need at least one item")
        if not 0 <= k <= n:
            raise ValueError("k out of range")
        self.n = n
        self.k = k
        if manager is None:
            manager = SddManager(right_linear_vtree(range(1, n + 1)))
        self.manager = manager
        self.sdd = exactly_k_sdd(manager, range(1, n + 1), k)

    def variables(self) -> List[int]:
        return list(range(1, self.n + 1))

    def subset_assignment(self, subset: Sequence[int]
                          ) -> Dict[int, bool]:
        """The complete assignment selecting exactly ``subset``."""
        chosen: Set[int] = set(subset)
        if len(chosen) != self.k:
            raise ValueError(f"subset must have exactly {self.k} items")
        if not chosen <= set(self.variables()):
            raise ValueError("subset contains unknown items")
        return {v: v in chosen for v in self.variables()}

    def assignment_subset(self, assignment: Mapping[int, bool]
                          ) -> List[int]:
        subset = [v for v in self.variables() if assignment[v]]
        if len(subset) != self.k:
            raise ValueError("assignment does not select k items")
        return subset

    def psdd(self):
        """A fresh (uniform-parameter) PSDD over the subset space."""
        from ..psdd.psdd import psdd_from_sdd
        return psdd_from_sdd(self.sdd)
