"""Road maps as graphs with Boolean edge variables (Fig 16).

A :class:`RoadMap` wraps an undirected graph and assigns each edge a
Boolean variable; a *route* is then the variable assignment setting
exactly its edges to true.  Grid maps (the paper's running example) are
built with :func:`grid_map`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, \
    Sequence, Tuple

import networkx as nx

__all__ = ["RoadMap", "grid_map"]

Node = Hashable
Edge = Tuple[Node, Node]


class RoadMap:
    """An undirected graph whose edges carry Boolean variables 1..m."""

    def __init__(self, graph: nx.Graph):
        self.graph = graph
        self.edges: List[Edge] = [tuple(sorted(edge, key=repr))
                                  for edge in graph.edges()]
        self.edges.sort(key=repr)
        self._edge_var: Dict[Edge, int] = {
            edge: i + 1 for i, edge in enumerate(self.edges)}

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def nodes(self) -> List[Node]:
        return sorted(self.graph.nodes(), key=repr)

    def edge_variable(self, a: Node, b: Node) -> int:
        """The Boolean variable of edge {a, b}."""
        return self._edge_var[tuple(sorted((a, b), key=repr))]

    def variables(self) -> List[int]:
        return list(range(1, self.num_edges + 1))

    def edge_of_variable(self, var: int) -> Edge:
        return self.edges[var - 1]

    def incident_variables(self, node: Node) -> List[int]:
        return sorted(self.edge_variable(node, other)
                      for other in self.graph.neighbors(node))

    def route_assignment(self, node_path: Sequence[Node]
                         ) -> Dict[int, bool]:
        """The complete edge-variable assignment of a node path —
        the paper's red assignment on the left of Fig 16."""
        used = set()
        for a, b in zip(node_path, node_path[1:]):
            if not self.graph.has_edge(a, b):
                raise ValueError(f"no edge between {a!r} and {b!r}")
            used.add(self.edge_variable(a, b))
        return {var: var in used for var in self.variables()}

    def assignment_route_edges(self, assignment: Mapping[int, bool]
                               ) -> List[Edge]:
        """Edges set to true in an assignment."""
        return [self.edge_of_variable(v) for v in self.variables()
                if assignment[v]]

    def is_route(self, assignment: Mapping[int, bool], source: Node,
                 destination: Node) -> bool:
        """Does the assignment encode a valid simple source→destination
        route (connected, no cycles — unlike the orange assignment on
        the right of Fig 16)?"""
        edges = self.assignment_route_edges(assignment)
        if not edges:
            return False
        sub = nx.Graph(edges)
        if source not in sub or destination not in sub:
            return False
        # a simple path: connected, endpoints degree 1, inner degree 2
        if not nx.is_connected(sub):
            return False
        degrees = dict(sub.degree())
        if source == destination:
            return False
        for node, degree in degrees.items():
            expected = 1 if node in (source, destination) else 2
            if degree != expected:
                return False
        return True


def grid_map(rows: int, cols: int) -> RoadMap:
    """A rows × cols grid of intersections (Fig 16 uses a grid 'for
    simplicity')."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    return RoadMap(nx.grid_2d_graph(rows, cols))
