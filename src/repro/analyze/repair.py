"""Property repair: the auto-fixes the ``repair`` gate mode applies.

Smoothness is the one tractability property with a cheap semantics-
preserving repair (Darwiche & Marquis 2002): pad each or-gate child
with ``(v or -v)`` gates for the sibling variables it misses.  The
padding multiplies model counts correctly only because ``v or -v`` is
valid, so the repaired circuit has exactly the models of the original
over the gate's variable set.  Decomposability and determinism have
no such local fix — a violation there means the circuit (or its
compiler) is wrong, and the gate refuses rather than repairs.

This mirrors :func:`repro.nnf.transform.smooth` at the IR level; the
rebuilt IR drops the STRUCTURED flag (padding gates need not respect
the vtree) and keeps parameters intact.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.core import (
    FLAG_SMOOTH,
    FLAG_STRUCTURED,
    KIND_AND,
    KIND_LIT,
    KIND_OR,
    KIND_PARAM,
    KIND_TRUE,
    CircuitIR,
    IrBuilder,
)

__all__ = ["smooth_ir"]


def smooth_ir(ir: CircuitIR) -> CircuitIR:
    """A smooth IR with the same models (and parameters) as ``ir``.

    Each or-gate child missing sibling variables is conjoined with a
    ``(v or -v)`` gate per missing variable.  The result carries the
    original flags plus SMOOTH, minus STRUCTURED.
    """
    if ir.has_flag(FLAG_SMOOTH):
        return ir
    varsets = ir.varsets()
    builder = IrBuilder()
    mapped: List[int] = [0] * ir.n
    tautologies: Dict[int, int] = {}

    def tautology(var: int) -> int:
        gate = tautologies.get(var)
        if gate is None:
            gate = builder.raw_or(
                (builder.literal(var), builder.literal(-var)))
            tautologies[var] = gate
        return gate

    for i in range(ir.n):
        kind = ir.kinds[i]
        if kind == KIND_LIT:
            mapped[i] = builder.literal(ir.lits[i])
        elif kind == KIND_PARAM:
            mapped[i] = builder.param(ir.lits[i])
        elif kind == KIND_TRUE:
            mapped[i] = builder.true()
        elif kind == KIND_AND:
            mapped[i] = builder.raw_and(
                tuple(mapped[c] for c in ir.children(i)))
        elif kind == KIND_OR:
            gate_vars = varsets[i]
            padded: List[int] = []
            for c in ir.children(i):
                missing = gate_vars - varsets[c]
                if missing:
                    padded.append(builder.raw_and(
                        (mapped[c],) + tuple(
                            tautology(v) for v in sorted(missing))))
                else:
                    padded.append(mapped[c])
            mapped[i] = builder.raw_or(tuple(padded))
        else:  # KIND_FALSE
            mapped[i] = builder.false()

    flags = (ir.flags | FLAG_SMOOTH) & ~FLAG_STRUCTURED
    return builder.finish(mapped[ir.root], flags=flags)
