"""Property repair: the auto-fixes the ``repair`` gate mode applies.

Smoothness is the one tractability property with a cheap semantics-
preserving repair (Darwiche & Marquis 2002): pad each or-gate child
with ``(v or -v)`` gates for the sibling variables it misses.
Decomposability and determinism have no such local fix — a violation
there means the circuit (or its compiler) is wrong, and the gate
refuses rather than repairs.

The rewrite itself now lives with every other circuit rewrite in
:mod:`repro.ir.passes` (the sanctioned home for IR-to-IR
transformations under the rewrite-isolation lint rule); this module
remains as a migration shim so the gate's ``repair`` mode and existing
importers keep working unchanged.
"""

from __future__ import annotations

from ..ir.core import CircuitIR
from ..ir.passes import smooth_ir as _smooth_ir

__all__ = ["smooth_ir"]


def smooth_ir(ir: CircuitIR) -> CircuitIR:
    """A smooth IR with the same models (and parameters) as ``ir``.

    Delegates to :func:`repro.ir.passes.smooth_ir`.
    """
    return _smooth_ir(ir)
