"""Property certificates: memoized verification results for one IR.

A :class:`Certificate` accumulates :class:`~.verify.PropertyReport`
results for a circuit, running each verifier at most once no matter
how many queries ask (:meth:`Certificate.ensure` is incremental and
idempotent).  The gate (:mod:`repro.analyze.gate`) consults the
certificate's ``verified_mask`` instead of the IR's self-declared
``flags`` header — certified properties are *re-derived*, never
trusted.

Certificates are memoized on the kernel (one kernel per interned IR,
so one verification per circuit per process) and serialized to JSON
next to store artifacts (``.cert`` files) so a warm cache load skips
re-verification entirely — see :mod:`repro.ir.store`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.core import (
    FLAG_DECOMPOSABLE,
    FLAG_DETERMINISTIC,
    FLAG_SMOOTH,
    FLAG_STRUCTURED,
    CircuitIR,
)
from .verify import (
    DEFAULT_MAX_VARS,
    FALSIFIED,
    PROPERTY_FLAGS,
    UNKNOWN,
    VERIFIED,
    PropertyReport,
    Witness,
    verify_decomposable,
    verify_deterministic,
    verify_smooth,
    verify_structured,
    verify_wellformed,
)

__all__ = ["Certificate", "certify", "certify_nnf", "certificate_for",
           "CERT_SCHEMA"]

#: schema tag written into serialized certificates
CERT_SCHEMA = "repro-cert/1"

#: flags checkable without extra structure (a vtree)
_FREESTANDING = FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC | FLAG_SMOOTH


class Certificate:
    """Lazily populated verification record for one :class:`CircuitIR`."""

    __slots__ = ("ir", "reports", "max_vars", "_repaired")

    def __init__(self, ir: CircuitIR,
                 max_vars: int = DEFAULT_MAX_VARS) -> None:
        self.ir = ir
        self.max_vars = max_vars
        self.reports: Dict[str, PropertyReport] = {}
        self._repaired: Optional[CircuitIR] = None

    # -- incremental verification -------------------------------------------
    def ensure(self, flags: int, vtree: object = None,
               max_vars: Optional[int] = None) -> "Certificate":
        """Run (at most once each) the verifiers for every property in
        ``flags``; well-formedness is always checked first and, when it
        fails, poisons the requested properties as UNKNOWN."""
        budget = self.max_vars if max_vars is None else max_vars
        well = self.reports.get("wellformed")
        if well is None:
            well = verify_wellformed(self.ir)
            self.reports["wellformed"] = well
        if not well.ok:
            for name, bit in PROPERTY_FLAGS.items():
                if flags & bit and name not in self.reports:
                    self.reports[name] = PropertyReport(
                        name, UNKNOWN, "structural", well.witness)
            return self
        if flags & FLAG_DECOMPOSABLE and \
                "decomposable" not in self.reports:
            self.reports["decomposable"] = verify_decomposable(self.ir)
        if flags & FLAG_SMOOTH and "smooth" not in self.reports:
            self.reports["smooth"] = verify_smooth(self.ir)
        if flags & FLAG_DETERMINISTIC and \
                "deterministic" not in self.reports:
            self.reports["deterministic"] = \
                verify_deterministic(self.ir, max_vars=budget)
        if flags & FLAG_STRUCTURED and "structured" not in self.reports:
            if vtree is None:
                self.reports["structured"] = PropertyReport(
                    "structured", UNKNOWN, "structural",
                    Witness("structured", -1,
                            "no vtree available to verify against"))
            else:
                self.reports["structured"] = \
                    verify_structured(self.ir, vtree)
        return self

    # -- results -------------------------------------------------------------
    def report(self, prop: str) -> Optional[PropertyReport]:
        return self.reports.get(prop)

    def status(self, prop: str) -> str:
        got = self.reports.get(prop)
        return got.status if got is not None else UNKNOWN

    def _mask(self, status: str) -> int:
        mask = 0
        for name, bit in PROPERTY_FLAGS.items():
            got = self.reports.get(name)
            if got is not None and got.status == status:
                mask |= bit
        return mask

    @property
    def verified_mask(self) -> int:
        """Flag bits whose verifiers ran and returned VERIFIED."""
        return self._mask(VERIFIED)

    @property
    def falsified_mask(self) -> int:
        return self._mask(FALSIFIED)

    def witnesses(self, flags: Optional[int] = None) -> List[Witness]:
        """Witnesses of every non-verified checked property (filtered
        to ``flags`` when given), well-formedness first."""
        out: List[Witness] = []
        well = self.reports.get("wellformed")
        if well is not None and not well.ok and well.witness is not None:
            out.append(well.witness)
        for name, bit in PROPERTY_FLAGS.items():
            if flags is not None and not flags & bit:
                continue
            got = self.reports.get(name)
            if got is not None and not got.ok and \
                    got.witness is not None:
                out.append(got.witness)
        return out

    def summary(self) -> Dict[str, str]:
        """Property -> status for everything checked so far."""
        return {name: report.status
                for name, report in self.reports.items()}

    def repaired_smooth(self) -> CircuitIR:
        """The smoothed twin of this certificate's IR (cached)."""
        if self._repaired is None:
            from .repair import smooth_ir
            self._repaired = smooth_ir(self.ir)
        return self._repaired


def certificate_for(ir: CircuitIR,
                    max_vars: int = DEFAULT_MAX_VARS) -> Certificate:
    """The memoized certificate for ``ir`` (one per kernel, hence one
    per interned IR per process)."""
    from ..ir.kernel import ir_kernel
    kernel = ir_kernel(ir)
    cert = kernel._certificate
    if cert is None:
        cert = Certificate(ir, max_vars=max_vars)
        kernel._certificate = cert
    return cert


def certify(ir: CircuitIR, flags: Optional[int] = None,
            vtree: object = None,
            max_vars: int = DEFAULT_MAX_VARS) -> Certificate:
    """Verify ``flags`` (default: every freestanding property, plus
    structure when a vtree is given) and return the memoized
    certificate."""
    if flags is None:
        flags = _FREESTANDING | (FLAG_STRUCTURED if vtree is not None
                                 else 0)
    cert = certificate_for(ir, max_vars=max_vars)
    return cert.ensure(flags, vtree=vtree, max_vars=max_vars)


def certify_nnf(root: object, vtree: object = None,
                max_vars: int = DEFAULT_MAX_VARS) -> Certificate:
    """Lower an NNF node to IR and certify it — the bridge the Fig-12
    taxonomy (:func:`repro.nnf.properties.check_properties`) goes
    through."""
    from ..ir.lower import nnf_to_ir
    ir = nnf_to_ir(root)
    return certify(ir, vtree=vtree, max_vars=max_vars)
