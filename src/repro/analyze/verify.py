"""Independent verifiers for the tractability properties.

Every query the paper makes tractable (Figs 9-13, 25-28) is only
*correct* when the circuit actually holds the properties the query
requires: decomposability and smoothness for model counting,
determinism for MPE, vtree respect for structured operations.  The
lowering code computes those flags once and the kernels trust them
forever — so a buggy transform, a hand-built circuit or a foreign
``.nnf`` file can silently yield wrong counts.

The verifiers here re-derive each property from the flattened
:class:`~repro.ir.core.CircuitIR` arrays, independently of the flag
header, and return a :class:`PropertyReport` instead of a bare
boolean: on failure it carries a minimal counterexample
:class:`Witness` — the first offending node in topological order plus
the conflicting variable sets, or a pair of children with a concrete
overlapping model.

Determinism is the one property that is co-NP-hard in general, so
:func:`verify_deterministic` is a tri-state check: a linear-time
*mutual-exclusivity certificate* pass (per-node implied-literal sets;
two children are provably exclusive when one implies ``v`` and the
other ``-v``) settles most gates, a bounded brute-force search over
the children's joint variables settles the rest, and gates beyond the
``max_vars`` budget come back ``UNKNOWN`` rather than guessed.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..ir.core import (
    FLAG_DECOMPOSABLE,
    FLAG_DETERMINISTIC,
    FLAG_SMOOTH,
    FLAG_STRUCTURED,
    KIND_AND,
    KIND_FALSE,
    KIND_LIT,
    KIND_OR,
    KIND_PARAM,
    KIND_TRUE,
    CircuitIR,
)

__all__ = [
    "VERIFIED", "FALSIFIED", "UNKNOWN", "DEFAULT_MAX_VARS",
    "Witness", "PropertyReport", "implied_literals", "evaluate_node",
    "verify_wellformed", "verify_decomposable", "verify_smooth",
    "verify_deterministic", "verify_structured", "verify_obdd_ir",
]

#: verification statuses — ``UNKNOWN`` means "could not certify within
#: budget", which the gate treats as a violation in strict mode
VERIFIED = "verified"
FALSIFIED = "falsified"
UNKNOWN = "unknown"

#: default per-gate brute-force budget for determinism: a child pair
#: whose joint variable set exceeds this is reported UNKNOWN unless
#: the certificate pass already settled it
DEFAULT_MAX_VARS = 16

_VALID_KINDS = frozenset(
    (KIND_LIT, KIND_TRUE, KIND_FALSE, KIND_AND, KIND_OR, KIND_PARAM))


@dataclass(frozen=True)
class Witness:
    """A minimal counterexample for a falsified (or undecided) property.

    ``node`` is the first offending node in topological order;
    ``detail`` holds property-specific evidence (conflicting variable
    sets, the overlapping child pair and model, the order-violating
    edge).  :meth:`format` renders the one-line ``c witness`` form the
    CLI prints.
    """

    prop: str
    node: int
    message: str
    detail: Tuple[Tuple[str, object], ...] = ()

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"prop": self.prop, "node": self.node,
                                  "message": self.message}
        out.update(dict(self.detail))
        return out

    def format(self) -> str:
        parts = [self.prop, f"node={self.node}"]
        for name, value in self.detail:
            if isinstance(value, (tuple, list, frozenset, set)):
                rendered = ",".join(str(v) for v in sorted(value)) or "-"
            else:
                rendered = str(value)
            parts.append(f"{name}={rendered}")
        parts.append(self.message)
        return " ".join(parts)


@dataclass(frozen=True)
class PropertyReport:
    """The outcome of one verifier run: a status, the method that
    settled it, and (unless verified) a witness."""

    prop: str
    status: str
    method: str
    witness: Optional[Witness] = None

    @property
    def ok(self) -> bool:
        return self.status == VERIFIED


def _verified(prop: str, method: str) -> PropertyReport:
    return PropertyReport(prop, VERIFIED, method)


def _falsified(prop: str, method: str, witness: Witness) -> PropertyReport:
    return PropertyReport(prop, FALSIFIED, method, witness)


# -- semantic helpers --------------------------------------------------------

def implied_literals(ir: CircuitIR) -> List[Optional[FrozenSet[int]]]:
    """Per-node implied-literal sets: literals true in *every* model.

    ``None`` marks a node certified unsatisfiable.  Literal nodes
    imply themselves; an and-gate implies the union of its children's
    sets (a ``v``/``-v`` clash proves it unsatisfiable); an or-gate
    implies what all its satisfiable children agree on.  This is the
    linear-time certificate behind the determinism check: children
    ``a, b`` of an or-gate are provably mutually exclusive when some
    ``v`` is implied by ``a`` and ``-v`` by ``b`` (or either is
    unsatisfiable).
    """
    out: List[Optional[FrozenSet[int]]] = [frozenset()] * ir.n
    for i in range(ir.n):
        kind = ir.kinds[i]
        if kind == KIND_LIT:
            out[i] = frozenset((ir.lits[i],))
        elif kind == KIND_FALSE:
            out[i] = None
        elif kind == KIND_AND:
            merged: set = set()
            dead = False
            for c in ir.children(i):
                child = out[c]
                if child is None:
                    dead = True
                    break
                merged |= child
            if dead or any(-lit in merged for lit in merged):
                out[i] = None
            else:
                out[i] = frozenset(merged)
        elif kind == KIND_OR:
            live = [out[c] for c in ir.children(i) if out[c] is not None]
            if not live:
                out[i] = None
            else:
                common = frozenset.intersection(*live)
                out[i] = common
        # TRUE / PARAM imply nothing: frozenset()
    return out


def _sub_nodes(ir: CircuitIR, root: int) -> List[int]:
    """Node indices reachable from ``root``, ascending (evaluation
    order for the sub-circuit)."""
    seen = {root}
    stack = [root]
    while stack:
        i = stack.pop()
        for c in ir.children(i):
            if c not in seen:
                seen.add(c)
                stack.append(c)
    return sorted(seen)


def evaluate_node(ir: CircuitIR, node: int,
                  assignment: Dict[int, bool]) -> bool:
    """Evaluate the sub-circuit under ``node`` on a total assignment
    of its variables.  Parameter leaves count as true (they scale
    weights, they do not constrain models)."""
    values: Dict[int, bool] = {}
    for i in _sub_nodes(ir, node):
        kind = ir.kinds[i]
        if kind == KIND_LIT:
            lit = ir.lits[i]
            values[i] = assignment[abs(lit)] == (lit > 0)
        elif kind == KIND_FALSE:
            values[i] = False
        elif kind == KIND_AND:
            values[i] = all(values[c] for c in ir.children(i))
        elif kind == KIND_OR:
            values[i] = any(values[c] for c in ir.children(i))
        else:  # TRUE, PARAM
            values[i] = True
    return values[node]


def _overlapping_model(ir: CircuitIR, a: int, b: int,
                       variables: Sequence[int]) -> Optional[Tuple[int, ...]]:
    """A joint model of sub-circuits ``a`` and ``b`` as a sorted
    literal tuple, or None when they are mutually exclusive."""
    ordered = sorted(variables)
    for bits in product((False, True), repeat=len(ordered)):
        assignment = dict(zip(ordered, bits))
        if evaluate_node(ir, a, assignment) and \
                evaluate_node(ir, b, assignment):
            return tuple(v if assignment[v] else -v for v in ordered)
    return None


# -- structural verifiers ----------------------------------------------------

def verify_wellformed(ir: CircuitIR) -> PropertyReport:
    """CSR / topological-order / kind well-formedness.

    Checks the invariants every other verifier (and the kernels)
    assume: monotone offsets covering ``child_ids`` exactly, children
    strictly before parents, known kind codes, non-zero literals,
    in-range parameter indices, childless leaves and non-empty gates.
    """
    prop = "wellformed"

    def bad(node: int, message: str, **detail: object) -> PropertyReport:
        return _falsified(prop, "structural",
                          Witness(prop, node, message,
                                  tuple(sorted(detail.items()))))

    if ir.n == 0:
        return bad(-1, "empty circuit (no root node)")
    if ir.offsets[0] != 0 or ir.offsets[-1] != len(ir.child_ids):
        return bad(-1, "CSR offsets do not cover child_ids",
                   first=ir.offsets[0], last=ir.offsets[-1],
                   edges=len(ir.child_ids))
    for i in range(ir.n):
        kind = ir.kinds[i]
        if kind not in _VALID_KINDS:
            return bad(i, f"unknown kind code {kind}")
        if ir.offsets[i] > ir.offsets[i + 1]:
            return bad(i, "CSR offsets decrease")
        kids = ir.children(i)
        if kind in (KIND_AND, KIND_OR):
            if not kids:
                return bad(i, "gate with no children")
            for c in kids:
                if not 0 <= c < i:
                    return bad(i, "child does not precede parent "
                                  "(topological-order violation)",
                               child=c)
        else:
            if kids:
                return bad(i, "leaf node with children")
            if kind == KIND_LIT and ir.lits[i] == 0:
                return bad(i, "literal node with literal 0")
            if kind == KIND_PARAM and \
                    not 0 <= ir.lits[i] < max(ir.num_params, 1):
                return bad(i, "parameter index out of range",
                           index=ir.lits[i], num_params=ir.num_params)
    return _verified(prop, "structural")


def verify_decomposable(ir: CircuitIR) -> PropertyReport:
    """Decomposability: children of every and-gate mention disjoint
    variables.  Witness: the first offending and-gate, a conflicting
    child pair and the variables they share."""
    prop = "decomposable"
    varsets = ir.varsets()
    for i in range(ir.n):
        if ir.kinds[i] != KIND_AND:
            continue
        kids = ir.children(i)
        seen: set = set()
        for c in kids:
            overlap = seen & varsets[c]
            if overlap:
                first = next(k for k in kids
                             if varsets[k] & varsets[c] and k != c)
                witness = Witness(
                    prop, i,
                    "and-gate children share variables",
                    (("children", (first, c)),
                     ("shared_vars", frozenset(overlap))))
                return _falsified(prop, "structural", witness)
            seen |= varsets[c]
    return _verified(prop, "structural")


def verify_smooth(ir: CircuitIR) -> PropertyReport:
    """Smoothness: children of every or-gate mention the same
    variables.  Witness: the first offending or-gate, the deficient
    child and the variables it misses."""
    prop = "smooth"
    varsets = ir.varsets()
    for i in range(ir.n):
        if ir.kinds[i] != KIND_OR:
            continue
        kids = ir.children(i)
        gate_vars = varsets[i]
        for c in kids:
            missing = gate_vars - varsets[c]
            if missing:
                witness = Witness(
                    prop, i,
                    "or-gate child misses variables of a sibling",
                    (("child", c),
                     ("missing_vars", frozenset(missing))))
                return _falsified(prop, "structural", witness)
    return _verified(prop, "structural")


def verify_deterministic(ir: CircuitIR,
                         max_vars: int = DEFAULT_MAX_VARS) -> PropertyReport:
    """Determinism: children of every or-gate are pairwise mutually
    exclusive.  Certificate pass first, bounded brute force second;
    witness on failure: the or-gate, the overlapping child pair and a
    concrete joint model (as a literal tuple)."""
    prop = "deterministic"
    varsets = ir.varsets()
    implied = implied_literals(ir)
    brute_used = False
    unknown: Optional[Witness] = None
    for i in range(ir.n):
        if ir.kinds[i] != KIND_OR:
            continue
        kids = ir.children(i)
        for j in range(len(kids)):
            a = kids[j]
            ia = implied[a]
            if ia is None:
                continue  # unsatisfiable child: exclusive with anything
            for k in range(j + 1, len(kids)):
                b = kids[k]
                ib = implied[b]
                if ib is None:
                    continue
                if any(-lit in ib for lit in ia):
                    continue  # certified exclusive
                joint = varsets[a] | varsets[b]
                if len(joint) > max_vars:
                    if unknown is None:
                        unknown = Witness(
                            prop, i,
                            f"could not certify exclusivity within "
                            f"max_vars={max_vars}",
                            (("children", (a, b)),
                             ("joint_vars", len(joint))))
                    continue
                brute_used = True
                model = _overlapping_model(ir, a, b, sorted(joint))
                if model is not None:
                    witness = Witness(
                        prop, i,
                        "or-gate children share a model",
                        (("children", (a, b)),
                         ("model", model)))
                    return _falsified(prop, "exhaustive", witness)
    if unknown is not None:
        return PropertyReport(prop, UNKNOWN, "certificate", unknown)
    return _verified(prop, "exhaustive" if brute_used else "certificate")


def verify_structured(ir: CircuitIR, vtree: Any) -> PropertyReport:
    """Structured decomposability: every and-gate is (at most) binary
    over its non-parameter children and splits its variables the way
    some vtree node does (primes left, subs right, in either order).
    Witness: the gate and the child variable sets no vtree node
    explains."""
    prop = "structured"
    varsets = ir.varsets()
    internal = [v for v in vtree.nodes() if not v.is_leaf()]
    for i in range(ir.n):
        if ir.kinds[i] != KIND_AND:
            continue
        kids = [c for c in ir.children(i)
                if ir.kinds[c] != KIND_PARAM]
        material = [c for c in kids if varsets[c]]
        if len(material) <= 1:
            continue
        if len(material) > 2:
            witness = Witness(
                prop, i,
                "and-gate is not binary over variable-bearing children",
                (("children", tuple(material)),))
            return _falsified(prop, "structural", witness)
        left_vars, right_vars = (varsets[c] for c in material)
        if not any(
                (left_vars <= v.left.variables and
                 right_vars <= v.right.variables) or
                (left_vars <= v.right.variables and
                 right_vars <= v.left.variables)
                for v in internal):
            witness = Witness(
                prop, i,
                "no vtree node splits this and-gate's variables",
                (("children", tuple(material)),
                 ("left_vars", left_vars),
                 ("right_vars", right_vars)))
            return _falsified(prop, "structural", witness)
    return _verified(prop, "structural")


# -- OBDD shape, order and reducedness (over the IR form) -------------------

def _decision_split(ir: CircuitIR, gate: int
                    ) -> Optional[Dict[int, Tuple[int, ...]]]:
    """Parse a binary or-gate as a decision on some variable ``v``:
    one child entailing ``-v`` (low) and one entailing ``v`` (high).
    Returns ``{v: arm_nodes}`` keyed by the *signed* guard literal, or
    None when the gate is not decision-shaped."""
    kids = ir.children(gate)
    if len(kids) != 2:
        return None

    def guards(node: int) -> Dict[int, Tuple[int, ...]]:
        """Candidate guard literal -> remaining arm nodes."""
        if ir.kinds[node] == KIND_LIT:
            return {ir.lits[node]: ()}
        if ir.kinds[node] != KIND_AND:
            return {}
        out: Dict[int, Tuple[int, ...]] = {}
        kids_n = ir.children(node)
        for c in kids_n:
            if ir.kinds[c] == KIND_LIT:
                rest = tuple(k for k in kids_n if k != c)
                out[ir.lits[c]] = rest
        return out

    left, right = (guards(c) for c in kids)
    for lit, arm in left.items():
        if -lit in right:
            low_lit = min(lit, -lit)
            return {low_lit: arm if lit == low_lit else right[-lit],
                    -low_lit: right[-lit] if lit == low_lit else arm}
    return None


def verify_obdd_ir(ir: CircuitIR,
                   order: Optional[Sequence[int]] = None) -> PropertyReport:
    """OBDD discipline over an IR: every or-gate is a decision gate,
    decision variables strictly increase along every root-to-leaf
    path (against ``order`` when given, else against a consistent
    total order inferred from the circuit itself), no decision is
    redundant (identical arms) and no two decisions on the same
    variable share identical arms (unique-table duplicate)."""
    prop = "obdd"
    decisions: Dict[int, Tuple[int, Tuple[Tuple[int, ...],
                                          Tuple[int, ...]]]] = {}
    for i in range(ir.n):
        if ir.kinds[i] != KIND_OR:
            continue
        split = _decision_split(ir, i)
        if split is None:
            witness = Witness(prop, i,
                              "or-gate is not a decision gate "
                              "((-v and low) or (v and high))")
            return _falsified(prop, "structural", witness)
        low_lit = min(split)
        var = -low_lit
        low_arm, high_arm = split[low_lit], split[-low_lit]
        if low_arm == high_arm:
            witness = Witness(
                prop, i,
                "redundant decision: both arms are identical "
                "(unreduced OBDD)",
                (("var", var), ("arm", low_arm)))
            return _falsified(prop, "structural", witness)
        decisions[i] = (var, (low_arm, high_arm))

    seen: Dict[Tuple[int, Tuple[Tuple[int, ...], Tuple[int, ...]]],
               int] = {}
    for i, entry in decisions.items():
        if entry in seen:
            witness = Witness(
                prop, i,
                "duplicate decision node (unique-table violation)",
                (("var", entry[0]), ("twin", seen[entry])))
            return _falsified(prop, "structural", witness)
        seen[entry] = i

    # order discipline: each decision's variable must come strictly
    # before every decision variable reachable below it
    position: Optional[Dict[int, int]] = None
    if order is not None:
        position = {v: p for p, v in enumerate(order)}
        for i, (var, _) in decisions.items():
            if var not in position:
                witness = Witness(
                    prop, i, "decision variable not in the given order",
                    (("var", var),))
                return _falsified(prop, "structural", witness)

    # below[i] = decision vars strictly below node i
    below: List[FrozenSet[int]] = [frozenset()] * ir.n
    constraints: List[Tuple[int, int, int]] = []  # (gate, var, deeper var)
    for i in range(ir.n):
        kids = ir.children(i)
        acc: set = set()
        for c in kids:
            acc |= below[c]
            if c in decisions:
                acc.add(decisions[c][0])
        below[i] = frozenset(acc)
        if i in decisions:
            var = decisions[i][0]
            for deeper in acc:
                if position is not None:
                    if position[var] >= position[deeper]:
                        witness = Witness(
                            prop, i,
                            "decision order violated on a path",
                            (("var", var), ("deeper_var", deeper),
                             ("order", tuple(order or ()))))
                        return _falsified(prop, "structural", witness)
                else:
                    if deeper == var:
                        witness = Witness(
                            prop, i,
                            "variable decided twice on one path",
                            (("var", var),))
                        return _falsified(prop, "structural", witness)
                    constraints.append((i, var, deeper))

    if position is None and constraints:
        # no explicit order: the above/below relation must be acyclic
        above: Dict[int, set] = {}
        gate_of: Dict[Tuple[int, int], int] = {}
        for gate, var, deeper in constraints:
            above.setdefault(var, set()).add(deeper)
            gate_of.setdefault((var, deeper), gate)
        state: Dict[int, int] = {}  # 1 = on stack, 2 = done

        def cycle_from(v: int) -> Optional[Tuple[int, int]]:
            state[v] = 1
            for w in above.get(v, ()):
                mark = state.get(w)
                if mark == 1:
                    return (v, w)
                if mark is None:
                    found = cycle_from(w)
                    if found is not None:
                        return found
            state[v] = 2
            return None

        for v in list(above):
            if state.get(v) is None:
                edge = cycle_from(v)
                if edge is not None:
                    gate = gate_of[edge]
                    witness = Witness(
                        prop, gate,
                        "no total order is consistent with the "
                        "decision structure",
                        (("var", edge[0]), ("deeper_var", edge[1])))
                    return _falsified(prop, "structural", witness)

    return _verified(prop, "structural")


#: property name -> flag bit, in canonical report order
PROPERTY_FLAGS: Dict[str, int] = {
    "decomposable": FLAG_DECOMPOSABLE,
    "deterministic": FLAG_DETERMINISTIC,
    "smooth": FLAG_SMOOTH,
    "structured": FLAG_STRUCTURED,
}
