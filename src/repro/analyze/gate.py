"""The query gate: certified property requirements per query.

Figure 13 of the paper (and Sec. 4 of arXiv:2202.02942) ties each
query to the circuit properties that make it tractable *and correct*:
model counting and weighted model counting need decomposability +
determinism + smoothness, MPE needs decomposability + determinism,
satisfiability needs decomposability, plain evaluation needs nothing.
The seed code trusted the IR's ``flags`` header for this; the gate
checks the requirements against a :class:`~.certify.Certificate`
instead — properties that were *verified*, not merely declared.

Three modes (``REPRO_GATE`` env var or :func:`set_gate_mode` /
:func:`gate_scope`):

* ``trust`` — seed behavior: no checks, zero overhead (default);
* ``strict`` — any required property that is not certified VERIFIED
  raises :class:`PropertyViolation` carrying the witnesses, *before*
  a wrong count can be returned;
* ``repair`` — like strict, but a circuit whose only failure is
  smoothness is transparently smoothed
  (:func:`~.repair.smooth_ir`) and the query re-dispatched to the
  repaired kernel, which is re-certified rather than assumed fixed;
* ``proved`` — the top of the trust ladder: everything ``repair``
  does, *plus* a verified equivalence proof (:mod:`repro.proof`)
  tying the circuit to the CNF it was compiled from.  A kernel whose
  circuit digest is not in the proved registry
  (:mod:`repro.analyze.proofs`) raises :class:`ProofViolation` —
  certified properties say the circuit is well-behaved; only a proof
  says it is the *right* circuit.  (Smoothing repair is allowed
  because :func:`~.repair.smooth_ir` is itself certified on the
  repaired twin — the proof carries over by construction.)

The gate lives under :meth:`IrKernel._gated`, so every front door
that dispatches through the unified kernel — ``nnf.queries``, the
``sdd``/``psdd``/``obdd`` query paths, ``wmc`` — is covered by the
one choke point.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from ..ir.core import (
    FLAG_DECOMPOSABLE,
    FLAG_DETERMINISTIC,
    FLAG_SMOOTH,
)
from .certify import Certificate, certificate_for
from .verify import Witness

__all__ = ["GATE_MODES", "GATE_ENV", "PropertyViolation",
           "ProofViolation", "gate_mode", "set_gate_mode",
           "gate_scope", "check_kernel", "REQUIREMENTS"]

GATE_MODES = ("trust", "strict", "repair", "proved")

#: environment variable providing the default gate mode
GATE_ENV = "REPRO_GATE"

#: query name -> required property flags (Fig. 13 discipline)
REQUIREMENTS: Dict[str, int] = {
    "sat": FLAG_DECOMPOSABLE,
    "sat_model": FLAG_DECOMPOSABLE,
    "count": FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC | FLAG_SMOOTH,
    "wmc": FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC | FLAG_SMOOTH,
    "mpe": FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC,
    "marginals": FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC | FLAG_SMOOTH,
    "derivatives": FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC | FLAG_SMOOTH,
    "evaluate": 0,
    # sufficient-reason enumeration needs the Decision-DNNF discipline:
    # decomposability for the reason construction, determinism because
    # every or-gate must be a decision gate (smoothness is irrelevant)
    "explain": FLAG_DECOMPOSABLE | FLAG_DETERMINISTIC,
}

#: queries whose results are node-independent, so re-dispatching to a
#: repaired (rebuilt, re-indexed) kernel is transparent to the caller.
#: ``derivatives`` is excluded: its result is indexed by node id, and
#: the repaired circuit has different ids — use ``marginals`` instead.
REPAIRABLE = frozenset(
    ("sat", "sat_model", "count", "wmc", "mpe", "marginals"))

_mode_override: Optional[str] = None


class PropertyViolation(Exception):
    """A query's property requirements are not certified.

    Carries the query name, the required flag mask, the certificate
    (with every report run so far) and the counterexample witnesses.
    """

    def __init__(self, query: str, required: int,
                 certificate: Certificate) -> None:
        self.query = query
        self.required = required
        self.certificate = certificate
        self.witnesses: List[Witness] = certificate.witnesses(required)
        missing = sorted(
            name for name, report in certificate.summary().items()
            if report != "verified")
        detail = "; ".join(w.format() for w in self.witnesses)
        message = (f"query {query!r} requires properties that are not "
                   f"certified: {', '.join(missing) or 'unknown'}")
        if detail:
            message = f"{message} [{detail}]"
        super().__init__(message)


class ProofViolation(PropertyViolation):
    """``proved`` mode was asked to answer a query on a circuit with
    no verified equivalence proof.

    Subclasses :class:`PropertyViolation` so existing strict-mode
    handlers (CLI exit 4, serve error frames) degrade gracefully, but
    carries the circuit digest instead of a certificate: the failure
    is about provenance, not properties.
    """

    def __init__(self, query: str, ir_digest: str) -> None:
        self.query = query
        self.required = 0
        self.certificate = None  # type: ignore[assignment]
        self.witnesses = []
        self.ir_digest = ir_digest
        Exception.__init__(
            self,
            f"query {query!r} under REPRO_GATE=proved: circuit "
            f"{ir_digest[:12]} has no verified equivalence proof "
            f"(compile with proof=True and verify, or lower the gate)")


def _env_mode() -> str:
    raw = os.environ.get(GATE_ENV, "trust").strip().lower()
    return raw if raw in GATE_MODES else "trust"


def gate_mode() -> str:
    """The active gate mode (override first, then ``$REPRO_GATE``)."""
    return _mode_override if _mode_override is not None else _env_mode()


def set_gate_mode(mode: Optional[str]) -> Optional[str]:
    """Set the process-wide gate mode; ``None`` defers back to the
    environment.  Returns the previous override (for restoring)."""
    global _mode_override
    if mode is not None and mode not in GATE_MODES:
        raise ValueError(f"unknown gate mode {mode!r}; "
                         f"expected one of {GATE_MODES}")
    previous = _mode_override
    _mode_override = mode
    return previous


@contextmanager
def gate_scope(mode: str) -> Iterator[None]:
    """Run a block under ``mode``, restoring the previous override."""
    previous = set_gate_mode(mode)
    try:
        yield
    finally:
        set_gate_mode(previous)


def check_kernel(kernel: Any, query: str) -> Any:
    """Gate ``kernel`` for ``query``: return the kernel to execute on.

    Trust mode returns immediately.  Otherwise the certificate is
    brought up to the query's requirements (memoized — verification
    runs once per circuit per process, however many queries follow).
    Strict mode raises on any shortfall; repair mode first tries the
    smoothed twin when smoothness is the only missing property.
    """
    mode = gate_mode()
    if mode == "trust":
        return kernel
    if mode == "proved":
        # equivalence first: certified properties on the wrong circuit
        # are worthless.  Lazy import — proofs pulls in the store.
        from .proofs import is_proved
        if not is_proved(kernel.ir):
            raise ProofViolation(query, kernel.ir.digest())
    required = REQUIREMENTS.get(query, 0)
    if not required:
        return kernel
    cert = certificate_for(kernel.ir)
    cert.ensure(required)
    missing = required & ~cert.verified_mask
    if not missing:
        return kernel
    if mode in ("repair", "proved") and missing == FLAG_SMOOTH and \
            query in REPAIRABLE:
        from ..ir.kernel import ir_kernel
        repaired = cert.repaired_smooth()
        twin = ir_kernel(repaired)
        # the twin answers in the caller's place, so an explicit
        # backend override must follow it (else a kernel pinned to the
        # interpreter would silently answer through codegen, or vice
        # versa, whenever repair re-dispatches)
        if twin.backend != kernel.backend:
            twin.set_backend(kernel.backend)
        twin_cert = certificate_for(repaired)
        twin_cert.ensure(required)
        if not required & ~twin_cert.verified_mask:
            if mode == "proved":
                # certified smoothing preserves equivalence, so the
                # twin inherits the original's proof (the twin
                # re-enters this gate when it answers)
                from .proofs import mark_proved
                mark_proved(repaired.digest())
            return twin
        cert = twin_cert  # repair did not converge: report its witnesses
    raise PropertyViolation(query, required, cert)
