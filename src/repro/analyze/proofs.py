"""Glue between the independent proof checker and the engine.

:mod:`repro.proof` deliberately cannot import the IR or the store
(the ``proof-isolation`` lint rule); this module is the sanctioned
bridge on the *trusting* side of that boundary:

* :func:`ir_semantic_digest` computes, over a stored
  :class:`~repro.ir.core.CircuitIR`, the same structural digest the
  checker derives from a verified trace — equal digests tie the
  proof to the exact artifact being served, so a mutated ``.nnf``
  (flip-literal, drop-smooth, bit rot) refutes instead of sliding
  through;
* :func:`verify_stored_proof` runs the full chain on a store entry:
  load the ``.proof`` sidecar, replay it against the DIMACS with
  :func:`repro.proof.check_proof`, compare digests, then memoise a
  ``PROVED`` verdict in the ``.cert`` sidecar (and the in-process
  registry) or quarantine the artifact on ``REFUTED``;
* :func:`mark_proved` / :func:`is_proved` — the process-level
  registry of IR digests with a verified equivalence proof, which
  ``REPRO_GATE=proved`` consults before answering gated queries.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..ir.core import (CircuitIR, KIND_AND, KIND_FALSE, KIND_LIT,
                       KIND_OR, KIND_TRUE)
from ..ir.store import ArtifactStore
from ..limits.budget import Budget
from ..proof.checker import (INCOMPLETE, PROVED, REFUTED, CheckResult,
                             check_proof)
from ..proof.trace import (conjoin_digest, disjoin_digest,
                           false_digest, literal_digest, true_digest)

__all__ = ["ir_semantic_digest", "verify_stored_proof", "mark_proved",
           "is_proved", "clear_proved"]

#: IR digests whose equivalence proof was verified in this process
_PROVED_IRS: Set[str] = set()


def ir_semantic_digest(ir: CircuitIR) -> str:
    """The trace-format semantic digest of a flattened circuit —
    byte-for-byte the digest :func:`repro.proof.check_proof` derives
    for the equivalent circuit from a verified trace.  Stored
    artifacts are already constant-folded (the manager never emits a
    foldable gate), so the folding in the combinators is a no-op here
    and the digest is purely structural."""
    digests: Dict[int, str] = {}
    for i in range(ir.n):
        kind = ir.kinds[i]
        if kind == KIND_LIT:
            digests[i] = literal_digest(ir.lits[i])
        elif kind == KIND_TRUE:
            digests[i] = true_digest()
        elif kind == KIND_FALSE:
            digests[i] = false_digest()
        elif kind == KIND_AND:
            digests[i] = conjoin_digest(
                digests[c] for c in ir.children(i))
        elif kind == KIND_OR:
            digests[i] = disjoin_digest(
                digests[c] for c in ir.children(i))
        else:
            raise ValueError(
                f"cannot digest IR node kind {kind} (parameterised "
                f"circuits carry no equivalence proofs)")
    return digests[ir.root] if ir.n else true_digest()


def mark_proved(ir_digest: str) -> None:
    """Record (process-wide) that the circuit with this
    :meth:`CircuitIR.digest` has a verified equivalence proof."""
    _PROVED_IRS.add(ir_digest)


def is_proved(ir: CircuitIR) -> bool:
    """Whether this circuit's equivalence proof was verified (in this
    process)."""
    return ir.digest() in _PROVED_IRS


def clear_proved() -> None:
    """Drop the registry (test isolation)."""
    _PROVED_IRS.clear()


def verify_stored_proof(store: ArtifactStore, key: str, dimacs: str,
                        budget: Optional[Budget] = None
                        ) -> CheckResult:
    """Check the stored artifact + trace pair for ``key`` end-to-end.

    The verdict covers the *serving* chain, not just the trace: a
    missing or unreadable artifact, a trace/artifact digest mismatch
    and a failed replay are all ``REFUTED``.  ``PROVED`` is memoised
    in the ``.cert`` sidecar (:meth:`ArtifactStore.proof_status`
    serves it warm) and in the in-process registry for
    ``REPRO_GATE=proved``; ``REFUTED`` quarantines the artifact trio
    (:meth:`ArtifactStore.quarantine_refuted`).  ``INCOMPLETE``
    (budget expiry) leaves everything in place for a later, richer
    re-check.
    """
    status = store.proof_status(key)
    if status == PROVED:
        ir = store.load_nnf(key)
        if ir is not None:
            mark_proved(ir.digest())
            return CheckResult(PROVED, reason="memoised .cert verdict")
    trace = store.load_proof(key)
    if trace is None:
        return CheckResult(REFUTED,
                           reason="no .proof sidecar for this key")
    result = check_proof(dimacs, trace, budget=budget)
    if result.verdict == INCOMPLETE:
        return result
    if result.verdict == PROVED:
        ir = store.load_nnf(key)
        if ir is None:
            result = CheckResult(
                REFUTED, steps=result.steps,
                reason="trace verifies but the artifact is missing "
                       "or unreadable")
        elif ir_semantic_digest(ir) != result.circuit_digest:
            result = CheckResult(
                REFUTED, steps=result.steps,
                reason="trace verifies but the stored artifact is a "
                       "different circuit (artifact mutated after "
                       "compilation)")
        else:
            store.record_proof_verdict(key, PROVED, result.steps)
            mark_proved(ir.digest())
            return result
    store.quarantine_refuted(key)
    return result
