"""Static analysis over :class:`~repro.ir.core.CircuitIR`: property
verifiers with counterexample witnesses, memoized certificates, and
the query gate that checks certified — not declared — properties.

* :mod:`repro.analyze.verify` — per-property verifiers returning
  :class:`~.verify.PropertyReport` (VERIFIED / FALSIFIED / UNKNOWN)
  with a minimal :class:`~.verify.Witness` on failure;
* :mod:`repro.analyze.certify` — :class:`~.certify.Certificate`
  memoization (per kernel, and as ``.cert`` files in the artifact
  store);
* :mod:`repro.analyze.gate` — query requirements, ``trust`` /
  ``strict`` / ``repair`` modes, :class:`~.gate.PropertyViolation`;
* :mod:`repro.analyze.repair` — the smoothing auto-fix;
* :mod:`repro.analyze.obdd_check` — OBDD discipline on live node DAGs;
* :mod:`repro.analyze.proofs` — the bridge to :mod:`repro.proof`:
  IR-side semantic digests, stored-proof verification, and the
  proved registry behind ``REPRO_GATE=proved``.
"""

from .certify import (CERT_SCHEMA, Certificate, certificate_for, certify,
                      certify_nnf)
from .gate import (GATE_ENV, GATE_MODES, REQUIREMENTS, ProofViolation,
                   PropertyViolation, check_kernel, gate_mode, gate_scope,
                   set_gate_mode)
from .proofs import (clear_proved, ir_semantic_digest, is_proved,
                     mark_proved, verify_stored_proof)
from .obdd_check import verify_obdd
from .repair import smooth_ir
from .verify import (DEFAULT_MAX_VARS, FALSIFIED, PROPERTY_FLAGS, UNKNOWN,
                     VERIFIED, PropertyReport, Witness, evaluate_node,
                     implied_literals, verify_decomposable,
                     verify_deterministic, verify_obdd_ir, verify_smooth,
                     verify_structured, verify_wellformed)

__all__ = [
    "CERT_SCHEMA", "Certificate", "certificate_for", "certify",
    "certify_nnf",
    "GATE_ENV", "GATE_MODES", "REQUIREMENTS", "PropertyViolation",
    "ProofViolation", "check_kernel", "gate_mode", "gate_scope",
    "set_gate_mode",
    "clear_proved", "ir_semantic_digest", "is_proved", "mark_proved",
    "verify_stored_proof",
    "verify_obdd", "smooth_ir",
    "DEFAULT_MAX_VARS", "FALSIFIED", "PROPERTY_FLAGS", "UNKNOWN",
    "VERIFIED", "PropertyReport", "Witness", "evaluate_node",
    "implied_literals", "verify_decomposable", "verify_deterministic",
    "verify_obdd_ir", "verify_smooth", "verify_structured",
    "verify_wellformed",
]
