"""OBDD discipline checks on the pointer-based ObddNode DAG.

:func:`repro.analyze.verify.verify_obdd_ir` checks the *serialized*
(IR) form; this module checks live manager-built diagrams, where the
manager's variable order is authoritative.  A healthy
:class:`~repro.obdd.manager.ObddManager` cannot produce violations
(``make`` enforces order, reduction and uniqueness), so this is the
verifier the fault-injection tests point at hand-assembled nodes —
and a guard against future manager bugs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from .verify import FALSIFIED, VERIFIED, PropertyReport, Witness

__all__ = ["verify_obdd"]


def _falsified(node: int, message: str,
               detail: Tuple[Tuple[str, object], ...]) -> PropertyReport:
    return PropertyReport("obdd", FALSIFIED, "structural",
                          Witness("obdd", node, message, detail))


def verify_obdd(root: Any) -> PropertyReport:
    """Order, reducedness and uniqueness of the DAG under ``root``.

    * order: every edge goes to a terminal or a strictly later
      variable in the manager's order;
    * reducedness: no node with ``low is high``;
    * uniqueness: no two nodes share ``(var, low, high)``.

    Witnesses name the offending node by its manager id.
    """
    manager = root.manager
    level = manager._level
    seen: set = set()
    stack = [root]
    nodes: List[object] = []
    while stack:
        node = stack.pop()
        if node.id in seen:
            continue
        seen.add(node.id)
        nodes.append(node)
        if not node.is_terminal:
            stack.extend((node.low, node.high))

    triples: Dict[Tuple[int, int, int], int] = {}
    for node in sorted(nodes, key=lambda n: n.id):
        if node.is_terminal:
            continue
        if node.var not in level:
            return _falsified(
                node.id, "decision variable unknown to the manager",
                (("var", node.var),))
        for child in (node.low, node.high):
            if not child.is_terminal and \
                    level[node.var] >= level[child.var]:
                return _falsified(
                    node.id, "edge violates the variable order",
                    (("var", node.var), ("child", child.id),
                     ("child_var", child.var)))
        if node.low is node.high:
            return _falsified(
                node.id, "redundant node: low and high are identical "
                         "(unreduced OBDD)",
                (("var", node.var), ("child", node.low.id)))
        triple = (level[node.var], node.low.id, node.high.id)
        if triple in triples:
            return _falsified(
                node.id, "duplicate node (unique-table violation)",
                (("var", node.var), ("twin", triples[triple])))
        triples[triple] = node.id
    return PropertyReport("obdd", VERIFIED, "structural")
