"""repro — tractable Boolean circuits for computation, learning and
meta-reasoning.

A faithful, self-contained reproduction of the systems surveyed in
Adnan Darwiche, "Three Modern Roles for Logic in AI" (PODS 2020):

* **Role 1 — logic for computation** (:mod:`repro.logic`,
  :mod:`repro.sat`, :mod:`repro.nnf`, :mod:`repro.obdd`,
  :mod:`repro.sdd`, :mod:`repro.compile`, :mod:`repro.bayesnet`,
  :mod:`repro.wmc`, :mod:`repro.solvers`): knowledge compilation into
  tractable circuits and solving NP / PP / NP^PP / PP^PP problems on
  top of them, including Bayesian network inference by reduction to
  weighted model counting.
* **Role 2 — learning from data and knowledge** (:mod:`repro.psdd`,
  :mod:`repro.spaces`, :mod:`repro.condpsdd`): probabilistic SDDs over
  structured spaces (routes, rankings), conditional PSDDs and
  hierarchical maps.
* **Role 3 — meta-reasoning about ML systems**
  (:mod:`repro.classifiers`, :mod:`repro.explain`, :mod:`repro.robust`):
  compiling classifiers into circuits, sufficient/complete reasons,
  bias analysis, robustness and formal property verification.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
figure-by-figure reproduction record.
"""

from . import (bayesnet, classifiers, compile, condpsdd, explain, logic,
               nnf, obdd, pcircuits, psdd, robust, sat, sdd, solvers,
               spaces, vtree, wmc)

__version__ = "1.0.0"

__all__ = ["bayesnet", "classifiers", "compile", "condpsdd", "explain",
           "logic", "nnf", "obdd", "psdd", "robust", "sat", "sdd",
           "solvers", "spaces", "vtree", "wmc", "__version__"]
