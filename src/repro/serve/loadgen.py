"""The load generator: duplicate-heavy mixed bursts against a server.

Drives the serving path the way the paper's economics say production
traffic looks: many clients asking for the *same* knowledge bases
(duplicate-heavy compiles that must collapse onto one compilation) and
then hammering the compiled artifacts with cheap online queries.
Used by ``repro bench-load``, the ``serve_throughput`` benchmark
scenario, and the CI smoke job.

Everything here is stdlib: ``threading`` clients (the server is the
concurrent piece under test), deterministic ``random.Random(seed)``
instances, and a tiny percentile helper.
"""

from __future__ import annotations

import math
import random
import threading
import time
from typing import Any, Dict, List, Optional

from .client import ServeClient

__all__ = ["random_3cnf_text", "percentile", "run_load"]


def random_3cnf_text(num_vars: int, num_clauses: int,
                     seed: int) -> str:
    """A deterministic random 3-CNF in DIMACS text."""
    rng = random.Random(seed)
    lines = [f"c loadgen seed={seed}", f"p cnf {num_vars} {num_clauses}"]
    for _ in range(num_clauses):
        chosen = rng.sample(range(1, num_vars + 1), 3)
        lits = [v if rng.random() < 0.5 else -v for v in chosen]
        lines.append(" ".join(map(str, lits)) + " 0")
    return "\n".join(lines) + "\n"


def percentile(samples: List[float], fraction: float) -> float:
    """The ``fraction`` percentile (nearest-rank) of ``samples``."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = math.ceil(fraction * len(ordered)) - 1
    return ordered[min(len(ordered) - 1, max(0, rank))]


def _run_threads(jobs: List[Any], threads: int) -> None:
    """Run the job thunks across ``threads`` concurrent workers."""
    cursor = {"next": 0}
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                index = cursor["next"]
                if index >= len(jobs):
                    return
                cursor["next"] = index + 1
            jobs[index]()

    pool = [threading.Thread(target=worker, daemon=True)
            for _ in range(max(1, threads))]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()


def run_load(host: str, port: int, *,
             distinct: int = 4, duplicates: int = 8,
             queries: int = 64, threads: int = 8,
             num_vars: int = 24, num_clauses: int = 60,
             seed: int = 0,
             deadline_s: Optional[float] = None) -> Dict[str, Any]:
    """One duplicate-heavy burst; returns the latency/hit-rate report.

    Phase 1 issues ``distinct * duplicates`` compile requests
    concurrently — ``duplicates`` copies of each of ``distinct`` CNFs,
    interleaved, so concurrent copies race and must dedup.  Phase 2
    issues ``queries`` mixed count/wmc/batched-wmc queries over the
    compiled artifacts, all warm.
    """
    instances = [random_3cnf_text(num_vars, num_clauses, seed + i)
                 for i in range(distinct)]
    compile_order = [i for i in range(distinct)
                     for _ in range(duplicates)]
    random.Random(seed).shuffle(compile_order)

    clients: List[ServeClient] = []
    local = threading.local()

    def client() -> ServeClient:
        if not hasattr(local, "client"):
            local.client = ServeClient(host, port)
            clients.append(local.client)
        return local.client

    lock = threading.Lock()
    compile_lat: List[float] = []
    query_lat: List[float] = []
    statuses: Dict[int, int] = {}
    keys: Dict[int, str] = {}
    dedup_flags: List[bool] = []
    failures: List[str] = []

    def record(status: int, elapsed: float, bucket: List[float],
               body: Dict[str, Any]) -> None:
        with lock:
            statuses[status] = statuses.get(status, 0) + 1
            bucket.append(elapsed * 1000.0)
            if status >= 500:
                failures.append(str(body.get("error", status)))

    def compile_job(instance: int) -> Any:
        def job() -> None:
            start = time.perf_counter()
            status, body = client().compile(
                instances[instance], deadline_s=deadline_s)
            record(status, time.perf_counter() - start, compile_lat,
                   body)
            if status == 200 and body.get("status") == "ok":
                with lock:
                    keys[instance] = body["key"]
                    dedup_flags.append(
                        bool(body.get("deduplicated") or
                             body.get("cached")))
        return job

    started = time.perf_counter()
    _run_threads([compile_job(i) for i in compile_order], threads)
    compile_wall = time.perf_counter() - started

    # phase 2: warm queries over whatever compiled successfully
    rng = random.Random(seed + 7919)
    query_jobs = []
    compiled = sorted(keys)
    for q in range(queries if compiled else 0):
        instance = compiled[q % len(compiled)]
        kind = rng.choice(["count", "count", "wmc", "wmc_batch"])

        def job(instance: int = instance, kind: str = kind) -> None:
            weights = None
            batch = None
            query = kind
            if kind == "wmc":
                weights = {1: 0.5, -1: 0.5}
            elif kind == "wmc_batch":
                query = "wmc"
                batch = [{1: 0.25, -1: 0.75}, {2: 0.5, -2: 0.5}]
            start = time.perf_counter()
            status, body = client().query(
                keys[instance], query, num_vars=num_vars,
                weights=weights, weight_batch=batch,
                deadline_s=deadline_s)
            record(status, time.perf_counter() - start, query_lat,
                   body)
        query_jobs.append(job)
    query_started = time.perf_counter()
    _run_threads(query_jobs, threads)
    query_wall = time.perf_counter() - query_started
    total_wall = time.perf_counter() - started

    server_stats: Dict[str, Any] = {}
    try:
        server_stats = client().stats()
    except (RuntimeError, ConnectionError, OSError):
        pass
    for c in clients:
        c.close()

    requests = len(compile_lat) + len(query_lat)
    compile_ok = len(dedup_flags)
    deduped = sum(dedup_flags)
    return {
        "requests": requests,
        "compile_requests": len(compile_lat),
        "query_requests": len(query_lat),
        "wall_s": round(total_wall, 6),
        "compile_wall_s": round(compile_wall, 6),
        "query_wall_s": round(query_wall, 6),
        "rps": round(requests / total_wall, 3) if total_wall else 0.0,
        "compile_p50_ms": round(percentile(compile_lat, 0.50), 3),
        "compile_p99_ms": round(percentile(compile_lat, 0.99), 3),
        "query_p50_ms": round(percentile(query_lat, 0.50), 3),
        "query_p99_ms": round(percentile(query_lat, 0.99), 3),
        "dedup_hit_rate": round(deduped / compile_ok, 4)
        if compile_ok else 0.0,
        "warm_hit_rate": server_stats.get("warm_hit_rate", 0.0),
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "server_5xx": sum(v for k, v in statuses.items() if k >= 500),
        "failures": failures[:5],
        "keys": {str(i): keys[i] for i in sorted(keys)},
        "server_stats": server_stats,
    }
