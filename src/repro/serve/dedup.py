"""In-flight compile deduplication.

N concurrent requests for the same CNF (same sha256 content key) must
trigger ONE compilation: the first arrival becomes the *leader* and
runs the compile; everyone else becomes a *waiter* attached to the
leader's future.  Keys resolve to the same artifact across process
restarts because they are the ArtifactStore's content addresses — the
registry only needs to cover the window while a compile is actually
running.

Single-threaded discipline: all registry calls happen on the server's
event loop, so no locks are needed; the asyncio future is the
synchronisation primitive.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Tuple

from ..perf.instrument import Counter

__all__ = ["InflightRegistry"]


class InflightRegistry:
    """Content-key → in-flight future map with leader election."""

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}
        self.stats = Counter()

    def lease(self, key: str,
              loop: asyncio.AbstractEventLoop
              ) -> Tuple["asyncio.Future", bool]:
        """The future for ``key`` plus whether the caller leads.

        The leader (first arrival) must eventually call
        :meth:`settle`; waiters just await the future.
        """
        future = self._inflight.get(key)
        if future is not None and not future.done():
            self.stats.incr("dedup_inflight_hits")
            return future, False
        future = loop.create_future()
        self._inflight[key] = future
        self.stats.incr("dedup_leases")
        return future, True

    def settle(self, key: str, result: object) -> None:
        """Resolve ``key``'s future for every waiter and retire it."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            if isinstance(result, BaseException):
                future.set_exception(result)
                # nobody may await a failed compile's future (all
                # waiters could have timed out) — don't warn on it
                future.exception()
            else:
                future.set_result(result)
        self.stats.incr("dedup_settled")

    def depth(self) -> int:
        """How many distinct compiles are currently in flight."""
        return sum(1 for f in self._inflight.values() if not f.done())
