"""A small blocking client for the serve API (stdlib http.client).

One :class:`ServeClient` holds one keep-alive connection — the shape
both the load generator and the CI smoke script use.  Thread-unsafe by
design; give each worker thread its own client.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = ["ServeClient"]


class ServeClient:
    """Blocking JSON-over-HTTP client for one server."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None
                ) -> Tuple[int, Dict[str, Any]]:
        """One round trip; returns (http_status, decoded body)."""
        payload = None if body is None else \
            json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload \
            else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload,
                             headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError,
                    OSError):
                # a keep-alive connection the server closed between
                # requests: reconnect once, then give up
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError:
            decoded = {"status": "error", "error": raw.decode(
                "utf-8", "replace")}
        return response.status, decoded

    # -- API calls -----------------------------------------------------------
    def compile(self, dimacs: str,
                config: Optional[Mapping[str, Any]] = None,
                deadline_s: Optional[float] = None,
                max_nodes: Optional[int] = None,
                optimize: bool = False,
                proof: bool = False
                ) -> Tuple[int, Dict[str, Any]]:
        body: Dict[str, Any] = {"dimacs": dimacs}
        if config:
            body["config"] = dict(config)
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        if max_nodes is not None:
            body["max_nodes"] = max_nodes
        if optimize:
            body["optimize"] = True
        if proof:
            body["proof"] = True
        return self.request("POST", "/compile", body)

    def query(self, key: str, query: str = "count",
              num_vars: Optional[int] = None,
              weights: Optional[Mapping[int, float]] = None,
              weight_batch: Optional[
                  List[Mapping[int, float]]] = None,
              deadline_s: Optional[float] = None,
              optimize: bool = False,
              instance: Optional[Mapping[int, bool]] = None,
              limit: Optional[int] = None,
              smallest: bool = False
              ) -> Tuple[int, Dict[str, Any]]:
        body: Dict[str, Any] = {"key": key, "query": query}
        if num_vars is not None:
            body["num_vars"] = num_vars
        if weights is not None:
            body["weights"] = {str(k): v for k, v in weights.items()}
        if weight_batch is not None:
            body["weight_batch"] = [
                {str(k): v for k, v in row.items()}
                for row in weight_batch]
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        if optimize:
            body["optimize"] = True
        if instance is not None:
            body["instance"] = {str(v): bool(s)
                                for v, s in instance.items()}
        if limit is not None:
            body["limit"] = limit
        if smallest:
            body["smallest"] = True
        return self.request("POST", "/query", body)

    def stats(self) -> Dict[str, Any]:
        status, body = self.request("GET", "/stats")
        if status != 200:
            raise RuntimeError(f"/stats returned {status}: {body}")
        return body

    def health(self) -> bool:
        try:
            status, _ = self.request("GET", "/healthz")
        except (ConnectionError, OSError):
            return False
        return status == 200
