"""The asyncio HTTP front end.

One event loop owns all coordination state — the in-flight dedup
registry, the admission counter, the aggregated stats — and never runs
circuit work itself: requests are parsed, deduplicated, admitted, then
shipped to the :class:`~repro.serve.pool.WorkerPool`.

Request lifecycle for ``POST /compile``:

1. parse + canonicalise → the sha256 content key (a 400 on bad input);
2. lease the key in the :class:`~repro.serve.dedup.InflightRegistry` —
   waiters attach to the leader's future and *bypass admission* (they
   add no work, so backpressure must not reject them);
3. leaders pass admission control: when ``max_pending`` worker jobs
   are already queued/running, answer 429 + ``Retry-After``;
4. the worker compiles under the request budget; an expired deadline
   comes back as certified anytime bounds (status ``bounds``, HTTP
   200) — never a 5xx.

``POST /query`` follows 1→3→4 (no dedup lease: queries are cheap warm
loads; deduping them would serialise throughput for no saved work).

The HTTP layer is deliberately tiny: HTTP/1.1 with keep-alive and
``Content-Length`` bodies only (no chunked uploads), enough for the
stdlib client, the load generator, and curl.
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..ir import facade
from ..perf.instrument import Counter
from .dedup import InflightRegistry
from .pool import WorkerPool, run_compile, run_query
from .protocol import (DEFAULT_MAX_BODY, ProtocolError,
                       parse_compile_request, parse_query_request)

__all__ = ["ServerConfig", "Server", "run_server"]

#: HTTP status per worker reply status
STATUS_HTTP = {"ok": 200, "bounds": 200, "invalid": 400,
               "not_found": 404, "budget_exceeded": 408, "busy": 429,
               "error": 500}


@dataclass
class ServerConfig:
    """Deployment knobs (see docs/serving.md)."""

    host: str = "127.0.0.1"
    port: int = 0                    # 0 → ephemeral, report actual
    workers: int = 2                 # 0 → in-process thread pool
    cache_dir: Optional[str] = None  # None → private temp dir
    max_pending: int = 32            # admission: queued+running jobs
    default_deadline_s: Optional[float] = 30.0
    max_deadline_s: float = 300.0
    max_body: int = DEFAULT_MAX_BODY
    verify: bool = True
    retry_after_s: int = 1


class Server:
    """The compile/query service over one shared ArtifactStore."""

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        self._tempdir: Optional[Any] = None
        cache_dir = self.config.cache_dir
        if cache_dir is None:
            import tempfile
            self._tempdir = tempfile.TemporaryDirectory(
                prefix="repro-serve-")
            cache_dir = self._tempdir.name
        self.cache_dir = cache_dir
        self.pool = WorkerPool(cache_dir, self.config.workers,
                               self.config.verify)
        self.registry = InflightRegistry()
        self.stats = Counter()
        self.worker_stats = Counter()
        self._pending = 0
        self._started = time.perf_counter()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self.address: Tuple[str, int] = (self.config.host, 0)

    # -- request handling (event-loop side) ----------------------------------
    def _budget_caps(self, deadline_s: Optional[float]
                     ) -> Optional[float]:
        """The effective per-request deadline."""
        if deadline_s is None:
            return self.config.default_deadline_s
        return min(deadline_s, self.config.max_deadline_s)

    def _admit(self) -> bool:
        """Reserve a worker slot, or refuse (the 429 path)."""
        if self._pending >= self.config.max_pending:
            self.stats.incr("admission_rejects")
            return False
        self._pending += 1
        self.stats.incr("admitted")
        return True

    def _release(self) -> None:
        self._pending -= 1

    def _absorb_worker_stats(self, reply: Dict[str, Any]) -> None:
        for name, value in (reply.pop("store_stats", None) or {}).items():
            self.worker_stats.incr(name, value)

    async def _dispatch(self, fn: Any, payload: Dict[str, Any]
                        ) -> Dict[str, Any]:
        """Run one job on the pool, tracking admission occupancy."""
        loop = asyncio.get_running_loop()
        try:
            reply = await asyncio.wrap_future(
                self.pool.submit(fn, payload), loop=loop)
        finally:
            self._release()
        self._absorb_worker_stats(reply)
        return reply

    async def _handle_compile(self, body: bytes
                              ) -> Tuple[int, Dict[str, Any]]:
        request = parse_compile_request(body)
        try:
            ticket = facade.compile_ticket(request.dimacs,
                                           request.config)
        except ValueError as error:
            raise ProtocolError(str(error)) from error
        self.stats.incr("compile_requests")
        loop = asyncio.get_running_loop()
        future, leader = self.registry.lease(ticket.key, loop)
        if not leader:
            # attached to a compile already in flight: no new work,
            # no admission charge — just await the shared result
            self.stats.incr("compile_dedup_waits")
            reply = dict(await asyncio.shield(future))
            reply["deduplicated"] = True
            return STATUS_HTTP.get(reply.get("status", "error"), 500), \
                reply
        if not self._admit():
            busy = {"status": "busy",
                    "error": "compile queue full; retry later"}
            # waiters that already attached share the rejection
            self.registry.settle(ticket.key, busy)
            return 429, busy
        payload = ticket.as_wire()
        payload["deadline_s"] = self._budget_caps(request.deadline_s)
        payload["max_nodes"] = request.max_nodes
        payload["optimize"] = request.optimize
        payload["proof"] = request.proof
        try:
            reply = await self._dispatch(run_compile, payload)
        except BaseException as error:
            self.registry.settle(ticket.key, error)
            raise
        self.registry.settle(ticket.key, reply)
        if reply.get("status") == "bounds":
            self.stats.incr("compile_bounds_answers")
        elif reply.get("cached"):
            self.stats.incr("compile_store_hits")
        return STATUS_HTTP.get(reply.get("status", "error"), 500), reply

    async def _handle_query(self, body: bytes
                            ) -> Tuple[int, Dict[str, Any]]:
        request = parse_query_request(body)
        self.stats.incr("query_requests")
        if not self._admit():
            return 429, {"status": "busy",
                         "error": "query queue full; retry later"}
        payload: Dict[str, Any] = {
            "key": request.key, "query": request.query,
            "num_vars": request.num_vars,
            "weights": request.weights,
            "weight_batch": request.weight_batch,
            "deadline_s": self._budget_caps(request.deadline_s),
            "optimize": request.optimize}
        if request.query == "explain":
            payload["instance"] = {str(v): bool(s) for v, s
                                   in request.instance.items()} \
                if request.instance else {}
            payload["limit"] = request.limit
            payload["smallest"] = request.smallest
        reply = await self._dispatch(run_query, payload)
        return STATUS_HTTP.get(reply.get("status", "error"), 500), reply

    def _stats_snapshot(self) -> Dict[str, Any]:
        front = self.stats.as_dict()
        compiles = front.get("compile_requests", 0)
        fresh = self.registry.stats["dedup_leases"]
        dedup_rate = 1.0 - fresh / compiles if compiles else 0.0
        store = self.worker_stats.as_dict()
        loads = store.get("artifact_hits", 0) + \
            store.get("artifact_misses", 0)
        warm_rate = store.get("artifact_hits", 0) / loads if loads \
            else 0.0
        return {"status": "ok",
                "uptime_s": round(time.perf_counter() - self._started, 3),
                "pending": self._pending,
                "inflight_compiles": self.registry.depth(),
                "dedup_hit_rate": round(dedup_rate, 4),
                "warm_hit_rate": round(warm_rate, 4),
                "frontend": front,
                "dedup": self.registry.stats.as_dict(),
                "workers": store}

    # -- HTTP plumbing -------------------------------------------------------
    async def _route(self, method: str, path: str, body: bytes
                     ) -> Tuple[int, Dict[str, Any]]:
        if method == "POST" and path == "/compile":
            return await self._handle_compile(body)
        if method == "POST" and path == "/query":
            return await self._handle_query(body)
        if method == "GET" and path == "/stats":
            return 200, self._stats_snapshot()
        if method == "GET" and path == "/healthz":
            return 200, {"status": "ok"}
        return 404, {"status": "error",
                     "error": f"no route {method} {path}"}

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request_line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    break
                if not request_line or request_line.strip() == b"":
                    break
                parts = request_line.decode("latin-1").split()
                if len(parts) < 2:
                    break
                method, path = parts[0].upper(), parts[1]
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or 0)
                if length > self.config.max_body:
                    await self._respond(
                        writer, 413,
                        {"status": "error", "error": "body too large"},
                        close=True)
                    break
                body = await reader.readexactly(length) if length \
                    else b""
                keep_alive = headers.get("connection", "").lower() \
                    != "close"
                try:
                    status, reply = await self._route(method, path, body)
                except ProtocolError as error:
                    status, reply = error.status, \
                        {"status": "invalid", "error": str(error)}
                except Exception as error:
                    self.stats.incr("internal_errors")
                    status, reply = 500, {
                        "status": "error",
                        "error": f"{type(error).__name__}: {error}"}
                self.stats.incr(f"http_{status // 100}xx")
                await self._respond(writer, status, reply,
                                    close=not keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except asyncio.CancelledError:
            # server shutdown cancelled an idle keep-alive connection;
            # absorbing it lets the task end quietly instead of
            # tripping the stream-protocol callback's logger
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       reply: Dict[str, Any], close: bool) -> None:
        payload = json.dumps(reply).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  408: "Request Timeout", 413: "Payload Too Large",
                  429: "Too Many Requests",
                  500: "Internal Server Error"}.get(status, "Status")
        head = [f"HTTP/1.1 {status} {reason}",
                "Content-Type: application/json",
                f"Content-Length: {len(payload)}"]
        if status == 429:
            head.append(f"Retry-After: {self.config.retry_after_s}")
        if close:
            head.append("Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + payload)
        await writer.drain()

    # -- lifecycle -----------------------------------------------------------
    async def _serve_forever(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host,
            self.config.port,
            limit=max(self.config.max_body + 65536, 2 ** 20),
            family=socket.AF_INET)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        self._ready.set()
        async with self._server:
            await self._server.serve_forever()

    def start(self) -> Tuple[str, int]:
        """Run the server on a daemon thread; returns (host, port)."""
        def runner() -> None:
            try:
                asyncio.run(self._serve_forever())
            except asyncio.CancelledError:
                pass
            finally:
                self._ready.set()
        self._thread = threading.Thread(target=runner, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        if self._server is None:
            raise RuntimeError("server failed to bind "
                               f"{self.config.host}:{self.config.port}")
        return self.address

    def stop(self) -> None:
        """Stop accepting, drain the pool, release the cache dir."""
        loop, server = self._loop, self._server
        if loop is not None and server is not None:
            def _shutdown() -> None:
                server.close()
                for task in asyncio.all_tasks(loop):
                    task.cancel()
            try:
                loop.call_soon_threadsafe(_shutdown)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.pool.shutdown()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None


def run_server(config: ServerConfig) -> int:
    """Blocking entry point for ``repro serve`` (SIGTERM-aware).

    Prints ``c serve listening HOST PORT`` once bound, which startup
    scripts (CI smoke, bench-load) parse to find the ephemeral port.
    """
    server = Server(config)
    host, port = server.start()
    print(f"c serve listening {host} {port}", flush=True)
    print(f"c serve cache-dir {server.cache_dir}", flush=True)
    done = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: done.set())
    done.wait()
    print("c serve shutting down", flush=True)
    server.stop()
    return 0
