"""Compilation-as-a-service: the concurrent query server.

The paper's economics — compile once offline, query many times online
— become a long-lived service here.  An asyncio HTTP front end accepts
``POST /compile`` (DIMACS + compiler config) and ``POST /query``
(artifact key + count/wmc/mpe/marginals params); heavy work runs on a
multiprocessing worker pool over one shared
:class:`~repro.ir.store.ArtifactStore`, so a circuit compiled for any
client serves every later request through the warm path (cert hit +
``.csr`` mmap + cached codegen).  Concurrent compiles of the same CNF
collapse onto one in-flight future keyed by the store's sha256 content
key; admission control bounds the worker backlog (429 + Retry-After)
and an expiring per-request deadline degrades a compile to certified
anytime bounds instead of an error.

This package touches the engine only through the sanctioned surface —
:mod:`repro.ir.facade`, :class:`~repro.ir.store.ArtifactStore`,
:class:`~repro.limits.budget.Budget` — enforced by the
``serve-isolation`` rule in ``tools/lint_invariants.py``.
"""

from .app import Server, ServerConfig, run_server
from .client import ServeClient
from .dedup import InflightRegistry
from .loadgen import run_load
from .protocol import ProtocolError

__all__ = ["Server", "ServerConfig", "run_server", "ServeClient",
           "InflightRegistry", "run_load", "ProtocolError"]
