"""Wire protocol: request parsing and validation.

Everything a client can get wrong is caught here and raised as
:class:`ProtocolError`, which the app maps to a 400 — malformed JSON,
bad weights, oversized bodies, unknown queries.  Workers only ever see
validated, canonical payloads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

__all__ = ["ProtocolError", "CompileRequest", "QueryRequest",
           "parse_compile_request", "parse_query_request",
           "DEFAULT_MAX_BODY"]

#: request bodies above this many bytes are rejected with 413
DEFAULT_MAX_BODY = 8 * 1024 * 1024

QUERY_KINDS = ("count", "sat", "wmc", "mpe", "marginals", "explain")


class ProtocolError(ValueError):
    """A malformed request; ``status`` is the HTTP code to answer."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class CompileRequest:
    """A validated ``POST /compile`` body.

    ``optimize=True`` asks for the certified pass pipeline after the
    compile (on the request budget's slack); a non-improving or
    expiring pipeline degrades to the base artifact, never a 500.

    ``proof=True`` asks for an equivalence trace plus independent
    verification; the reply carries ``proved`` (true/false, absent
    when the check ran out of budget or a deduped leader compiled
    without proof).
    """

    dimacs: str
    config: Dict[str, Any] = field(default_factory=dict)
    deadline_s: Optional[float] = None
    max_nodes: Optional[int] = None
    optimize: bool = False
    proof: bool = False


@dataclass
class QueryRequest:
    """A validated ``POST /query`` body.

    ``optimize=True`` answers on the smallest certified stored
    variant instead of the base artifact (same results, fewer nodes).
    """

    key: str
    query: str
    num_vars: Optional[int] = None
    weights: Optional[Dict[int, float]] = None
    weight_batch: Optional[List[Dict[int, float]]] = None
    deadline_s: Optional[float] = None
    optimize: bool = False
    instance: Optional[Dict[int, bool]] = None
    limit: Optional[int] = None
    smallest: bool = False


def _bool_flag(data: Mapping[str, Any], name: str) -> bool:
    value = data.get(name, False)
    if not isinstance(value, bool):
        raise ProtocolError(f"{name} must be a boolean")
    return value


def _load_json(body: bytes) -> Dict[str, Any]:
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"invalid JSON body: {error}") from error
    if not isinstance(data, dict):
        raise ProtocolError("request body must be a JSON object")
    return data


def _positive_float(data: Mapping[str, Any], name: str
                    ) -> Optional[float]:
    value = data.get(name)
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or not value > 0:
        raise ProtocolError(f"{name} must be a positive number")
    return float(value)


def _positive_int(data: Mapping[str, Any], name: str) -> Optional[int]:
    value = data.get(name)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) \
            or value <= 0:
        raise ProtocolError(f"{name} must be a positive integer")
    return value


def _decode_weights(raw: Any, what: str = "weights"
                    ) -> Dict[int, float]:
    """JSON weight maps arrive with string literal keys ("−3": 0.2)."""
    if not isinstance(raw, dict):
        raise ProtocolError(f"{what} must be an object of "
                            "literal -> weight")
    out: Dict[int, float] = {}
    for key, value in raw.items():
        try:
            lit = int(key)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"{what} key {key!r} is not an integer literal"
            ) from None
        if lit == 0:
            raise ProtocolError(f"{what} literal must be non-zero")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ProtocolError(
                f"{what}[{key}] must be a number, got {value!r}")
        out[lit] = float(value)
    return out


def _decode_instance(raw: Any) -> Dict[int, bool]:
    """JSON instances arrive with string variable keys ("3": true)."""
    if not isinstance(raw, dict) or not raw:
        raise ProtocolError("instance must be a non-empty object of "
                            "variable -> boolean")
    out: Dict[int, bool] = {}
    for key, value in raw.items():
        try:
            var = int(key)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"instance key {key!r} is not an integer variable"
            ) from None
        if var <= 0:
            raise ProtocolError("instance variables must be positive")
        if not isinstance(value, bool):
            raise ProtocolError(
                f"instance[{key}] must be a boolean, got {value!r}")
        out[var] = value
    return out


def parse_compile_request(body: bytes) -> CompileRequest:
    data = _load_json(body)
    dimacs = data.get("dimacs")
    if not isinstance(dimacs, str) or not dimacs.strip():
        raise ProtocolError("compile request needs a non-empty "
                            "'dimacs' string")
    config = data.get("config", {})
    if not isinstance(config, dict):
        raise ProtocolError("'config' must be an object")
    return CompileRequest(
        dimacs=dimacs, config=dict(config),
        deadline_s=_positive_float(data, "deadline_s"),
        max_nodes=_positive_int(data, "max_nodes"),
        optimize=_bool_flag(data, "optimize"),
        proof=_bool_flag(data, "proof"))


def parse_query_request(body: bytes) -> QueryRequest:
    data = _load_json(body)
    key = data.get("key")
    if not isinstance(key, str) or not key:
        raise ProtocolError("query request needs an artifact 'key'")
    query = data.get("query", "count")
    if query not in QUERY_KINDS:
        raise ProtocolError(f"unknown query {query!r}; expected one "
                            f"of {list(QUERY_KINDS)}")
    weights = None
    if data.get("weights") is not None:
        weights = _decode_weights(data["weights"])
    weight_batch = None
    if data.get("weight_batch") is not None:
        raw_batch = data["weight_batch"]
        if not isinstance(raw_batch, list):
            raise ProtocolError("weight_batch must be a list of "
                                "weight objects")
        weight_batch = [_decode_weights(row, f"weight_batch[{i}]")
                        for i, row in enumerate(raw_batch)]
    if weights is not None and weight_batch is not None:
        raise ProtocolError("pass either weights or weight_batch, "
                            "not both")
    instance = None
    limit = _positive_int(data, "limit")
    smallest = _bool_flag(data, "smallest")
    if query == "explain":
        if weights is not None or weight_batch is not None:
            raise ProtocolError("explain takes an instance, "
                                "not weights")
        instance = _decode_instance(data.get("instance"))
    else:
        for name in ("instance", "limit", "smallest"):
            if data.get(name):
                raise ProtocolError(
                    f"'{name}' is only valid for query 'explain'")
    return QueryRequest(
        key=key, query=str(query),
        num_vars=_positive_int(data, "num_vars"),
        weights=weights, weight_batch=weight_batch,
        deadline_s=_positive_float(data, "deadline_s"),
        optimize=_bool_flag(data, "optimize"),
        instance=instance, limit=limit, smallest=smallest)
