"""The worker pool: where compiles and queries actually run.

Heavy work never runs on the event loop.  A
``concurrent.futures.ProcessPoolExecutor`` (fork context) hosts N
workers; each worker opens its *own* handle on the shared
:class:`~repro.ir.store.ArtifactStore` directory, so a circuit
compiled by any worker is a warm load (cert hit + ``.csr`` mmap +
cached codegen source) for every other worker and for every later
process.  Workers additionally keep a small in-process LRU of decoded
circuits so a hot key skips even the mmap parse.

Worker entry points (:func:`run_compile`, :func:`run_query`) are
module-level functions taking/returning plain dicts — the pickle
boundary — and never raise: every failure is encoded as a status so
the server can map it to an HTTP code.  Each reply carries the delta
of the worker store's counters for that call, which the app aggregates
into the served `/stats`.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import (Executor, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from typing import Any, Dict, Optional

import multiprocessing

from ..ir import facade
from ..ir.store import ArtifactStore
from ..limits.budget import Budget, BudgetExceeded
from ..perf.instrument import Counter

__all__ = ["WorkerPool", "run_compile", "run_query", "init_worker"]

#: decoded circuits kept per worker process (keys are content hashes,
#: so entries never go stale)
IR_CACHE_SIZE = 128

_store: Optional[ArtifactStore] = None
_ir_cache: "OrderedDict[str, Any]" = OrderedDict()


def init_worker(cache_root: str, verify: bool = True) -> None:
    """Per-process setup: open this worker's store handle."""
    global _store
    _store = ArtifactStore(cache_root, verify=verify)
    _ir_cache.clear()


def _require_store() -> ArtifactStore:
    if _store is None:
        raise RuntimeError("worker not initialised; init_worker() "
                           "must run first")
    return _store


def _stats_delta(before: Dict[str, int], after: Counter
                 ) -> Dict[str, int]:
    out = {}
    for name, value in after.as_dict().items():
        delta = value - before.get(name, 0)
        if delta:
            out[name] = delta
    return out


def _cached_ir(store: ArtifactStore, key: str) -> Optional[Any]:
    ir = _ir_cache.get(key)
    if ir is not None:
        _ir_cache.move_to_end(key)
        store.stats.incr("ir_cache_hits")
        return ir
    ir = facade.load_artifact(store, key)
    if ir is not None:
        _ir_cache[key] = ir
        while len(_ir_cache) > IR_CACHE_SIZE:
            _ir_cache.popitem(last=False)
    return ir


def _cached_smallest(store: ArtifactStore, key: str) -> Optional[Any]:
    """The smallest certified variant for ``key`` as ``(ir,
    forgotten)``, cached under ``key@opt`` so the ranking and variant
    parse are paid once per worker."""
    slot = f"{key}@opt"
    entry = _ir_cache.get(slot)
    if entry is not None:
        _ir_cache.move_to_end(slot)
        store.stats.incr("ir_cache_hits")
        return entry
    smallest = store.load_smallest(key)
    if smallest is None:
        return None
    ir, info = smallest
    entry = (ir, frozenset(info.get("forgotten", ())))
    _ir_cache[slot] = entry
    while len(_ir_cache) > IR_CACHE_SIZE:
        _ir_cache.popitem(last=False)
    return entry


def run_compile(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Compile a ticket into the shared store (worker side).

    ``payload`` is a :meth:`CompileTicket.as_wire` dict plus optional
    ``deadline_s`` / ``max_nodes`` caps.  Returns a status dict:
    ``ok`` (artifact stored, possibly warm), ``bounds`` (budget
    expired → certified interval), ``invalid`` or ``error``.
    """
    store = _require_store()
    before = dict(store.stats.as_dict())
    try:
        ticket = facade.CompileTicket(
            key=payload["key"], num_vars=payload["num_vars"],
            dimacs=payload["dimacs"], config=payload["config"])
        outcome = facade.compile_or_bounds(
            ticket, store,
            deadline_s=payload.get("deadline_s"),
            max_nodes=payload.get("max_nodes"),
            optimize=bool(payload.get("optimize", False)),
            proof=bool(payload.get("proof", False)))
        reply = outcome.as_wire()
    except ValueError as error:
        reply = {"status": "invalid", "error": str(error)}
    except Exception as error:  # never poison the pool
        reply = {"status": "error",
                 "error": f"{type(error).__name__}: {error}"}
    reply["pid"] = os.getpid()
    reply["store_stats"] = _stats_delta(before, store.stats)
    return reply


def run_query(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Answer one query on a stored artifact (worker side)."""
    store = _require_store()
    before = dict(store.stats.as_dict())
    try:
        forgotten: Any = frozenset()
        if payload.get("optimize"):
            entry = _cached_smallest(store, payload["key"])
            ir = entry[0] if entry is not None else None
            if entry is not None:
                forgotten = entry[1]
        else:
            ir = _cached_ir(store, payload["key"])
        if ir is None:
            reply: Dict[str, Any] = {"status": "not_found",
                                     "error": "unknown artifact key "
                                              + payload["key"]}
        elif payload["query"] == "explain":
            deadline = payload.get("deadline_s")
            budget = Budget(deadline_s=deadline) if deadline else None
            instance = {int(k): bool(v)
                        for k, v in payload["instance"].items()}
            reply = facade.explain_ir(
                ir, instance, limit=payload.get("limit"),
                smallest=bool(payload.get("smallest", False)),
                budget=budget, forgotten=forgotten)
            # anytime degradation: an expired budget is still a 200
            # with complete=false + partial, never a 408
            reply["status"] = "ok"
        else:
            deadline = payload.get("deadline_s")
            budget = Budget(deadline_s=deadline) if deadline else None
            weights = payload.get("weights")
            if weights is not None:
                weights = {int(k): float(v) for k, v in weights.items()}
            batch = payload.get("weight_batch")
            if batch is not None:
                batch = [{int(k): float(v) for k, v in row.items()}
                         for row in batch]
            reply = facade.query_ir(
                ir, payload["query"], num_vars=payload.get("num_vars"),
                weights=weights, weight_batch=batch, budget=budget,
                codegen_store=store, forgotten=forgotten)
            reply["status"] = "ok"
            result = reply.get("result")
            if isinstance(result, int) and not isinstance(result, bool):
                # counts can exceed JSON number precision; send text
                reply["result"] = str(result)
            if "count" in reply:
                reply["count"] = str(reply["count"])
    except BudgetExceeded as error:
        reply = {"status": "budget_exceeded", "error": str(error),
                 "reason": error.reason}
    except ValueError as error:
        reply = {"status": "invalid", "error": str(error)}
    except Exception as error:
        reply = {"status": "error",
                 "error": f"{type(error).__name__}: {error}"}
    reply["pid"] = os.getpid()
    reply["store_stats"] = _stats_delta(before, store.stats)
    return reply


def _warm(_: int) -> int:
    """No-op task used to force worker spawn at startup."""
    return os.getpid()


class WorkerPool:
    """N forked workers over one shared artifact directory.

    With ``workers=0`` the same entry points run on an in-process
    thread pool instead (tests, single-core deployments) — one store
    handle, no pickling, and the event loop stays responsive.
    """

    def __init__(self, cache_root: str, workers: int = 2,
                 verify: bool = True) -> None:
        self.cache_root = cache_root
        self.workers = max(0, int(workers))
        self.verify = verify
        self._executor: Executor
        if self.workers == 0:
            init_worker(cache_root, verify)
            self._executor = ThreadPoolExecutor(max_workers=2)
        else:
            context = multiprocessing.get_context("fork")
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context,
                initializer=init_worker,
                initargs=(cache_root, verify))
            # spawn workers NOW: forking after the asyncio loop (and
            # its helper threads) start is unsafe, and a lazy first
            # fork would bill one request for the whole pool startup
            list(self._executor.map(_warm, range(self.workers)))

    def submit(self, fn: Any, payload: Dict[str, Any]) -> Any:
        """A concurrent.futures.Future for ``fn(payload)``."""
        return self._executor.submit(fn, payload)

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)
