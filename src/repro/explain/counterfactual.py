"""Counterfactual statements about decisions ([33]; Section 5.1).

The paper's example: "The decision on April would stick *even if* she
were not to have work experience *because* she passed the entrance
exam."  Such a statement has two parts:

* *even if*: flipping the named features leaves the decision unchanged;
* *because*: the named reason is a term of instance literals, disjoint
  from the flipped features, that is sufficient for the decision — so
  it explains why the flip cannot matter.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..obdd.manager import ObddNode
from .sufficient import decision_and_function, _matches_instance, \
    _term_triggers

__all__ = ["decision_sticks", "decision_sticks_batch",
           "verify_even_if_because"]


def decision_sticks(node: ObddNode, instance: Mapping[int, bool],
                    flipped: Sequence[int]) -> bool:
    """Does the decision survive flipping the given features?"""
    modified = dict(instance)
    for var in flipped:
        modified[var] = not modified[var]
    return node.evaluate(modified) == node.evaluate(instance)


def decision_sticks_batch(node: ObddNode,
                          instance: Mapping[int, bool],
                          flip_sets: Sequence[Sequence[int]]
                          ) -> List[bool]:
    """:func:`decision_sticks` for N candidate flip sets at once.

    All N counterfactual probes (e.g. the Fig 28 per-pixel sweeps)
    share one batched circuit evaluation instead of N path walks;
    entry ``j`` answers whether the decision survives flipping
    ``flip_sets[j]``.
    """
    import numpy as np
    flip_sets = [set(flips) for flips in flip_sets]
    n = len(flip_sets)
    columns = {}
    for var, value in instance.items():
        flipped_here = np.array([var in flips for flips in flip_sets],
                                dtype=bool)
        columns[var] = flipped_here ^ bool(value)
    baseline = node.evaluate(instance)
    results = node.evaluate_batch(columns) if n else \
        np.zeros(0, dtype=bool)
    return [bool(r) == baseline for r in results]


def verify_even_if_because(node: ObddNode,
                           instance: Mapping[int, bool],
                           flipped: Sequence[int],
                           because: Sequence[int]) -> Dict[str, bool]:
    """Check an "even if … because …" statement.

    ``because`` is a term of literals.  The statement is *valid* when
    the term consists of instance literals, avoids the flipped
    features, and is sufficient for the decision — which entails the
    decision sticks under *any* change to the flipped features (not
    just the single flip).
    """
    flipped_set = set(flipped)
    term_ok = all(_matches_instance(instance, lit) for lit in because)
    disjoint = all(abs(lit) not in flipped_set for lit in because)
    _decision, trigger = decision_and_function(node, instance)
    sufficient = _term_triggers(trigger, list(because))
    valid = term_ok and disjoint and sufficient
    return {
        "sticks": decision_sticks(node, instance, flipped),
        "because_is_instance_term": term_ok,
        "because_avoids_flipped": disjoint,
        "because_is_sufficient": sufficient,
        "valid": valid,
    }
