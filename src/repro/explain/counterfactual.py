"""Counterfactual statements about decisions ([33]; Section 5.1).

The paper's example: "The decision on April would stick *even if* she
were not to have work experience *because* she passed the entrance
exam."  Such a statement has two parts:

* *even if*: flipping the named features leaves the decision unchanged;
* *because*: the named reason is a term of instance literals, disjoint
  from the flipped features, that is sufficient for the decision — so
  it explains why the flip cannot matter.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from ..obdd.manager import ObddNode
from .sufficient import decision_and_function, _term_triggers

__all__ = ["decision_sticks", "verify_even_if_because"]


def decision_sticks(node: ObddNode, instance: Mapping[int, bool],
                    flipped: Sequence[int]) -> bool:
    """Does the decision survive flipping the given features?"""
    modified = dict(instance)
    for var in flipped:
        modified[var] = not modified[var]
    return node.evaluate(modified) == node.evaluate(instance)


def verify_even_if_because(node: ObddNode,
                           instance: Mapping[int, bool],
                           flipped: Sequence[int],
                           because: Sequence[int]) -> Dict[str, bool]:
    """Check an "even if … because …" statement.

    ``because`` is a term of literals.  The statement is *valid* when
    the term consists of instance literals, avoids the flipped
    features, and is sufficient for the decision — which entails the
    decision sticks under *any* change to the flipped features (not
    just the single flip).
    """
    flipped_set = set(flipped)
    term_ok = all(instance[abs(lit)] == (lit > 0) for lit in because)
    disjoint = all(abs(lit) not in flipped_set for lit in because)
    _decision, trigger = decision_and_function(node, instance)
    sufficient = _term_triggers(trigger, list(because))
    valid = term_ok and disjoint and sufficient
    return {
        "sticks": decision_sticks(node, instance, flipped),
        "because_is_instance_term": term_ok,
        "because_avoids_flipped": disjoint,
        "because_is_sufficient": sufficient,
        "valid": valid,
    }
