"""The complete reason behind a decision, as a tractable circuit
(Darwiche & Hirth [33]; Fig 27).

The *complete reason* is the disjunction of all sufficient reasons —
the "most general abstraction of the instance that triggers the
decision".  On a decision graph (OBDD) it is extracted in linear time:
every decision node on variable X rewrites to

    consistent_child ∧ (consistent_literal ∨ other_child)

where "consistent" is relative to the instance.  The result is a
*monotone* NNF circuit over the instance's literals, which is what
makes it tractable to reason with.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Sequence

from ..nnf.node import NnfManager, NnfNode
from ..obdd.manager import ObddNode
from .sufficient import decision_and_function

__all__ = ["reason_circuit", "reason_circuit_ddnnf", "reason_implies",
           "reason_prime_implicants"]


def reason_circuit(node: ObddNode, instance: Mapping[int, bool],
                   manager: NnfManager | None = None) -> NnfNode:
    """The complete-reason circuit for the decision on ``instance``.

    Works for positive and negative decisions alike (the negative case
    transforms the complement, per Fig 26).
    """
    if manager is None:
        manager = NnfManager()
    _decision, trigger = decision_and_function(node, instance)
    obdd_manager = trigger.manager
    cache: Dict[int, NnfNode] = {}

    def build(current: ObddNode) -> NnfNode:
        hit = cache.get(current.id)
        if hit is not None:
            return hit
        if current.is_terminal:
            result = manager.true() if current.terminal_value \
                else manager.false()
        else:
            var = current.var
            value = instance[var]
            literal = manager.literal(var if value else -var)
            consistent = build(current.high if value else current.low)
            other = build(current.low if value else current.high)
            result = manager.conjoin(consistent,
                                     manager.disjoin(literal, other))
        cache[current.id] = result
        return result

    return build(trigger)


def reason_circuit_ddnnf(trigger: NnfNode, instance: Mapping[int, bool],
                         manager: NnfManager | None = None) -> NnfNode:
    """The complete-reason circuit from a Decision-DNNF directly.

    [33]'s construction applies to any decision graph, and compiler
    output (Decision-DNNF) is one: decision gates transform like OBDD
    nodes (consistent-branch ∧ (consistent-literal ∨ other-branch));
    and-gates, whose children are over disjoint variables, transform
    child-wise (f|S is valid iff every factor's restriction is).

    ``trigger`` must be the function the decision *triggers* — the
    classifier itself for a positive decision, a Decision-DNNF of its
    complement for a negative one (note that
    :func:`repro.nnf.transform.negate_decision` does not preserve the
    decision-gate shape; compile the complement instead, or use the
    OBDD-based :func:`reason_circuit`).  The instance must satisfy the
    trigger.
    """
    from ..nnf.properties import is_decision_node
    if manager is None:
        manager = trigger.manager
    if not trigger.evaluate({**{v: False for v in trigger.variables()},
                             **dict(instance)}):
        raise ValueError("the instance does not satisfy the trigger; "
                         "pass the complement circuit for negative "
                         "decisions")
    cache: Dict[int, NnfNode] = {}

    def build(node: NnfNode) -> NnfNode:
        hit = cache.get(node.id)
        if hit is not None:
            return hit
        if node.is_true:
            result = manager.true()
        elif node.is_false:
            result = manager.false()
        elif node.is_literal:
            consistent = instance[abs(node.literal)] == \
                (node.literal > 0)
            result = node if consistent else manager.false()
        elif node.is_and:
            result = manager.conjoin(*(build(c) for c in node.children))
        else:
            var = is_decision_node(node)
            if var is None:
                raise ValueError("reason circuits need a Decision-DNNF")
            value = instance[var]
            literal = manager.literal(var if value else -var)
            consistent_child, other_child = None, None
            for child in node.children:
                if child.is_literal:
                    guard, rest = child.literal, manager.true()
                else:
                    # the guard ±var may sit anywhere among the
                    # conjuncts; the rest is everything else
                    guard = next(g.literal for g in child.children
                                 if g.is_literal
                                 and abs(g.literal) == var)
                    others = [g for g in child.children
                              if not (g.is_literal
                                      and abs(g.literal) == var)]
                    rest = manager.conjoin(*others) if others \
                        else manager.true()
                if (guard > 0) == value:
                    consistent_child = rest
                else:
                    other_child = rest
            consistent_part = build(consistent_child) \
                if consistent_child is not None else manager.false()
            other_part = build(other_child) \
                if other_child is not None else manager.false()
            result = manager.conjoin(
                consistent_part, manager.disjoin(literal, other_part))
        cache[node.id] = result
        return result

    return build(trigger)


def reason_implies(circuit: NnfNode, term: Sequence[int]) -> bool:
    """Does the term (a subset of the instance's literals) trigger the
    decision — i.e. imply the complete reason?

    The circuit is monotone in the instance literals, so it suffices to
    evaluate it with exactly the term's literals asserted.
    """
    term_set = set(term)
    values: Dict[int, bool] = {}
    for node in circuit.topological():
        if node.is_literal:
            values[node.id] = node.literal in term_set
        elif node.is_true:
            values[node.id] = True
        elif node.is_false:
            values[node.id] = False
        elif node.is_and:
            values[node.id] = all(values[c.id] for c in node.children)
        else:
            values[node.id] = any(values[c.id] for c in node.children)
    return values[circuit.id]


def reason_prime_implicants(circuit: NnfNode) -> List[FrozenSet[int]]:
    """The prime implicants of a (monotone) reason circuit — these are
    exactly the sufficient reasons of the decision.

    Monotonicity allows a bottom-up computation manipulating antichains
    of literal sets (each node's set of minimal triggering terms).
    """
    cache: Dict[int, List[FrozenSet[int]]] = {}
    for node in circuit.topological():
        if node.is_literal:
            cache[node.id] = [frozenset((node.literal,))]
        elif node.is_true:
            cache[node.id] = [frozenset()]
        elif node.is_false:
            cache[node.id] = []
        elif node.is_or:
            union: List[FrozenSet[int]] = []
            for child in node.children:
                union.extend(cache[child.id])
            cache[node.id] = _minimize(union)
        else:  # and: pairwise unions across children
            combined: List[FrozenSet[int]] = [frozenset()]
            for child in node.children:
                combined = [a | b for a in combined
                            for b in cache[child.id]]
                combined = _minimize(combined)
            cache[node.id] = combined
    return sorted(cache[circuit.id],
                  key=lambda t: (len(t), sorted(t, key=abs)))


def _minimize(terms: List[FrozenSet[int]]) -> List[FrozenSet[int]]:
    """Keep only subset-minimal terms."""
    minimal: List[FrozenSet[int]] = []
    for term in sorted(set(terms), key=len):
        if not any(existing <= term for existing in minimal):
            minimal.append(term)
    return minimal
