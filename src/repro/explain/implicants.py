"""Prime-implicant / sufficient-reason enumeration on Decision-DNNF IR.

Role 3 at production scale (Section 5.1; de Colnet & Marquis 2023,
"On the Complexity of Enumerating Prime Implicants from Decision-DNNF
Circuits"): the OBDD routines of :mod:`repro.explain.sufficient` are
exact but walk a canonical diagram the compiler never produces at
scale.  This engine works directly on compiled Decision-DNNF
:class:`~repro.ir.core.CircuitIR` — no OBDD detour:

* :func:`reason_graph` builds the complete-reason circuit of a
  decision (Darwiche & Hirth) as a lightweight monotone DAG in one
  linear pass over the IR arrays (the Decision-DNNF analogue of
  :func:`repro.explain.reason_circuit.reason_circuit`);
* :func:`iter_sufficient_reasons` enumerates the sufficient reasons —
  the prime implicants of that monotone DAG — with a minimal-hitting
  successor scheme: each probe greedily shrinks the instance term
  under an exclusion set, costing ``O(vars × graph)`` evaluations.
  The *first* reason therefore arrives with polynomial delay
  unconditionally, and on the tractable fragment (circuits whose
  reason antichain stays small — OBDD-shaped and width-bounded
  decision structure) every successive reason does too.  Beyond the
  fragment the hardness boundary of de Colnet & Marquis applies, and
  a cooperative :class:`~repro.limits.Budget` governs the search:
  the iterator simply stops yielding on expiry — reasons already
  yielded are always true sufficient reasons, never guesses;
* :class:`CountOracle` keeps enumeration available on certified
  variants that *lost* the syntactic decision shape — the tseitin
  pruning pass can forget a guard auxiliary and leave an or-gate
  whose branches are disjoint without a complementary literal pair.
  Membership then falls back to exact model counting (one 0/1-weight
  kernel pass per probe evaluation) behind the same term/evaluate
  interface, so the successor scheme runs unchanged;
* :func:`check_sufficient_batch` / :func:`check_necessary_batch`
  answer "is this term why instance j was classified X" for whole
  datasets in two :class:`~repro.ir.kernel.IrKernel` numpy passes
  (the Fig-28 ``decision_sticks_batch`` template): one
  ``evaluate_batch`` for the decisions, one 0/1-weight ``wmc_batch``
  whose column ``j`` counts the models of ``f`` consistent with term
  ``j`` — the term is sufficient iff that count is ``2^free`` for a
  positive decision and ``0`` for a negative one.

Every entry point runs behind the Fig-13 query gate
(:func:`repro.analyze.gate.check_kernel`, query ``"explain"``:
certified decomposability + determinism), and ``forgotten`` Tseitin
auxiliaries (:mod:`repro.ir.passes`) are excluded throughout — an
emitted reason can never mention one.
"""

from __future__ import annotations

from collections import deque
from typing import (Any, Dict, FrozenSet, Iterable, Iterator, List,
                    Mapping, Optional, Sequence, Set, Tuple)

from ..ir.core import (FLAG_DECOMPOSABLE, FLAG_DETERMINISTIC,
                       CircuitIR, KIND_AND, KIND_FALSE, KIND_LIT,
                       KIND_OR, KIND_PARAM)
from ..ir.kernel import IrKernel, ir_kernel
from ..limits.budget import Budget, resolve_budget
from ..perf.instrument import Counter

__all__ = ["ReasonGraph", "CountOracle", "reason_graph",
           "count_oracle", "iter_sufficient_reasons",
           "sufficient_reasons", "necessary_literals",
           "check_sufficient_batch", "check_necessary_batch"]

Term = FrozenSet[int]

# monotone reason-DAG node kinds (private to this module)
_K_TRUE, _K_FALSE, _K_LIT, _K_AND, _K_OR = range(5)

#: DAG indices of the shared constant nodes
_TRUE, _FALSE = 0, 1

#: sentinel: a probe aborted by budget expiry (distinct from "no
#: implicant avoiding the exclusion set exists")
_EXPIRED = object()

#: 0/1-weight batched counts are exact in float64 up to 2^52 models
_EXACT_COUNT_VARS = 52

_NEGATIVE_DECISION = (
    "the instance does not satisfy the circuit (negative decision); "
    "sufficient reasons of a negative decision are prime implicants "
    "of the complement — compile the complement circuit and explain "
    "on it")


class ReasonGraph:
    """The complete reason of a decision, as a monotone DAG.

    Nodes live in creation order (children precede parents); indices
    0/1 are the shared TRUE/FALSE constants.  ``term`` is the sorted
    tuple of instance literals the graph can mention — every
    sufficient reason is a subset of it.
    """

    __slots__ = ("kinds", "lits", "children", "root", "term", "size")

    def __init__(self, kinds: List[int], lits: List[int],
                 children: List[Tuple[int, ...]], root: int,
                 term: Tuple[int, ...]) -> None:
        self.kinds = kinds
        self.lits = lits
        self.children = children
        self.root = root
        self.term = term
        self.size = len(kinds)

    def evaluate(self, members: Set[int]) -> bool:
        """One monotone bottom-up pass: the graph's value with exactly
        the literals in ``members`` asserted."""
        values = [False] * self.size
        kinds = self.kinds
        children = self.children
        for i in range(self.size):
            kind = kinds[i]
            if kind == _K_LIT:
                values[i] = self.lits[i] in members
            elif kind == _K_AND:
                values[i] = all(values[c] for c in children[i])
            elif kind == _K_OR:
                values[i] = any(values[c] for c in children[i])
            else:
                values[i] = kind == _K_TRUE
        return values[self.root]


class CountOracle:
    """Implicant membership by exact model counting.

    Optimisation passes can erase a decision gate's guard: forgetting
    a Tseitin auxiliary that *was* the guard variable leaves an
    or-gate whose branches are semantically disjoint yet share no
    complementary literal pair — still a certified d-DNNF, no longer
    syntactically Decision-DNNF, and no local reason-graph transform
    is sound for it (the guard's trace in the reason is a *function*
    of the remaining variables, not a literal).  Implicant membership
    survives: a subset ``t`` of the instance term is sufficient iff
    the models of ``f`` consistent with ``t`` number exactly
    ``2^(vars − |t|)``.  Each :meth:`evaluate` is therefore one
    0/1-weight kernel count, behind the same ``term`` / ``size`` /
    ``evaluate`` interface as :class:`ReasonGraph`, so the probe and
    successor scheme run unchanged — count passes instead of DAG
    walks.  Exact while the count fits float64 (``2^52``); the
    builder refuses wider circuits.
    """

    __slots__ = ("kernel", "term", "size", "_n_vars")

    def __init__(self, kernel: IrKernel, mentioned: Sequence[int],
                 instance: Mapping[int, bool]) -> None:
        self.kernel = kernel
        self._n_vars = len(mentioned)
        self.term: Tuple[int, ...] = tuple(
            (v if instance[v] else -v) for v in mentioned)
        self.size = kernel.n

    def evaluate(self, members: Set[int]) -> bool:
        """Is the members subset of the instance term an implicant?"""
        from ..analyze.gate import gate_scope
        weights: Dict[int, float] = {}
        for lit in self.term:
            if lit in members:
                weights[lit], weights[-lit] = 1.0, 0.0
            else:
                weights[lit], weights[-lit] = 1.0, 1.0
        # the caller's probe already charged this pass cooperatively;
        # an inner unlimited scope keeps the kernel's own (raising)
        # governor from billing the same pass twice.  repair gate: a
        # non-smooth variant is auto-smoothed, and the smoothing gap
        # factors stay exact under 0/1 weights.
        with Budget().scope():
            with gate_scope("repair"):
                count = self.kernel.wmc(weights)
        return count == float(2 ** (self._n_vars - len(members)))


def _gated_kernel(ir: CircuitIR) -> IrKernel:
    """The kernel behind the Fig-13 gate: ``"explain"`` requires
    certified decomposability + determinism (strict/repair modes)."""
    from ..analyze.gate import check_kernel
    return check_kernel(ir_kernel(ir), "explain")


def _mentioned_vars(kernel: IrKernel,
                    forgotten: Iterable[int]) -> List[int]:
    """The circuit's variables, with forgotten auxiliaries rejected:
    a variant that still mentions a supposedly-forgotten variable
    cannot keep the no-auxiliaries-in-reasons guarantee."""
    if kernel.n == 0:
        return []
    skip = frozenset(int(v) for v in forgotten)
    mentioned = sorted(kernel.varsets[kernel.n - 1])
    leaked = [v for v in mentioned if v in skip]
    if leaked:
        raise ValueError(
            f"forgotten variables {leaked} still appear in the "
            "circuit; explain the base artifact instead")
    return mentioned


def _decision_var(kernel: IrKernel, i: int) -> Optional[int]:
    """The decision variable of or-gate ``i``, or None.

    IR-level twin of :func:`repro.nnf.properties.is_decision_node`:
    the guard literal may sit anywhere among a branch's conjuncts.
    """
    kids = kernel.children[i]
    if len(kids) != 2:
        return None

    def candidates(c: int) -> Set[int]:
        if kernel.kinds[c] == KIND_LIT:
            return {kernel.lits[c]}
        if kernel.kinds[c] == KIND_AND:
            return {kernel.lits[g] for g in kernel.children[c]
                    if kernel.kinds[g] == KIND_LIT}
        return set()

    first, second = (candidates(c) for c in kids)
    matches = sorted(abs(lit) for lit in first if -lit in second)
    return matches[0] if matches else None


def reason_graph(ir: CircuitIR, instance: Mapping[int, bool], *,
                 forgotten: Iterable[int] = (),
                 budget: Optional[Budget] = None) -> ReasonGraph:
    """Build the complete-reason DAG of the decision on ``instance``.

    One linear pass over the IR: literals map to themselves (or FALSE
    when inconsistent with the instance), and-gates conjoin child
    reasons, and every decision gate ``(X ∧ α) ∨ (¬X ∧ β)`` rewrites
    to ``R(α|x) ∧ (x ∨ R(β|x))`` with ``x`` the instance's literal of
    X (Darwiche & Hirth).  Gates are hash-consed and constant-folded.

    Raises ``ValueError`` on a non-Decision-DNNF shape, a
    parameterised circuit, an instance missing circuit variables, a
    circuit still mentioning forgotten variables, or a negative
    decision (sufficient reasons of a negative decision are prime
    implicants of the *complement* — compile it and explain on that,
    exactly like :func:`~.reason_circuit.reason_circuit_ddnnf`).

    The build charges the (explicit or ambient) budget one pass but
    always completes — enumeration is where expiry bites.
    """
    kernel = _gated_kernel(ir)
    mentioned = _mentioned_vars(kernel, forgotten)
    missing = [v for v in mentioned if v not in instance]
    if missing:
        raise ValueError(
            f"instance does not assign circuit variables {missing}")
    budget = resolve_budget(budget)
    if budget is not None:
        budget.charge(kernel.n)

    n = kernel.n
    kinds, lits, children = kernel.kinds, kernel.lits, kernel.children
    g_kinds: List[int] = [_K_TRUE, _K_FALSE]
    g_lits: List[int] = [0, 0]
    g_children: List[Tuple[int, ...]] = [(), ()]
    memo: Dict[Any, int] = {}

    def lit_node(lit: int) -> int:
        idx = memo.get(("l", lit))
        if idx is None:
            idx = len(g_kinds)
            memo[("l", lit)] = idx
            g_kinds.append(_K_LIT)
            g_lits.append(lit)
            g_children.append(())
        return idx

    def gate(kind: int, parts: Iterable[int]) -> int:
        absorbing = _FALSE if kind == _K_AND else _TRUE
        neutral = _TRUE if kind == _K_AND else _FALSE
        out: List[int] = []
        for p in parts:
            if p == absorbing:
                return absorbing
            if p != neutral and p not in out:
                out.append(p)
        if not out:
            return neutral
        if len(out) == 1:
            return out[0]
        key = (kind, tuple(sorted(out)))
        idx = memo.get(key)
        if idx is None:
            idx = len(g_kinds)
            memo[key] = idx
            g_kinds.append(kind)
            g_lits.append(0)
            g_children.append(key[1])
        return idx

    def branch_parts(c: int, var: int) -> Tuple[int, int]:
        """(guard literal, mapped rest) of one decision branch."""
        if kinds[c] == KIND_LIT and abs(lits[c]) == var:
            return lits[c], _TRUE
        guard = 0
        rest: List[int] = []
        for g in children[c]:
            if not guard and kinds[g] == KIND_LIT \
                    and abs(lits[g]) == var:
                guard = lits[g]
            else:
                rest.append(reasons[g])
        if not guard:
            raise ValueError(
                f"or-gate branch {c} lacks a guard literal on "
                f"variable {var}; explain requires a Decision-DNNF")
        return guard, gate(_K_AND, rest)

    values: List[bool] = [False] * n
    reasons: List[int] = [_FALSE] * n
    for i in range(n):
        kind = kinds[i]
        if kind == KIND_LIT:
            lit = lits[i]
            consistent = bool(instance[abs(lit)]) == (lit > 0)
            values[i] = consistent
            reasons[i] = lit_node(lit) if consistent else _FALSE
        elif kind == KIND_AND:
            kids = children[i]
            values[i] = all(values[c] for c in kids)
            reasons[i] = gate(_K_AND, (reasons[c] for c in kids))
        elif kind == KIND_OR:
            kids = children[i]
            values[i] = any(values[c] for c in kids)
            if not kids:
                reasons[i] = _FALSE
            elif len(kids) == 1:
                reasons[i] = reasons[kids[0]]
            else:
                var = _decision_var(kernel, i)
                if var is None:
                    raise ValueError(
                        f"or-gate {i} is not a decision gate; explain "
                        "requires a Decision-DNNF circuit")
                wanted = var if instance[var] else -var
                consistent_rest = other_rest = _FALSE
                for c in kids:
                    guard, rest = branch_parts(c, var)
                    if guard == wanted:
                        consistent_rest = rest
                    else:
                        other_rest = rest
                reasons[i] = gate(_K_AND, (
                    consistent_rest,
                    gate(_K_OR, (lit_node(wanted), other_rest))))
        elif kind == KIND_PARAM:
            raise ValueError(
                "explain does not support parameterised circuits")
        else:
            values[i] = kind != KIND_FALSE
            reasons[i] = _TRUE if values[i] else _FALSE

    decision = bool(values[n - 1]) if n else False
    if not decision:
        raise ValueError(_NEGATIVE_DECISION)
    root = reasons[n - 1]

    # the term is the instance literals *reachable* from the root —
    # anything else can never join a reason, so probes skip it
    reachable: Set[int] = set()
    stack = [root]
    while stack:
        idx = stack.pop()
        if idx in reachable:
            continue
        reachable.add(idx)
        stack.extend(g_children[idx])
    term = tuple(sorted(
        (g_lits[idx] for idx in reachable if g_kinds[idx] == _K_LIT),
        key=abs))
    return ReasonGraph(g_kinds, g_lits, g_children, root, term)


def count_oracle(ir: CircuitIR, instance: Mapping[int, bool], *,
                 forgotten: Iterable[int] = (),
                 budget: Optional[Budget] = None) -> CountOracle:
    """Build the counting membership oracle for the decision.

    Same validation surface as :func:`reason_graph` (gate, forgotten
    leaks, instance coverage, parameter leaves, negative decisions)
    plus the float64 exactness bound; like the graph build, it
    charges the budget one pass and always completes.
    """
    kernel = _gated_kernel(ir)
    mentioned = _mentioned_vars(kernel, forgotten)
    missing = [v for v in mentioned if v not in instance]
    if missing:
        raise ValueError(
            f"instance does not assign circuit variables {missing}")
    if any(kernel.kinds[i] == KIND_PARAM for i in range(kernel.n)):
        raise ValueError(
            "explain does not support parameterised circuits")
    if len(mentioned) > _EXACT_COUNT_VARS:
        raise ValueError(
            f"{len(mentioned)} variables is beyond the float64-exact "
            "counting range of the fallback oracle; explain the base "
            "artifact instead")
    budget = resolve_budget(budget)
    if budget is not None:
        budget.charge(kernel.n)
    oracle = CountOracle(kernel, mentioned, instance)
    # count(f ∧ instance) == 1 iff the decision is positive
    if not oracle.evaluate(frozenset(oracle.term)):
        raise ValueError(_NEGATIVE_DECISION)
    return oracle


Oracle = Any  # ReasonGraph | CountOracle (shared duck interface)


def _guard_complete(kernel: IrKernel) -> bool:
    """Does every multi-child or-gate expose a syntactic guard pair?"""
    return all(
        _decision_var(kernel, i) is not None
        for i in range(kernel.n)
        if kernel.kinds[i] == KIND_OR and len(kernel.children[i]) >= 2)


def _build_oracle(ir: CircuitIR, instance: Mapping[int, bool], *,
                  forgotten: Iterable[int] = (),
                  budget: Optional[Budget] = None) -> Oracle:
    """The membership oracle enumeration runs on: the linear reason
    graph when the circuit is syntactically guarded, else — for
    circuits whose certificate carries decomposability + determinism,
    the properties exact counting rests on — the counting fallback.
    Uncertified unguarded circuits go to :func:`reason_graph` for its
    precise rejection."""
    kernel = _gated_kernel(ir)
    if not _guard_complete(kernel) \
            and ir.has_flag(FLAG_DECOMPOSABLE) \
            and ir.has_flag(FLAG_DETERMINISTIC):
        return count_oracle(ir, instance, forgotten=forgotten,
                            budget=budget)
    return reason_graph(ir, instance, forgotten=forgotten,
                        budget=budget)


def _minimal_avoiding(graph: Oracle, excluded: Term,
                      budget: Optional[Budget],
                      stats: Optional[Counter]) -> Any:
    """A subset-minimal implicant of the graph avoiding ``excluded``.

    Greedy shrink from the instance term: ``1 + |term|`` monotone
    evaluations, each charged to the budget.  Returns None when no
    implicant avoids the exclusions, or ``_EXPIRED`` when the budget
    ran out mid-probe — a half-shrunk term is never returned, so an
    expired enumeration can never yield a non-implicant.
    """
    if stats is not None:
        stats.incr("explain_probes")

    def expired() -> bool:
        return budget is not None and \
            budget.charge(graph.size) is not None

    if expired():
        return _EXPIRED
    if stats is not None:
        stats.incr("explain_evals")
    members = {lit for lit in graph.term if lit not in excluded}
    if not graph.evaluate(members):
        return None
    for lit in sorted(members, key=abs):
        if expired():
            return _EXPIRED
        if stats is not None:
            stats.incr("explain_evals")
        members.discard(lit)
        if not graph.evaluate(members):
            members.add(lit)
    return frozenset(members)


def iter_sufficient_reasons(ir: Optional[CircuitIR] = None,
                            instance: Optional[Mapping[int, bool]] = None,
                            *, forgotten: Iterable[int] = (),
                            budget: Optional[Budget] = None,
                            graph: Optional[Oracle] = None,
                            stats: Optional[Counter] = None
                            ) -> Iterator[Term]:
    """Yield every sufficient reason of the decision exactly once.

    Minimal-hitting successor scheme: start from the unconstrained
    greedy minimal implicant; after emitting reason ``r``, branch on
    excluding each literal of ``r`` in turn (a BFS over exclusion
    sets, deduplicated).  Completeness is the standard argument: any
    target reason ``m`` differs from every other emitted reason by a
    literal outside ``m``, so some exclusion path keeps ``m`` alive
    until the greedy probe has no choice but to return it.

    Anytime: when the (explicit or ambient) budget expires the
    iterator stops — it never raises and never emits an unverified
    term.  Callers wanting the structured partial marker use
    :func:`sufficient_reasons`.
    """
    if graph is None:
        if ir is None or instance is None:
            raise ValueError("pass a circuit and instance, or a "
                             "prebuilt reason oracle")
        graph = _build_oracle(ir, instance, forgotten=forgotten,
                              budget=budget)
    budget = resolve_budget(budget)
    emitted: Set[Term] = set()
    explored: Set[Term] = {frozenset()}
    queue: deque = deque([frozenset()])
    while queue:
        excluded = queue.popleft()
        found = _minimal_avoiding(graph, excluded, budget, stats)
        if found is _EXPIRED:
            return
        if found is None:
            continue
        if found not in emitted:
            emitted.add(found)
            yield found
        for lit in sorted(found, key=abs):
            child = excluded | {lit}
            if child not in explored:
                explored.add(child)
                queue.append(child)


def sufficient_reasons(ir: CircuitIR, instance: Mapping[int, bool], *,
                       forgotten: Iterable[int] = (),
                       budget: Optional[Budget] = None,
                       limit: Optional[int] = None,
                       smallest: bool = False,
                       stats: Optional[Counter] = None
                       ) -> Dict[str, Any]:
    """All sufficient reasons of the decision, wire-ready.

    Returns ``{"decision": True, "reasons": [...], "complete": bool,
    "probes": int, "oracle": "graph"|"count"}`` with reasons sorted
    by (size, variables), plus ``"partial"`` (the budget's expiry
    reason and counters) when the budget ran out, and ``"smallest"``
    when requested.  ``limit`` stops after that many reasons
    (``complete`` stays False).  Anytime: never raises on expiry;
    every listed reason is a true sufficient reason.
    """
    graph = _build_oracle(ir, instance, forgotten=forgotten,
                          budget=budget)
    budget = resolve_budget(budget)
    counter = stats if stats is not None else Counter()
    found: List[Term] = []
    exhausted = True
    for reason in iter_sufficient_reasons(graph=graph, budget=budget,
                                          stats=counter):
        found.append(reason)
        if limit is not None and len(found) >= limit:
            exhausted = False
            break
    expired = budget.expired() if budget is not None else None
    ordered = sorted(found, key=lambda t: (len(t), sorted(t, key=abs)))
    out: Dict[str, Any] = {
        "decision": True,
        "reasons": [sorted(t, key=abs) for t in ordered],
        "complete": exhausted and expired is None,
        "probes": int(counter["explain_probes"]),
        "oracle": "count" if isinstance(graph, CountOracle)
        else "graph",
    }
    if smallest:
        out["smallest"] = out["reasons"][0] if ordered else None
    if expired is not None:
        out["partial"] = {"reason": expired,
                          "budget": budget.as_dict()}
    return out


def necessary_literals(ir: CircuitIR, instance: Mapping[int, bool], *,
                       forgotten: Iterable[int] = (),
                       budget: Optional[Budget] = None) -> List[int]:
    """The necessary characteristics of the decision, sorted by
    variable: instance literals in *every* sufficient reason.

    Monotonicity makes this one graph evaluation per literal (drop it
    from the full term; necessary iff the rest no longer triggers) —
    no enumeration.  This is a complete check, not an anytime one, so
    budget expiry raises :class:`~repro.limits.BudgetExceeded`.
    """
    graph = _build_oracle(ir, instance, forgotten=forgotten,
                          budget=budget)
    budget = resolve_budget(budget)
    full = set(graph.term)
    necessary: List[int] = []
    for lit in graph.term:
        if budget is not None:
            budget.tick(graph.size,
                        partial={"operation": "necessary-check",
                                 "literals_checked": len(necessary)})
        if not graph.evaluate(full - {lit}):
            necessary.append(lit)
    return necessary


# -- batched dataset checks (the Fig-28 template) ------------------------------
def check_sufficient_batch(ir: CircuitIR,
                           instances: Sequence[Mapping[int, bool]],
                           terms: Sequence[Sequence[int]], *,
                           forgotten: Iterable[int] = (),
                           budget: Optional[Budget] = None,
                           stats: Optional[Counter] = None
                           ) -> List[bool]:
    """Entry ``j``: is ``terms[j]`` a sufficient term for the decision
    on ``instances[j]``?  (Sufficiency only — minimality is the
    enumerator's job.)

    Two kernel passes for the whole dataset: ``evaluate_batch`` for
    the decisions, then one 0/1-weight ``wmc_batch`` where column
    ``j`` fixes term ``j``'s literals — the count of models of ``f``
    consistent with the term.  The term is sufficient iff that count
    is ``2^free`` (positive decision: the restriction is valid) or
    ``0`` (negative decision: the term implies ``¬f``).  Both
    decisions of a mixed dataset are answered by the same pass.

    A term containing a non-instance literal (flipped polarity *or*
    a variable the instance does not mention) is simply not
    sufficient — consistent with
    :func:`repro.explain.sufficient.is_sufficient_reason`.
    """
    from ..analyze.gate import gate_scope
    import numpy as np
    if len(instances) != len(terms):
        raise ValueError(f"{len(instances)} instances but "
                         f"{len(terms)} terms")
    if not instances:
        return []
    kernel = _gated_kernel(ir)
    mentioned = _mentioned_vars(kernel, forgotten)
    if len(mentioned) > _EXACT_COUNT_VARS:
        raise ValueError(
            f"{len(mentioned)} variables is beyond the float64-exact "
            "batched counting range; use the scalar enumerator")
    for j, inst in enumerate(instances):
        missing = [v for v in mentioned if v not in inst]
        if missing:
            raise ValueError(f"instance {j} does not assign circuit "
                             f"variables {missing}")
    size = len(instances)
    term_sets = [frozenset(int(lit) for lit in t) for t in terms]
    term_ok = np.ones(size, dtype=bool)
    free = np.full(size, len(mentioned), dtype=float)
    for j, (inst, term) in enumerate(zip(instances, term_sets)):
        for lit in term:
            value = inst.get(abs(lit))
            if value is None or bool(value) != (lit > 0):
                term_ok[j] = False
        free[j] -= sum(1 for v in mentioned
                       if v in term or -v in term)

    def run() -> Tuple[Any, Any]:
        if not mentioned:  # constant circuit: no batch columns exist
            decision = kernel.evaluate({})
            return (np.full(size, decision, dtype=bool),
                    np.full(size, 1.0 if decision else 0.0))
        assignment = {v: np.array([bool(inst[v]) for inst in instances])
                      for v in mentioned}
        decisions = kernel.evaluate_batch(assignment, stats)
        weights: Dict[int, Any] = {}
        for v in mentioned:
            pos = np.array([0.0 if -v in t else 1.0
                            for t in term_sets])
            neg = np.array([0.0 if v in t else 1.0
                            for t in term_sets])
            weights[v], weights[-v] = pos, neg
        # repair gate: a non-smooth artifact is auto-smoothed rather
        # than refused — the 0/1 gap factors stay exact either way
        with gate_scope("repair"):
            counts = kernel.wmc_batch(weights, stats)
        return decisions, counts

    budget = resolve_budget(budget)
    if budget is not None:
        with budget.scope():
            decisions, counts = run()
    else:
        decisions, counts = run()
    # 0/1 weights keep every intermediate an exact float64 integer
    # (<= 2^52), so equality against the target count is exact
    targets = np.where(decisions, np.exp2(free), 0.0)
    return [bool(ok) for ok in term_ok & (counts == targets)]


def check_necessary_batch(ir: CircuitIR,
                          instances: Sequence[Mapping[int, bool]],
                          literals: Sequence[int], *,
                          forgotten: Iterable[int] = (),
                          budget: Optional[Budget] = None,
                          stats: Optional[Counter] = None
                          ) -> List[bool]:
    """Entry ``j``: is ``literals[j]`` in *every* sufficient reason of
    the decision on ``instances[j]``?

    Reduces to the batched sufficiency check: a literal is necessary
    iff the full instance term *without* it stops being sufficient.
    """
    if len(instances) != len(literals):
        raise ValueError(f"{len(instances)} instances but "
                         f"{len(literals)} literals")
    if not instances:
        return []
    kernel = _gated_kernel(ir)
    mentioned = _mentioned_vars(kernel, forgotten)
    terms: List[List[int]] = []
    is_instance_lit: List[bool] = []
    for inst, literal in zip(instances, literals):
        literal = int(literal)
        value = inst.get(abs(literal))
        is_instance_lit.append(value is not None
                               and bool(value) == (literal > 0))
        terms.append([v if inst.get(v) else -v for v in mentioned
                      if v in inst and (v if inst[v] else -v) != literal])
    rest_sufficient = check_sufficient_batch(
        ir, instances, terms, forgotten=forgotten, budget=budget,
        stats=stats)
    return [ok and not rest
            for ok, rest in zip(is_instance_lit, rest_sufficient)]
