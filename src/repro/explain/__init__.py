"""Explaining decisions: sufficient reasons, reason circuits, bias,
counterfactuals (Section 5.1)."""

from .sufficient import (all_sufficient_reasons, decision_and_function,
                         is_sufficient_reason, minimal_sufficient_reason,
                         smallest_sufficient_reason)
from .reason_circuit import (reason_circuit, reason_circuit_ddnnf,
                             reason_implies, reason_prime_implicants)
from .bias import bias_from_reasons, classifier_is_biased, \
    decision_is_biased
from .counterfactual import (decision_sticks, decision_sticks_batch,
                             verify_even_if_because)
from .necessary import is_necessary, necessary_characteristics
from .implicants import (CountOracle, ReasonGraph,
                         check_necessary_batch, check_sufficient_batch,
                         count_oracle, iter_sufficient_reasons,
                         necessary_literals, reason_graph,
                         sufficient_reasons)

__all__ = ["all_sufficient_reasons", "decision_and_function",
           "is_sufficient_reason", "minimal_sufficient_reason",
           "smallest_sufficient_reason", "reason_circuit",
           "reason_circuit_ddnnf", "reason_implies",
           "reason_prime_implicants",
           "bias_from_reasons", "classifier_is_biased",
           "decision_is_biased", "decision_sticks",
           "decision_sticks_batch",
           "verify_even_if_because", "is_necessary",
           "necessary_characteristics",
           "ReasonGraph", "CountOracle", "reason_graph",
           "count_oracle", "iter_sufficient_reasons",
           "sufficient_reasons", "necessary_literals",
           "check_sufficient_batch", "check_necessary_batch"]
