"""Explaining decisions: sufficient reasons, reason circuits, bias,
counterfactuals (Section 5.1)."""

from .sufficient import (all_sufficient_reasons, decision_and_function,
                         is_sufficient_reason, minimal_sufficient_reason,
                         smallest_sufficient_reason)
from .reason_circuit import (reason_circuit, reason_circuit_ddnnf,
                             reason_implies, reason_prime_implicants)
from .bias import bias_from_reasons, classifier_is_biased, \
    decision_is_biased
from .counterfactual import (decision_sticks, decision_sticks_batch,
                             verify_even_if_because)
from .necessary import is_necessary, necessary_characteristics

__all__ = ["all_sufficient_reasons", "decision_and_function",
           "is_sufficient_reason", "minimal_sufficient_reason",
           "smallest_sufficient_reason", "reason_circuit",
           "reason_circuit_ddnnf", "reason_implies",
           "reason_prime_implicants",
           "bias_from_reasons", "classifier_is_biased",
           "decision_is_biased", "decision_sticks",
           "decision_sticks_batch",
           "verify_even_if_because", "is_necessary",
           "necessary_characteristics"]
