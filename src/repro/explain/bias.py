"""Decision and classifier bias w.r.t. protected features ([33], Fig 27).

Definitions (Section 5.1):

* a decision is *biased* iff it would differ had we only changed
  protected features of the instance;
* a classifier is *biased* iff it makes at least one biased decision —
  equivalently, iff its decision function depends on some protected
  feature.

The sufficient-reason characterisations (every reason touches a
protected feature ⇒ biased decision; some reason touches one ⇒ biased
classifier) are implemented too and tested for agreement.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from ..obdd.manager import ObddNode
from ..obdd.ops import restrict
from .sufficient import all_sufficient_reasons

__all__ = ["decision_is_biased", "classifier_is_biased",
           "bias_from_reasons"]


def decision_is_biased(node: ObddNode, instance: Mapping[int, bool],
                       protected: Sequence[int]) -> bool:
    """Would changing only protected features flip this decision?

    Checked directly: fix the unprotected features to their instance
    values; the decision is biased iff the residual function over the
    protected features is not constant.
    """
    protected = set(protected)
    fixed = {var: value for var, value in instance.items()
             if var not in protected}
    residual = restrict(node, fixed)
    return not residual.is_terminal


def classifier_is_biased(node: ObddNode,
                         protected: Sequence[int]) -> bool:
    """Does the classifier make *some* biased decision?  True iff the
    function depends on a protected feature."""
    for var in protected:
        if restrict(node, {var: True}) is not restrict(node, {var: False}):
            return True
    return False


def bias_from_reasons(node: ObddNode, instance: Mapping[int, bool],
                      protected: Sequence[int]) -> Dict[str, bool]:
    """The sufficient-reason bias analysis of Fig 27.

    Returns flags:

    * ``decision_biased`` — every sufficient reason contains a
      protected feature;
    * ``classifier_biased_witness`` — some sufficient reason contains a
      protected feature (if the decision itself is unbiased, this
      certifies that the *classifier* is biased on some other
      instance).
    """
    protected = set(protected)
    reasons = all_sufficient_reasons(node, instance)
    touching = [any(abs(lit) in protected for lit in reason)
                for reason in reasons]
    return {
        "decision_biased": bool(touching) and all(touching),
        "classifier_biased_witness": any(touching),
        "num_reasons": len(reasons),
        "num_protected_reasons": sum(touching),
    }
