"""Sufficient reasons (PI-explanations) of classifier decisions
([82, 33]; Section 5.1, Figs 26–28).

A *sufficient reason* for the decision on instance x is a minimal
subset of x's literals that triggers the decision regardless of the
other features — equivalently, a prime implicant of the decision
function (of its complement, for negative decisions) compatible with x.

All routines work on the OBDD of the decision function; sufficiency of
a term is a restrict-then-constant check, which canonicity makes exact.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, List, Mapping, Optional, Sequence, \
    Tuple

from ..obdd.manager import ObddNode
from ..obdd.ops import restrict

__all__ = ["decision_and_function", "is_sufficient_reason",
           "minimal_sufficient_reason", "smallest_sufficient_reason",
           "all_sufficient_reasons"]

Term = FrozenSet[int]


def decision_and_function(node: ObddNode,
                          instance: Mapping[int, bool]
                          ) -> Tuple[bool, ObddNode]:
    """The decision on ``instance`` and the function that *triggers* it
    (the classifier itself for positive decisions, its complement for
    negative ones — Fig 26's use of f̄)."""
    decision = node.evaluate(instance)
    trigger = node if decision else node.manager.negate(node)
    return decision, trigger


def _instance_term(instance: Mapping[int, bool],
                   variables: Sequence[int]) -> List[int]:
    return [v if instance[v] else -v for v in variables]


def _matches_instance(instance: Mapping[int, bool], lit: int) -> bool:
    """Is ``lit`` one of the instance's literals?

    False both for a flipped polarity and for a variable that the
    instance does not mention at all (the latter used to leak a raw
    ``KeyError`` out of every explain-layer term check).
    """
    value = instance.get(abs(lit))
    return value is not None and bool(value) == (lit > 0)


def is_sufficient_reason(node: ObddNode, instance: Mapping[int, bool],
                         term: Sequence[int],
                         check_minimal: bool = True) -> bool:
    """Is ``term`` (literals of the instance) a sufficient reason for
    the decision on the instance?"""
    _decision, trigger = decision_and_function(node, instance)
    term = list(term)
    for lit in term:
        if not _matches_instance(instance, lit):
            return False  # not an instance literal
    if not _term_triggers(trigger, term):
        return False
    if check_minimal:
        for lit in term:
            remaining = [other for other in term if other != lit]
            if _term_triggers(trigger, remaining):
                return False
    return True


def _term_triggers(trigger: ObddNode, term: Sequence[int]) -> bool:
    """Does fixing the term make the trigger function valid?"""
    fixed = {abs(lit): lit > 0 for lit in term}
    return restrict(trigger, fixed) is trigger.manager.one


def minimal_sufficient_reason(node: ObddNode,
                              instance: Mapping[int, bool],
                              prefer_order: Sequence[int] | None = None
                              ) -> List[int]:
    """One (subset-)minimal sufficient reason, by greedy shrinking.

    Linear in the number of features times OBDD size — this is the
    scalable routine used on the digit networks of Fig 28.
    ``prefer_order``: variables to try dropping first.
    """
    _decision, trigger = decision_and_function(node, instance)
    relevant = sorted(trigger.variables())
    term = _instance_term(instance, relevant)
    order = list(prefer_order) if prefer_order is not None else \
        [abs(lit) for lit in term]
    for var in order:
        lit = var if instance[var] else -var
        if lit not in term:
            continue
        candidate = [other for other in term if other != lit]
        if _term_triggers(trigger, candidate):
            term = candidate
    return sorted(term, key=abs)


def smallest_sufficient_reason(node: ObddNode,
                               instance: Mapping[int, bool],
                               max_size: int | None = None
                               ) -> Optional[List[int]]:
    """A minimum-cardinality sufficient reason, by iterative deepening
    over candidate sizes (exact; exponential in the answer size only).

    Returns None if no reason within ``max_size`` exists.
    """
    _decision, trigger = decision_and_function(node, instance)
    relevant = sorted(trigger.variables())
    full_term = _instance_term(instance, relevant)
    upper = len(minimal_sufficient_reason(node, instance))
    limit = upper if max_size is None else min(max_size, upper)
    for size in range(limit + 1):
        for combo in itertools.combinations(full_term, size):
            if _term_triggers(trigger, combo):
                return sorted(combo, key=abs)
    return None


def all_sufficient_reasons(node: ObddNode,
                           instance: Mapping[int, bool],
                           max_variables: int = 20) -> List[Term]:
    """All sufficient reasons, by branch-and-prune over instance
    literals.  Exponential in the worst case — intended for the
    figure-scale analyses (Figs 26–27)."""
    _decision, trigger = decision_and_function(node, instance)
    relevant = sorted(trigger.variables())
    if len(relevant) > max_variables:
        raise ValueError(
            f"{len(relevant)} variables is beyond the exact enumeration "
            "limit; use minimal/smallest_sufficient_reason instead")
    literals = _instance_term(instance, relevant)
    reasons: List[Term] = []
    # sweep candidate terms by increasing size: a term that triggers and
    # contains no previously-found reason is minimal, hence a reason
    for size in range(len(literals) + 1):
        for combo in itertools.combinations(literals, size):
            candidate = frozenset(combo)
            if any(existing <= candidate for existing in reasons):
                continue
            if _term_triggers(trigger, combo):
                reasons.append(candidate)
    return sorted(reasons,
                  key=lambda t: (len(t), sorted(t, key=abs)))
