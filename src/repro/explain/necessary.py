"""Necessary characteristics of a decision ([33]).

A characteristic (instance literal) is *necessary* when it appears in
every sufficient reason: no subset of the instance that avoids it can
trigger the decision.  The set of necessary characteristics is the
intersection of all sufficient reasons; by monotonicity of the reason
circuit it is computable with one circuit evaluation per literal — no
sufficient-reason enumeration.
"""

from __future__ import annotations

from typing import List, Mapping

from ..obdd.manager import ObddNode
from .reason_circuit import reason_circuit, reason_implies
from .sufficient import decision_and_function, _instance_term, \
    _matches_instance

__all__ = ["necessary_characteristics", "is_necessary"]


def is_necessary(node: ObddNode, instance: Mapping[int, bool],
                 literal: int) -> bool:
    """Is the instance literal part of every sufficient reason?

    Equivalent check on the monotone reason circuit: the *full*
    instance term with the literal removed must fail to trigger the
    decision (monotonicity makes the full term the easiest trigger).
    """
    if not _matches_instance(instance, literal):
        raise ValueError(
            f"literal {literal} is not part of the instance")
    circuit = reason_circuit(node, instance)
    _decision, trigger = decision_and_function(node, instance)
    term = [lit for lit in _instance_term(instance,
                                          sorted(trigger.variables()))
            if lit != literal]
    return not reason_implies(circuit, term)


def necessary_characteristics(node: ObddNode,
                              instance: Mapping[int, bool]
                              ) -> List[int]:
    """All necessary characteristics (sorted by variable).

    Computed with one reason circuit and one monotone evaluation per
    instance literal — no sufficient-reason enumeration.
    """
    circuit = reason_circuit(node, instance)
    _decision, trigger = decision_and_function(node, instance)
    term = _instance_term(instance, sorted(trigger.variables()))
    necessary = []
    for literal in term:
        remaining = [lit for lit in term if lit != literal]
        if not reason_implies(circuit, remaining):
            necessary.append(literal)
    return sorted(necessary, key=abs)
