"""Solving the prototypical problems of NP, PP, NP^PP and PP^PP by
knowledge compilation (Sections 2.1 and 3).

* SAT      — compile to DNNF (any Decision-DNNF is one); linear check.
* MAJSAT / #SAT / WMC — compile to d-DNNF; linear count.
* E-MAJSAT — compile to a *constrained* Decision-DNNF (Y variables
  decided above Z variables, via the compiler's priority option); then a
  single max/sum evaluation pass [61, 67].
* MAJMAJSAT — same constrained circuit; propagate exact histograms
  {z-count ↦ #y} through the circuit, which stays exact because
  decisions on Y partition the y-space and and-gates combine
  independent components.

Majority is *strict*: "majority of inputs" means more than half.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Sequence, Tuple

from ..logic.cnf import Cnf
from ..compile.dnnf_compiler import DnnfCompiler
from ..nnf.node import NnfNode
from ..nnf.queries import (is_satisfiable_dnnf, model_count,
                           weighted_model_count)

__all__ = ["solve_sat", "solve_count", "solve_majsat", "solve_wmc",
           "solve_emajsat", "solve_majmajsat", "emajsat_value",
           "majmajsat_histogram"]


def solve_sat(cnf: Cnf) -> bool:
    """SAT (NP) by DNNF compilation + linear satisfiability check."""
    root = DnnfCompiler().compile(cnf)
    return is_satisfiable_dnnf(root)


def solve_count(cnf: Cnf) -> int:
    """#SAT (the functional version of MAJSAT) by d-DNNF compilation."""
    root = DnnfCompiler().compile(cnf)
    return model_count(root, range(1, cnf.num_vars + 1))


def solve_majsat(cnf: Cnf) -> bool:
    """MAJSAT (PP): do more than half of the inputs satisfy Δ?"""
    return 2 * solve_count(cnf) > 2 ** cnf.num_vars


def solve_wmc(cnf: Cnf, weights: Mapping[int, float]) -> float:
    """Weighted model counting — the reduction target of Section 2.2."""
    root = DnnfCompiler().compile(cnf)
    return weighted_model_count(root, weights,
                                range(1, cnf.num_vars + 1))


# -- E-MAJSAT ---------------------------------------------------------------------

def emajsat_value(cnf: Cnf, y_vars: Sequence[int]
                  ) -> Tuple[int, Dict[int, bool]]:
    """max over y of the number of z with Δ(y, z) = 1, plus a witness y.

    Compiles with Y as branching priority, then evaluates the circuit
    with max at Y-decisions and sums at Z-decisions.
    """
    y_set = frozenset(y_vars)
    z_total = [v for v in range(1, cnf.num_vars + 1) if v not in y_set]
    compiler = DnnfCompiler(priority=sorted(y_set))
    root = compiler.compile(cnf)

    values: Dict[int, int] = {}
    choices: Dict[int, NnfNode] = {}
    order = root.topological()
    for node in order:
        if node.is_true:
            values[node.id] = 1
        elif node.is_false:
            values[node.id] = 0
        elif node.is_literal:
            values[node.id] = 1
        elif node.is_and:
            value = 1
            for child in node.children:
                value *= values[child.id]
            values[node.id] = value
        else:  # or-node: a decision; scale z-gaps, never y-gaps
            node_z = _z_vars(node, y_set)
            best, best_child, total = -1, None, 0
            decision_var = _decision_variable(node)
            for child in node.children:
                scaled = values[child.id] << len(node_z -
                                                 _z_vars(child, y_set))
                total += scaled
                if scaled > best:
                    best, best_child = scaled, child
            if decision_var in y_set:
                values[node.id] = best
                choices[node.id] = best_child
            else:
                if node.variables() & y_set:
                    raise ValueError(
                        "z-decision above undecided y variables; "
                        "the compiler priority must list all y vars")
                values[node.id] = total
    result = values[root.id]
    # free z variables double the count; free y variables do not change it
    free_z = len(set(z_total) - _z_vars(root, y_set))
    result <<= free_z
    witness = _traceback_y(root, choices, y_set)
    return result, witness


def _z_vars(node: NnfNode, y_set: FrozenSet[int]) -> FrozenSet[int]:
    return node.variables() - y_set


def _decision_variable(node: NnfNode) -> int:
    """The variable a decision or-gate branches on."""
    child = node.children[0]
    if child.is_literal:
        return abs(child.literal)
    if child.is_and and child.children and child.children[0].is_literal:
        return abs(child.children[0].literal)
    raise ValueError("or-gate is not a decision gate; compile with the "
                     "DnnfCompiler to use the E-MAJSAT evaluation")


def _traceback_y(root: NnfNode, choices: Dict[int, NnfNode],
                 y_set: FrozenSet[int]) -> Dict[int, bool]:
    witness: Dict[int, bool] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_literal:
            if abs(node.literal) in y_set:
                witness[abs(node.literal)] = node.literal > 0
        elif node.is_and:
            stack.extend(node.children)
        elif node.is_or:
            chosen = choices.get(node.id)
            if chosen is not None:
                stack.append(chosen)
            else:  # z-decision: all children agree on remaining y (none)
                stack.extend(node.children)
    return witness


def solve_emajsat(cnf: Cnf, y_vars: Sequence[int]) -> bool:
    """E-MAJSAT (NP^PP): is there y making the majority of z satisfy?"""
    count, _witness = emajsat_value(cnf, y_vars)
    num_z = cnf.num_vars - len(set(y_vars))
    return 2 * count > 2 ** num_z


# -- MAJMAJSAT ---------------------------------------------------------------------

def majmajsat_histogram(cnf: Cnf, y_vars: Sequence[int]
                        ) -> Dict[int, int]:
    """The exact histogram {z-count ↦ #y} by circuit propagation.

    Y-assignments with z-count 0 may be omitted from the result (their
    multiplicity is 2^|Y| minus the recorded mass).
    """
    y_set = frozenset(y_vars)
    compiler = DnnfCompiler(priority=sorted(y_set))
    root = compiler.compile(cnf)

    hists: Dict[int, Dict[int, int]] = {}
    for node in root.topological():
        if node.is_true:
            hists[node.id] = {1: 1}
        elif node.is_false:
            hists[node.id] = {}
        elif node.is_literal:
            hists[node.id] = {1: 1}
        elif node.is_and:
            hist = {1: 1}
            for child in node.children:
                hist = _hist_product(hist, hists[child.id])
            hists[node.id] = hist
        else:
            node_y = node.variables() & y_set
            node_z = node.variables() - y_set
            decision_var = _decision_variable(node)
            lifted = []
            for child in node.children:
                child_y = child.variables() & y_set
                child_z = child.variables() - y_set
                z_gap = len(node_z - child_z)
                y_gap = len(node_y - child_y)
                lifted.append({c << z_gap: m << y_gap
                               for c, m in hists[child.id].items()})
            if decision_var in y_set:
                merged: Dict[int, int] = {}
                for hist in lifted:
                    for c, m in hist.items():
                        merged[c] = merged.get(c, 0) + m
                hists[node.id] = merged
            else:
                if node_y:
                    raise ValueError(
                        "z-decision above undecided y variables; "
                        "the compiler priority must list all y vars")
                combined: Dict[int, int] = {}
                counts = [sum(c * m for c, m in hist.items())
                          for hist in lifted]
                total = sum(counts)
                if total:
                    combined[total] = 1
                hists[node.id] = combined
    # scale to the full variable ranges
    root_hist = hists[root.id]
    root_y = root.variables() & y_set
    root_z = root.variables() - y_set
    all_z = set(range(1, cnf.num_vars + 1)) - y_set
    z_gap = len(all_z) - len(root_z)
    y_gap = len(y_set) - len(root_y)
    return {c << z_gap: m << y_gap for c, m in root_hist.items() if c}


def _hist_product(a: Dict[int, int], b: Dict[int, int]) -> Dict[int, int]:
    result: Dict[int, int] = {}
    for ca, ma in a.items():
        for cb, mb in b.items():
            key = ca * cb
            result[key] = result.get(key, 0) + ma * mb
    return result


def solve_majmajsat(cnf: Cnf, y_vars: Sequence[int]) -> bool:
    """MAJMAJSAT (PP^PP): does the majority of y see a majority of z?"""
    histogram = majmajsat_histogram(cnf, y_vars)
    num_z = cnf.num_vars - len(set(y_vars))
    half_z = 2 ** num_z
    winners = sum(m for c, m in histogram.items() if 2 * c > half_z)
    return 2 * winners > 2 ** len(set(y_vars))
