"""Prototypical-problem solvers via knowledge compilation."""

from .prototypical import (emajsat_value, majmajsat_histogram,
                           solve_count, solve_emajsat, solve_majmajsat,
                           solve_majsat, solve_sat, solve_wmc)
from .sdd_solvers import (compile_constrained_sdd, emajsat_sdd,
                          majmajsat_histogram_sdd)
from .weighted import max_sum_evaluate, weighted_emajsat
from .brute import (count_brute, emajsat_brute, majmajsat_brute,
                    majsat_brute, sat_brute, wmc_brute)

__all__ = ["compile_constrained_sdd", "emajsat_sdd",
           "majmajsat_histogram_sdd", "max_sum_evaluate",
           "weighted_emajsat",
           "emajsat_value", "majmajsat_histogram", "solve_count",
           "solve_emajsat", "solve_majmajsat", "solve_majsat",
           "solve_sat", "solve_wmc", "count_brute", "emajsat_brute",
           "majmajsat_brute", "majsat_brute", "sat_brute", "wmc_brute"]
