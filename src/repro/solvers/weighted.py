"""Weighted E-MAJSAT: max over Y of the weighted model count over Z.

The functional problem behind D-MAP (Section 2): on a Bayesian-network
encoding, maximising over the indicator variables of the MAP set while
summing the rest computes max_y Pr(y, e).  Solved by compiling with Y
as branching priority and evaluating with max at Y-decisions and sums
at Z-decisions — the weighted analogue of
:func:`repro.solvers.prototypical.emajsat_value`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Sequence, Tuple

from ..logic.cnf import Cnf
from ..compile.dnnf_compiler import DnnfCompiler
from ..nnf.node import NnfNode
from .prototypical import _decision_variable

__all__ = ["weighted_emajsat", "max_sum_evaluate"]


def weighted_emajsat(cnf: Cnf, weights: Mapping[int, float],
                     y_vars: Sequence[int]
                     ) -> Tuple[float, Dict[int, bool]]:
    """(max over y of Σ_z W(y, z)·Δ(y, z), a maximising y)."""
    y_set = frozenset(y_vars)
    compiler = DnnfCompiler(priority=sorted(y_set))
    root = compiler.compile(cnf)
    value, witness = max_sum_evaluate(root, weights, y_set)
    # account for variables the circuit never mentions
    mentioned = root.variables()
    for var in range(1, cnf.num_vars + 1):
        if var in mentioned:
            continue
        if var in y_set:
            best = var if weights[var] >= weights[-var] else -var
            witness[abs(best)] = best > 0
            value *= max(weights[var], weights[-var])
        else:
            value *= weights[var] + weights[-var]
    witness = {v: val for v, val in witness.items() if v in y_set}
    return value, witness


def max_sum_evaluate(root: NnfNode, weights: Mapping[int, float],
                     y_set: FrozenSet[int]
                     ) -> Tuple[float, Dict[int, bool]]:
    """Evaluate a Y-constrained Decision-DNNF with max over Y and sums
    over the rest.  Returns the value and a maximising partial Y
    assignment (over the Y variables the circuit mentions)."""
    def gap_factor(var: int) -> float:
        if var in y_set:
            return max(weights[var], weights[-var])
        return weights[var] + weights[-var]

    values: Dict[int, float] = {}
    choices: Dict[int, NnfNode] = {}
    for node in root.topological():
        if node.is_true:
            values[node.id] = 1.0
        elif node.is_false:
            values[node.id] = 0.0
        elif node.is_literal:
            values[node.id] = weights[node.literal]
        elif node.is_and:
            value = 1.0
            for child in node.children:
                value *= values[child.id]
            values[node.id] = value
        else:
            node_vars = node.variables()
            decision_var = _decision_variable(node)
            scaled = []
            for child in node.children:
                value = values[child.id]
                for var in node_vars - child.variables():
                    value *= gap_factor(var)
                scaled.append(value)
            if decision_var in y_set:
                best_index = max(range(len(scaled)),
                                 key=lambda i: scaled[i])
                values[node.id] = scaled[best_index]
                choices[node.id] = node.children[best_index]
            else:
                if node_vars & y_set:
                    raise ValueError(
                        "z-decision above undecided y variables; "
                        "compile with the y variables as priority")
                values[node.id] = sum(scaled)

    witness: Dict[int, bool] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_literal:
            if abs(node.literal) in y_set:
                witness[abs(node.literal)] = node.literal > 0
        elif node.is_and:
            stack.extend(node.children)
        elif node.is_or:
            chosen = choices.get(node.id)
            if chosen is not None:
                # free y vars skipped by this choice take their best value
                for var in (node.variables() -
                            chosen.variables()) & y_set:
                    witness[var] = weights[var] >= weights[-var]
                stack.append(chosen)
            else:
                stack.extend(node.children)
    return values[root.id], witness
