"""E-MAJSAT and MAJMAJSAT on SDDs with *constrained vtrees* [61].

The paper (Section 3): if the vtree is constrained according to the
Y/Z split of the variables, E-MAJSAT and MAJMAJSAT can be solved in
time linear in the SDD.  With the Y variables on the vtree spine
(:func:`repro.vtree.construct.constrained_vtree`), every decision
node's primes are either purely over Y (spine) or purely over Z
(block), so a single pass with max/merge at Y-decisions and sum at
Z-decisions is exact.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence, Tuple

from ..logic.cnf import Cnf
from ..sdd.compiler import compile_cnf_sdd
from ..sdd.manager import SddManager
from ..sdd.node import SddNode
from ..vtree.construct import constrained_vtree
from ..vtree.vtree import Vtree

__all__ = ["compile_constrained_sdd", "emajsat_sdd",
           "majmajsat_histogram_sdd"]


def compile_constrained_sdd(cnf: Cnf, y_vars: Sequence[int]
                            ) -> Tuple[SddNode, SddManager]:
    """Compile a CNF into an SDD over a Y|Z-constrained vtree."""
    y_sorted = sorted(set(y_vars))
    z_sorted = [v for v in range(1, cnf.num_vars + 1)
                if v not in set(y_sorted)]
    if not z_sorted:
        raise ValueError("the Z block needs at least one variable")
    vtree = constrained_vtree(spine_vars=y_sorted, block_vars=z_sorted)
    manager = SddManager(vtree)
    return compile_cnf_sdd(cnf, manager=manager)


def emajsat_sdd(node: SddNode, y_vars: Sequence[int],
                num_vars: int | None = None) -> int:
    """max over y of #{z : node(y, z) = 1} on a constrained SDD.

    The node's manager vtree must be constrained with the Y variables
    on the spine (use :func:`compile_constrained_sdd`).
    """
    manager: SddManager = node.manager
    y_set = frozenset(y_vars)
    if num_vars is None:
        num_vars = max(manager.vtree.variables)
    all_z = frozenset(range(1, num_vars + 1)) - y_set

    def z_count(scope_vars: FrozenSet[int]) -> int:
        return len(scope_vars & all_z)

    cache: Dict[Tuple[int, int], int] = {}

    def value(n: SddNode, scope: Vtree) -> int:
        if n.is_false:
            return 0
        if n.is_true:
            return 1 << z_count(scope.variables)
        key = (n.id, scope.position)
        hit = cache.get(key)
        if hit is not None:
            return hit
        if n.is_literal:
            var = abs(n.literal)
            gap = scope.variables - {var}
            result = 1 << z_count(gap)
        else:
            v = n.vtree
            left_vars = v.left.variables
            if left_vars <= y_set:
                # spine decision: maximise over the prime (Y) choices;
                # a prime is over Y, so its contribution is just
                # satisfiability (our SDDs never hold a false prime)
                best = 0
                for prime, sub in n.elements:
                    if prime.is_false:
                        continue
                    best = max(best, value(sub, v.right))
                result = best
            elif left_vars & y_set:
                raise ValueError(
                    "vtree is not constrained for this Y/Z split")
            else:
                total = 0
                for prime, sub in n.elements:
                    total += value(prime, v.left) * value(sub, v.right)
                result = total
            result <<= z_count(scope.variables - v.variables)
        cache[key] = result
        return result

    if node.is_constant:
        return value(node, manager.vtree)
    if not manager.vtree.is_ancestor_of(node.vtree):
        raise ValueError("node does not belong to the manager vtree")
    return value(node, manager.vtree)


def majmajsat_histogram_sdd(node: SddNode, y_vars: Sequence[int],
                            num_vars: int | None = None
                            ) -> Dict[int, int]:
    """The {z-count ↦ #y} histogram on a constrained SDD.

    Y-assignments of count 0 are omitted (their mass is 2^|Y| minus the
    recorded total).
    """
    manager: SddManager = node.manager
    y_set = frozenset(y_vars)
    if num_vars is None:
        num_vars = max(manager.vtree.variables)
    all_vars = frozenset(range(1, num_vars + 1))
    all_z = all_vars - y_set

    cache: Dict[Tuple[int, int], Dict[int, int]] = {}

    def scale(hist: Dict[int, int], gap_vars: FrozenSet[int]
              ) -> Dict[int, int]:
        z_gap = len(gap_vars & all_z)
        y_gap = len(gap_vars & y_set)
        return {c << z_gap: m << y_gap for c, m in hist.items()}

    def hist(n: SddNode, scope: Vtree) -> Dict[int, int]:
        if n.is_false:
            return {}
        if n.is_true:
            inner = {1 << len(scope.variables & all_z):
                     1 << len(scope.variables & y_set)}
            return inner
        key = (n.id, scope.position)
        hit = cache.get(key)
        if hit is not None:
            return hit
        if n.is_literal:
            var = abs(n.literal)
            gap = scope.variables - {var}
            result = scale({1: 1}, gap)
        else:
            v = n.vtree
            left_vars = v.left.variables
            if left_vars <= y_set:
                merged: Dict[int, int] = {}
                for prime, sub in n.elements:
                    # each prime carves out a set of y values over
                    # vars(v.left); all of them share the sub histogram
                    y_multiplicity = _y_space(prime, v.left)
                    if y_multiplicity == 0:
                        continue
                    for c, m in hist(sub, v.right).items():
                        merged[c] = merged.get(c, 0) + m * y_multiplicity
                result = merged
            elif left_vars & y_set:
                raise ValueError(
                    "vtree is not constrained for this Y/Z split")
            else:
                total = 0
                for prime, sub in n.elements:
                    left = hist(prime, v.left)
                    right = hist(sub, v.right)
                    left_count = sum(c * m for c, m in left.items())
                    right_count = sum(c * m for c, m in right.items())
                    total += left_count * right_count
                result = {total: 1} if total else {}
            result = scale(result, scope.variables - v.variables)
        cache[key] = result
        return result

    def _y_space(prime: SddNode, scope: Vtree) -> int:
        """Number of y assignments over vars(scope) satisfying prime."""
        from ..sdd.queries import model_count
        return model_count(prime, scope)

    if not node.is_constant and \
            not manager.vtree.is_ancestor_of(node.vtree):
        raise ValueError("node does not belong to the manager vtree")
    result = hist(node, manager.vtree)
    return {c: m for c, m in result.items() if c}
