"""Brute-force oracles for the prototypical problems (testing only)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..logic.cnf import Cnf
from ..logic.formula import iter_assignments

__all__ = ["sat_brute", "count_brute", "majsat_brute", "wmc_brute",
           "emajsat_brute", "majmajsat_brute"]


def sat_brute(cnf: Cnf) -> bool:
    return any(True for _ in cnf.models())


def count_brute(cnf: Cnf) -> int:
    return cnf.model_count()


def majsat_brute(cnf: Cnf) -> bool:
    """Strictly more than half of the inputs satisfy the formula."""
    return 2 * count_brute(cnf) > 2 ** cnf.num_vars


def wmc_brute(cnf: Cnf, weights: Mapping[int, float]) -> float:
    total = 0.0
    for model in cnf.models():
        weight = 1.0
        for var, value in model.items():
            weight *= weights[var if value else -var]
        total += weight
    return total


def _split_vars(cnf: Cnf, y_vars: Sequence[int]
                ) -> Tuple[List[int], List[int]]:
    y = sorted(set(y_vars))
    z = [v for v in range(1, cnf.num_vars + 1) if v not in set(y)]
    return y, z


def emajsat_brute(cnf: Cnf, y_vars: Sequence[int]
                  ) -> Tuple[int, Dict[int, bool]]:
    """(max over y of #z satisfying, a maximising y)."""
    y, z = _split_vars(cnf, y_vars)
    best_count, best_y = -1, {}
    for y_assignment in iter_assignments(y):
        count = 0
        for z_assignment in iter_assignments(z):
            if cnf.evaluate({**y_assignment, **z_assignment}):
                count += 1
        if count > best_count:
            best_count, best_y = count, dict(y_assignment)
    return best_count, best_y


def majmajsat_brute(cnf: Cnf, y_vars: Sequence[int]) -> Dict[int, int]:
    """Histogram {z-count: number of y assignments with that count}."""
    y, z = _split_vars(cnf, y_vars)
    histogram: Dict[int, int] = {}
    for y_assignment in iter_assignments(y):
        count = 0
        for z_assignment in iter_assignments(z):
            if cnf.evaluate({**y_assignment, **z_assignment}):
                count += 1
        histogram[count] = histogram.get(count, 0) + 1
    return histogram
