"""Probabilistic circuits: the AC / SPN / PSDD family (Section 4)."""

from .circuit import ProbCircuit, ProbNode
from .convert import psdd_to_circuit
from .learnspn import learn_spn

__all__ = ["ProbCircuit", "ProbNode", "psdd_to_circuit", "learn_spn"]
