"""Converting PSDDs into the generic probabilistic-circuit form.

A PSDD is the special case of a probabilistic circuit whose sums are
deterministic (and structured): literals become indicator leaves,
Bernoullis become deterministic sums over the two indicators, and
decision elements become weighted products.
"""

from __future__ import annotations

from typing import Dict

from ..psdd.psdd import PsddNode
from .circuit import ProbCircuit, ProbNode

__all__ = ["psdd_to_circuit"]


def psdd_to_circuit(root: PsddNode) -> ProbCircuit:
    """An equivalent :class:`ProbCircuit` (same distribution)."""
    circuit = ProbCircuit()
    cache: Dict[int, ProbNode] = {}
    for node in root.descendants():
        if node.is_literal:
            theta = 1.0 if node.literal > 0 else 0.0
            cache[node.id] = circuit.leaf(abs(node.literal), theta)
        elif node.is_bernoulli:
            var = abs(node.literal)
            positive = circuit.leaf(var, 1.0)
            negative = circuit.leaf(var, 0.0)
            cache[node.id] = circuit.sum(
                [positive, negative], [node.theta, 1.0 - node.theta])
        else:
            children = []
            weights = []
            for prime, sub, theta in node.elements:
                children.append(circuit.product(
                    [cache[prime.id], cache[sub.id]]))
                weights.append(theta)
            live = [(c, w) for c, w in zip(children, weights)]
            cache[node.id] = circuit.sum([c for c, _w in live],
                                         [w for _c, w in live])
    circuit.set_root(cache[root.id])
    return circuit
