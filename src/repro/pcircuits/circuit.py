"""Probabilistic circuits: the AC / SPN / PSDD family (Section 4).

The paper situates PSDDs among probabilistic circuits: ACs (Arithmetic
Circuits [25]) rest on decomposability + determinism, SPNs (Sum-Product
Networks [68]) on decomposability only, PSDDs on the stronger SDD
properties; [13, 76] study their relative tractability/succinctness.

This module provides the common representation: sum nodes (weighted),
product nodes and Bernoulli leaves over binary variables.  Queries
document which structural property they need:

* EVI / MAR — decomposability + smoothness (enforced here);
* exact MPE — additionally *determinism*; on a non-deterministic SPN
  the max-product pass maximises over induced trees, yielding a lower
  bound and possibly suboptimal assignments (the ABL3 benchmark
  demonstrates the gap).
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, \
    Tuple

__all__ = ["ProbNode", "ProbCircuit"]


class ProbNode:
    """A node of a probabilistic circuit; create via the factory
    methods on :class:`ProbCircuit`."""

    LEAF = "leaf"
    SUM = "sum"
    PRODUCT = "product"

    __slots__ = ("id", "kind", "var", "theta", "children", "weights",
                 "scope")

    def __init__(self, node_id: int, kind: str, var: int = 0,
                 theta: float = 0.5,
                 children: Optional[List["ProbNode"]] = None,
                 weights: Optional[List[float]] = None):
        self.id = node_id
        self.kind = kind
        self.var = var
        self.theta = theta
        self.children = children or []
        self.weights = weights or []
        if kind == ProbNode.LEAF:
            self.scope: FrozenSet[int] = frozenset((var,))
        else:
            scope: FrozenSet[int] = frozenset()
            for child in self.children:
                scope |= child.scope
            self.scope = scope

    @property
    def is_leaf(self) -> bool:
        return self.kind == ProbNode.LEAF

    @property
    def is_sum(self) -> bool:
        return self.kind == ProbNode.SUM

    @property
    def is_product(self) -> bool:
        return self.kind == ProbNode.PRODUCT

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"ProbNode(X{self.var} ~ Bern({self.theta:.3f}))"
        return f"ProbNode({self.kind}, {len(self.children)} children)"


class ProbCircuit:
    """A probabilistic circuit with a designated root.

    Structural invariants enforced at construction: sum children share
    the root scope fragment (smoothness) and have normalized weights;
    product children have disjoint scopes (decomposability).
    Determinism is *not* enforced — it is the distinguishing property
    (check with :meth:`is_deterministic`).
    """

    def __init__(self):
        self._next_id = 0
        self.root: Optional[ProbNode] = None

    def _fresh(self, **kwargs) -> ProbNode:
        node = ProbNode(self._next_id, **kwargs)
        self._next_id += 1
        return node

    # -- factories ----------------------------------------------------------
    def leaf(self, var: int, theta: float) -> ProbNode:
        if not 0.0 <= theta <= 1.0:
            raise ValueError("theta must be a probability")
        return self._fresh(kind=ProbNode.LEAF, var=var, theta=theta)

    def product(self, children: Sequence[ProbNode]) -> ProbNode:
        seen: FrozenSet[int] = frozenset()
        for child in children:
            if seen & child.scope:
                raise ValueError("product children must have disjoint "
                                 "scopes (decomposability)")
            seen |= child.scope
        return self._fresh(kind=ProbNode.PRODUCT, children=list(children))

    def sum(self, children: Sequence[ProbNode],
            weights: Sequence[float]) -> ProbNode:
        if len(children) != len(weights):
            raise ValueError("one weight per child")
        if not children:
            raise ValueError("sum needs children")
        scope = children[0].scope
        for child in children[1:]:
            if child.scope != scope:
                raise ValueError("sum children must share their scope "
                                 "(smoothness)")
        total = sum(weights)
        if total <= 0:
            raise ValueError("weights must have positive mass")
        return self._fresh(kind=ProbNode.SUM, children=list(children),
                           weights=[w / total for w in weights])

    def set_root(self, node: ProbNode) -> "ProbCircuit":
        self.root = node
        return self

    # -- structure ------------------------------------------------------------
    def nodes(self) -> List[ProbNode]:
        assert self.root is not None
        order: List[ProbNode] = []
        seen: set[int] = set()
        stack: List[Tuple[ProbNode, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if node.id in seen:
                continue
            seen.add(node.id)
            stack.append((node, True))
            for child in node.children:
                if child.id not in seen:
                    stack.append((child, False))
        return order

    def size(self) -> int:
        return sum(len(n.children) for n in self.nodes())

    def variables(self) -> List[int]:
        assert self.root is not None
        return sorted(self.root.scope)

    # -- queries --------------------------------------------------------------
    def probability(self, assignment: Mapping[int, bool]) -> float:
        """EVI: the probability of a complete assignment."""
        return self._evaluate(assignment, marginalize_missing=False)

    def marginal(self, evidence: Mapping[int, bool]) -> float:
        """MAR: Pr(evidence); missing variables are summed out."""
        return self._evaluate(evidence, marginalize_missing=True)

    def _evaluate(self, evidence: Mapping[int, bool],
                  marginalize_missing: bool) -> float:
        values: Dict[int, float] = {}
        for node in self.nodes():
            if node.is_leaf:
                if node.var in evidence:
                    values[node.id] = node.theta if evidence[node.var] \
                        else 1.0 - node.theta
                elif marginalize_missing:
                    values[node.id] = 1.0
                else:
                    raise KeyError(f"variable {node.var} unassigned")
            elif node.is_product:
                value = 1.0
                for child in node.children:
                    value *= values[child.id]
                values[node.id] = value
            else:
                values[node.id] = sum(
                    w * values[c.id]
                    for w, c in zip(node.weights, node.children))
        assert self.root is not None
        return values[self.root.id]

    def max_product(self, evidence: Mapping[int, bool] | None = None
                    ) -> Tuple[float, Dict[int, bool]]:
        """The max-product (MPE) pass with traceback.

        Exact MPE when the circuit is deterministic.  On a
        non-deterministic SPN the pass maximises over single induced
        trees, so the returned value only *lower-bounds* the true
        maximum probability and the decoded assignment can be
        suboptimal — the [13] tractability gap the ABL3 benchmark
        measures (MPE is NP-hard for SPNs, linear for ACs/PSDDs).
        """
        evidence = dict(evidence or {})
        values: Dict[int, float] = {}
        best_child: Dict[int, int] = {}
        for node in self.nodes():
            if node.is_leaf:
                if node.var in evidence:
                    values[node.id] = node.theta if evidence[node.var] \
                        else 1.0 - node.theta
                else:
                    values[node.id] = max(node.theta, 1.0 - node.theta)
            elif node.is_product:
                value = 1.0
                for child in node.children:
                    value *= values[child.id]
                values[node.id] = value
            else:
                scored = [w * values[c.id]
                          for w, c in zip(node.weights, node.children)]
                index = max(range(len(scored)), key=lambda i: scored[i])
                best_child[node.id] = index
                values[node.id] = scored[index]
        assignment: Dict[int, bool] = dict(evidence)
        assert self.root is not None
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                if node.var not in assignment:
                    assignment[node.var] = node.theta >= 0.5
            elif node.is_product:
                stack.extend(node.children)
            else:
                stack.append(node.children[best_child[node.id]])
        return values[self.root.id], assignment

    def sample(self, rng: random.Random | None = None
               ) -> Dict[int, bool]:
        rng = rng or random.Random()
        assignment: Dict[int, bool] = {}
        assert self.root is not None
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assignment[node.var] = rng.random() < node.theta
            elif node.is_product:
                stack.extend(node.children)
            else:
                pick = rng.random()
                cumulative = 0.0
                chosen = node.children[-1]
                for child, weight in zip(node.children, node.weights):
                    cumulative += weight
                    if pick < cumulative:
                        chosen = child
                        break
                stack.append(chosen)
        return assignment

    # -- properties ---------------------------------------------------------------
    def is_deterministic(self, max_vars: int = 20) -> bool:
        """Semantic determinism: under every complete assignment, at
        most one child of each sum node is non-zero.  Exponential exact
        check for verification purposes."""
        variables = self.variables()
        if len(variables) > max_vars:
            raise ValueError("too many variables for the exact check")
        order = self.nodes()
        for bits in itertools.product((False, True),
                                      repeat=len(variables)):
            assignment = dict(zip(variables, bits))
            values: Dict[int, float] = {}
            for node in order:
                if node.is_leaf:
                    values[node.id] = node.theta if \
                        assignment[node.var] else 1.0 - node.theta
                elif node.is_product:
                    value = 1.0
                    for child in node.children:
                        value *= values[child.id]
                    values[node.id] = value
                else:
                    live = sum(1 for c in node.children
                               if values[c.id] > 1e-12)
                    if live > 1:
                        return False
                    values[node.id] = sum(
                        w * values[c.id]
                        for w, c in zip(node.weights, node.children))
        return True
