"""LearnSPN-style structure learning for sum-product networks [68].

The classic recursive recipe on binary data:

* one variable left → a Bernoulli leaf (Laplace-smoothed);
* variables split into (approximately) independent groups → a product
  node over the groups;
* otherwise → cluster the rows into two groups and emit a sum node
  weighted by the cluster sizes.

Independence is tested with pairwise mutual information; clustering is
a deterministic two-means on Hamming distance.  The result is a
decomposable, smooth — but generally *non-deterministic* — circuit,
exactly the SPN class the paper contrasts with ACs and PSDDs.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Mapping, Sequence, Tuple

from .circuit import ProbCircuit, ProbNode

__all__ = ["learn_spn"]

Row = Mapping[int, bool]


def learn_spn(instances: Sequence[Row], variables: Sequence[int],
              min_rows: int = 8, mi_threshold: float = 0.02,
              alpha: float = 1.0, rng: random.Random | None = None,
              max_depth: int = 20) -> ProbCircuit:
    """Learn an SPN from complete binary data."""
    if not instances:
        raise ValueError("need data")
    rng = rng or random.Random(0)
    circuit = ProbCircuit()

    def leaf(var: int, rows: Sequence[Row]) -> ProbNode:
        positives = sum(1 for row in rows if row[var])
        theta = (positives + alpha) / (len(rows) + 2 * alpha)
        return circuit.leaf(var, theta)

    def build(rows: Sequence[Row], scope: List[int],
              depth: int) -> ProbNode:
        if len(scope) == 1:
            return leaf(scope[0], rows)
        if len(rows) < min_rows or depth >= max_depth:
            # factorize fully (naive product of leaves)
            return circuit.product([leaf(v, rows) for v in scope])
        groups = _independent_groups(rows, scope, mi_threshold)
        if len(groups) > 1:
            return circuit.product(
                [build(rows, group, depth + 1) for group in groups])
        left, right = _two_means(rows, scope, rng)
        if not left or not right:
            return circuit.product([leaf(v, rows) for v in scope])
        children = [build(left, scope, depth + 1),
                    build(right, scope, depth + 1)]
        return circuit.sum(children, [len(left), len(right)])

    root = build(list(instances), sorted(variables), 0)
    return circuit.set_root(root)


def _mutual_information(rows: Sequence[Row], a: int, b: int) -> float:
    n = len(rows)
    joint: Dict[Tuple[bool, bool], int] = {}
    for row in rows:
        key = (row[a], row[b])
        joint[key] = joint.get(key, 0) + 1
    pa = sum(1 for row in rows if row[a]) / n
    pb = sum(1 for row in rows if row[b]) / n
    mi = 0.0
    for (va, vb), count in joint.items():
        pab = count / n
        marginal = (pa if va else 1 - pa) * (pb if vb else 1 - pb)
        if pab > 0 and marginal > 0:
            mi += pab * math.log(pab / marginal)
    return mi


def _independent_groups(rows: Sequence[Row], scope: List[int],
                        threshold: float) -> List[List[int]]:
    """Connected components of the |MI| > threshold dependency graph."""
    parent = {v: v for v in scope}

    def find(v: int) -> int:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for i, a in enumerate(scope):
        for b in scope[i + 1:]:
            if _mutual_information(rows, a, b) > threshold:
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)
    groups: Dict[int, List[int]] = {}
    for v in scope:
        groups.setdefault(find(v), []).append(v)
    return [sorted(group) for group in
            sorted(groups.values(), key=lambda g: g[0])]


def _two_means(rows: Sequence[Row], scope: List[int],
               rng: random.Random
               ) -> Tuple[List[Row], List[Row]]:
    """Deterministic-ish 2-means on Hamming distance over the scope."""
    if len(rows) < 2:
        return list(rows), []
    # seed with the two most distant rows (first row vs its farthest)
    first = rows[0]
    farthest = max(rows, key=lambda row: sum(
        1 for v in scope if row[v] != first[v]))
    if all(farthest[v] == first[v] for v in scope):
        return list(rows), []  # no variation on this scope
    centres = [dict(first), dict(farthest)]
    assignment = [0] * len(rows)
    for _ in range(10):
        changed = False
        buckets: List[List[Row]] = [[], []]
        for index, row in enumerate(rows):
            distances = [sum(1 for v in scope if row[v] != centre[v])
                         for centre in centres]
            choice = 0 if distances[0] <= distances[1] else 1
            if choice != assignment[index]:
                changed = True
                assignment[index] = choice
            buckets[choice].append(row)
        for side in (0, 1):
            if buckets[side]:
                centres[side] = {
                    v: (sum(1 for row in buckets[side] if row[v])
                        * 2 > len(buckets[side]))
                    for v in scope}
        if not changed:
            break
    return buckets[0], buckets[1]
