"""Lightweight instrumentation primitives for the hot paths.

The engines (SAT counter, Decision-DNNF compiler, SDD apply, circuit
kernels) expose *operation counters* — propagations, decisions, cache
hits, nodes visited — next to wall time, because wall time alone cannot
tell an algorithmic win from interpreter noise.  The primitives here
are deliberately tiny: a :class:`Counter` is a thin wrapper over a
plain dict with ``incr``, and a :class:`Timer` is a ``perf_counter``
context manager.  Hot loops touch them only at coarse boundaries
(per propagation call, per decision), never per literal.

``benchmarks/run_all.py`` serialises both into ``BENCH_*.json``.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, Optional, Tuple

__all__ = ["Counter", "Timer", "format_stats"]


class Counter:
    """A named bundle of integer operation counters.

    >>> stats = Counter()
    >>> stats.incr("propagations")
    >>> stats.incr("propagations", 3)
    >>> stats["propagations"]
    4
    """

    __slots__ = ("_counts",)

    def __init__(self, **initial: int):
        self._counts: Dict[str, int] = dict(initial)

    def incr(self, name: str, amount: int = 1) -> None:
        counts = self._counts
        counts[name] = counts.get(name, 0) + amount

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"Counter({inner})"

    def as_dict(self) -> Dict[str, int]:
        """A plain-dict snapshot (sorted keys, JSON-friendly)."""
        return dict(sorted(self._counts.items()))

    def merge(self, other: "Counter") -> None:
        """Add every count of ``other`` into this bundle."""
        for name, value in other:
            self.incr(name, value)

    def clear(self) -> None:
        self._counts.clear()


class Timer:
    """Wall-clock context manager built on ``time.perf_counter``.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True

    A timer can be re-entered; ``elapsed`` accumulates across uses, so
    one timer can meter a hot call site inside a loop.
    """

    __slots__ = ("elapsed", "_started")

    def __init__(self):
        self.elapsed = 0.0
        self._started: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._started is not None:
            self.elapsed += time.perf_counter() - self._started
            self._started = None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started = None


def format_stats(stats: Counter, prefix: str = "c ") -> str:
    """Render counters as DIMACS-style comment lines (CLI output)."""
    return "\n".join(f"{prefix}{name} {value}" for name, value in stats)
