"""Performance observability: timers, operation counters, benchmarks.

The perf layer has two halves:

* :mod:`repro.perf.instrument` — :class:`Counter` / :class:`Timer`
  primitives that the engines update on their hot paths (propagations,
  decisions, cache hits, nodes visited);
* ``benchmarks/run_all.py`` — the driver that runs every figure
  benchmark plus the engine speed scenarios and emits a machine
  readable ``BENCH_<timestamp>.json``, comparing against the previous
  baseline to flag regressions.

See ``docs/performance.md`` for the full story.
"""

from .instrument import Counter, Timer, format_stats

__all__ = ["Counter", "Timer", "format_stats"]
