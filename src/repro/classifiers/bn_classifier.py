"""Bayesian network classifiers and their compilation to decision
graphs ([82, 83]; Fig 23's middle box).

A BN classifier is a Bayesian network with a designated class variable
and feature variables; an instance is classified positive when
Pr(class | features) passes a threshold.  For networks of figure scale
we compile the induced decision function into an OBDD by tabulating it
(the general-network algorithm of [83] exists to avoid exactly this
exponential tabulation; the input-output behaviour is identical).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Mapping, Sequence

from ..bayesnet.network import BayesianNetwork
from ..bayesnet.queries import mar
from ..obdd.manager import ObddManager, ObddNode

__all__ = ["BnClassifier", "compile_decision_function"]


class BnClassifier:
    """A Bayesian network classifier with binary features.

    All feature variables and the class variable must be binary.
    """

    def __init__(self, network: BayesianNetwork, class_var: str,
                 feature_vars: Sequence[str], threshold: float = 0.5):
        for name in [class_var, *feature_vars]:
            if network.cardinality(name) != 2:
                raise ValueError(f"{name!r} must be binary")
        self.network = network
        self.class_var = class_var
        self.feature_vars = list(feature_vars)
        self.threshold = threshold
        # integer variable per feature, in order, for the circuit view
        self.feature_index: Dict[str, int] = {
            name: i + 1 for i, name in enumerate(self.feature_vars)}

    def posterior(self, instance: Mapping[str, int]) -> float:
        evidence = {name: instance[name] for name in self.feature_vars}
        return mar(self.network, {self.class_var: 1}, evidence)

    def decide(self, instance: Mapping[str, int]) -> bool:
        return self.posterior(instance) >= self.threshold

    def posterior_batch(self, instances: Sequence[Mapping[str, int]]):
        """Pr(class = 1 | x) for N instances — compile once, query many.

        The network is compiled into an arithmetic circuit on first
        call (a :class:`~repro.wmc.pipeline.WmcPipeline`); each batch
        then costs two vectorized WMC passes (joint and evidence)
        instead of N variable eliminations.
        """
        if getattr(self, "_pipeline", None) is None:
            from ..wmc.pipeline import WmcPipeline
            self._pipeline = WmcPipeline(self.network)
        evidence = [{name: inst[name] for name in self.feature_vars}
                    for inst in instances]
        joint = [{**e, self.class_var: 1} for e in evidence]
        numerators = self._pipeline.probability_of_evidence_batch(joint)
        denominators = \
            self._pipeline.probability_of_evidence_batch(evidence)
        if (denominators == 0.0).any():
            raise ZeroDivisionError("an instance has probability zero")
        return numerators / denominators

    def decide_batch(self, instances: Sequence[Mapping[str, int]]):
        """Decisions for N instances as a length-N bool array."""
        return self.posterior_batch(instances) >= self.threshold

    def accuracy(self, instances: Sequence[Mapping[str, int]],
                 labels: Sequence[bool]) -> float:
        """Batched scoring against Boolean labels."""
        import numpy as np
        hits = self.decide_batch(instances) == \
            np.asarray(labels, dtype=bool)
        return float(hits.sum()) / len(labels)

    def decision_function(self) -> Callable[[Mapping[int, bool]], bool]:
        """The induced Boolean function over integer feature variables."""
        def func(assignment: Mapping[int, bool]) -> bool:
            instance = {name: int(assignment[self.feature_index[name]])
                        for name in self.feature_vars}
            return self.decide(instance)
        return func

    def compile(self, manager: ObddManager | None = None) -> ObddNode:
        """The OBDD with the classifier's input-output behaviour."""
        variables = [self.feature_index[name]
                     for name in self.feature_vars]
        if manager is None:
            manager = ObddManager(variables)
        return compile_decision_function(self.decision_function(),
                                         variables, manager)


def compile_decision_function(func: Callable[[Mapping[int, bool]], bool],
                              variables: Sequence[int],
                              manager: ObddManager) -> ObddNode:
    """Tabulate a Boolean function and build its (canonical) OBDD.

    Exponential in ``len(variables)`` — meant for oracle functions of
    modest arity; threshold-structured classifiers have dedicated
    compilers in this package.
    """
    variables = sorted(variables, key=manager.level)
    n = len(variables)
    if n > 22:
        raise ValueError("refusing to tabulate more than 22 variables")
    # decisions indexed by the bits of the assignment, msb = variables[0]
    table: List[ObddNode] = []
    for bits in itertools.product((False, True), repeat=n):
        assignment = dict(zip(variables, bits))
        table.append(manager.terminal(bool(func(assignment))))
    for level in range(n - 1, -1, -1):
        table = [manager.make(variables[level], table[2 * i],
                              table[2 * i + 1])
                 for i in range(len(table) // 2)]
    return table[0]
