"""Compiling linear threshold functions into OBDDs.

The workhorse of Section 5 compilation: naive Bayes decisions, neurons
of binarized networks and majority gates of random forests are all
threshold functions ``Σᵢ wᵢ·xᵢ ≥ t``.  The compilation is the classic
top-down expansion with memoisation on (index, partial sum); the OBDD
unique table then merges equivalent sub-diagrams, recovering the
interval-merging of the Chan–Darwiche ODD algorithm [9].

Two variants:

* :func:`threshold_obdd` — inputs are OBDD *variables*;
* :func:`threshold_of_functions` — inputs are arbitrary OBDD-represented
  functions (used to stack layers of a network, [15, 80]).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..obdd.manager import ObddManager, ObddNode

__all__ = ["threshold_obdd", "threshold_of_functions"]


def threshold_obdd(manager: ObddManager, variables: Sequence[int],
                   weights: Sequence[float], threshold: float
                   ) -> ObddNode:
    """The OBDD of ``Σ weights[i]·x_i ≥ threshold`` over 0/1 inputs.

    Variables are tested in manager order (important for sharing).
    """
    if len(variables) != len(weights):
        raise ValueError("one weight per variable required")
    order = sorted(zip(variables, weights),
                   key=lambda vw: manager.level(vw[0]))
    ordered_vars = [v for v, _w in order]
    ordered_weights = [w for _v, w in order]
    # remaining positive/negative mass allows early cut-offs
    suffix_max = [0.0] * (len(order) + 1)
    suffix_min = [0.0] * (len(order) + 1)
    for i in range(len(order) - 1, -1, -1):
        w = ordered_weights[i]
        suffix_max[i] = suffix_max[i + 1] + max(w, 0.0)
        suffix_min[i] = suffix_min[i + 1] + min(w, 0.0)

    cache: Dict[Tuple[int, float], ObddNode] = {}

    def build(i: int, acc: float) -> ObddNode:
        if acc + suffix_min[i] >= threshold:
            return manager.one
        if acc + suffix_max[i] < threshold:
            return manager.zero
        key = (i, acc)
        hit = cache.get(key)
        if hit is not None:
            return hit
        low = build(i + 1, acc)
        high = build(i + 1, acc + ordered_weights[i])
        node = manager.make(ordered_vars[i], low, high)
        cache[key] = node
        return node

    return build(0, 0.0)


def threshold_of_functions(manager: ObddManager,
                           inputs: Sequence[ObddNode],
                           weights: Sequence[float], threshold: float
                           ) -> ObddNode:
    """The OBDD of ``Σ weights[i]·g_i(x) ≥ threshold`` where each g_i is
    itself an OBDD.  Built with ITE over the input functions."""
    if len(inputs) != len(weights):
        raise ValueError("one weight per input required")
    suffix_max = [0.0] * (len(inputs) + 1)
    suffix_min = [0.0] * (len(inputs) + 1)
    for i in range(len(inputs) - 1, -1, -1):
        w = weights[i]
        suffix_max[i] = suffix_max[i + 1] + max(w, 0.0)
        suffix_min[i] = suffix_min[i + 1] + min(w, 0.0)

    cache: Dict[Tuple[int, float], ObddNode] = {}

    def build(i: int, acc: float) -> ObddNode:
        if acc + suffix_min[i] >= threshold:
            return manager.one
        if acc + suffix_max[i] < threshold:
            return manager.zero
        key = (i, acc)
        hit = cache.get(key)
        if hit is not None:
            return hit
        low = build(i + 1, acc)
        high = build(i + 1, acc + weights[i])
        node = manager.ite(inputs[i], high, low)
        cache[key] = node
        return node

    return build(0, 0.0)
