"""Binary decision trees (CART-style) over Boolean features.

Decision trees are the base learners of random forests (Section 5: "we
first encode each decision tree into a Boolean formula, which is
straightforward").  :meth:`DecisionTree.to_formula` is that encoding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from ..logic.formula import And, FALSE, Formula, Lit, Or, TRUE

__all__ = ["DecisionTree"]


@dataclass
class _Node:
    feature: Optional[int] = None
    low: Optional["_Node"] = None
    high: Optional["_Node"] = None
    label: Optional[bool] = None

    @property
    def is_leaf(self) -> bool:
        return self.label is not None


class DecisionTree:
    """A learned binary decision tree.

    Use :meth:`fit` to grow one by information gain.
    """

    def __init__(self, root: _Node, features: Sequence[int]):
        self._root = root
        self.features = list(features)

    # -- learning ----------------------------------------------------------------
    @classmethod
    def fit(cls, instances: Sequence[Mapping[int, bool]],
            labels: Sequence[bool], max_depth: int = 8,
            min_samples: int = 1,
            feature_pool: Sequence[int] | None = None) -> "DecisionTree":
        """Grow a tree greedily by information gain."""
        if len(instances) != len(labels) or not instances:
            raise ValueError("need equally many instances and labels")
        features = sorted(feature_pool if feature_pool is not None
                          else instances[0])
        root = cls._grow(list(zip(instances, labels)), features,
                         max_depth, min_samples)
        return cls(root, features)

    @staticmethod
    def _grow(data, features, depth, min_samples) -> _Node:
        labels = [y for _x, y in data]
        positives = sum(labels)
        if positives == 0:
            return _Node(label=False)
        if positives == len(labels):
            return _Node(label=True)
        majority = positives * 2 >= len(labels)
        if depth == 0 or len(data) < 2 * min_samples:
            return _Node(label=majority)
        best_feature, best_gain = None, 1e-12
        for feature in features:
            gain = DecisionTree._gain(data, feature)
            if gain > best_gain:
                best_feature, best_gain = feature, gain
        if best_feature is None:
            return _Node(label=majority)
        low_data = [(x, y) for x, y in data if not x[best_feature]]
        high_data = [(x, y) for x, y in data if x[best_feature]]
        if not low_data or not high_data:
            return _Node(label=majority)
        return _Node(
            feature=best_feature,
            low=DecisionTree._grow(low_data, features, depth - 1,
                                   min_samples),
            high=DecisionTree._grow(high_data, features, depth - 1,
                                    min_samples))

    @staticmethod
    def _entropy(labels: Sequence[bool]) -> float:
        if not labels:
            return 0.0
        p = sum(labels) / len(labels)
        result = 0.0
        for q in (p, 1 - p):
            if q > 0:
                result -= q * math.log2(q)
        return result

    @staticmethod
    def _gain(data, feature) -> float:
        labels = [y for _x, y in data]
        low = [y for x, y in data if not x[feature]]
        high = [y for x, y in data if x[feature]]
        before = DecisionTree._entropy(labels)
        after = (len(low) * DecisionTree._entropy(low) +
                 len(high) * DecisionTree._entropy(high)) / len(labels)
        return before - after

    # -- inference ---------------------------------------------------------------
    def decide(self, instance: Mapping[int, bool]) -> bool:
        node = self._root
        while not node.is_leaf:
            node = node.high if instance[node.feature] else node.low
        return node.label

    def decide_batch(self, instances: Sequence[Mapping[int, bool]]):
        """Decisions for N instances as a length-N bool array.

        The batch is *routed* down the tree: every node partitions the
        index set of the instances that reach it, so the cost is
        O(tree nodes + Σ path lengths) with the per-node split done by
        one vectorized mask instead of N scalar walks.
        """
        import numpy as np
        n = len(instances)
        out = np.zeros(n, dtype=bool)
        columns: dict = {}
        stack = [(self._root, np.arange(n))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.label
                continue
            column = columns.get(node.feature)
            if column is None:
                column = np.array(
                    [inst[node.feature] for inst in instances],
                    dtype=bool)
                columns[node.feature] = column
            mask = column[idx]
            stack.append((node.high, idx[mask]))
            stack.append((node.low, idx[~mask]))
        return out

    def depth(self) -> int:
        def rec(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(rec(node.low), rec(node.high))
        return rec(self._root)

    def leaf_count(self) -> int:
        def rec(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return rec(node.low) + rec(node.high)
        return rec(self._root)

    # -- the Boolean encoding -----------------------------------------------------
    def to_formula(self) -> Formula:
        """Disjunction of the path terms of positive leaves."""
        terms: List[Formula] = []

        def walk(node: _Node, path: List[int]) -> None:
            if node.is_leaf:
                if node.label:
                    terms.append(And(*(Lit(lit) for lit in path))
                                 if path else TRUE)
                return
            walk(node.low, path + [-node.feature])
            walk(node.high, path + [node.feature])

        walk(self._root, [])
        if not terms:
            return FALSE
        if len(terms) == 1:
            return terms[0]
        return Or(*terms)
