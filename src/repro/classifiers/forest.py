"""Random forests with majority voting and their circuit compilation.

Section 5: "random forests represent less of a challenge … we first
encode each decision tree into a Boolean formula … then combine these
formulas using a majority circuit.  The remaining challenge is purely
computational": compiling the combination into a tractable circuit —
done here with OBDD apply plus the threshold-of-functions gate.
"""

from __future__ import annotations

import random
from typing import List, Mapping, Sequence

from ..obdd.manager import ObddManager, ObddNode
from ..obdd.ops import compile_formula
from .decision_tree import DecisionTree
from .threshold import threshold_of_functions

__all__ = ["RandomForest", "compile_forest"]


class RandomForest:
    """Bagged decision trees with (strict) majority voting."""

    def __init__(self, trees: Sequence[DecisionTree]):
        if not trees:
            raise ValueError("a forest needs at least one tree")
        self.trees = list(trees)

    @classmethod
    def fit(cls, instances: Sequence[Mapping[int, bool]],
            labels: Sequence[bool], num_trees: int = 5,
            max_depth: int = 6, feature_fraction: float = 0.8,
            rng: random.Random | None = None) -> "RandomForest":
        """Bagging + random feature subsets."""
        rng = rng or random.Random()
        features = sorted(instances[0])
        trees: List[DecisionTree] = []
        n = len(instances)
        k = max(1, round(feature_fraction * len(features)))
        for _ in range(num_trees):
            indices = [rng.randrange(n) for _ in range(n)]
            pool = sorted(rng.sample(features, k))
            trees.append(DecisionTree.fit(
                [instances[i] for i in indices],
                [labels[i] for i in indices],
                max_depth=max_depth, feature_pool=pool))
        return cls(trees)

    def votes(self, instance: Mapping[int, bool]) -> int:
        return sum(1 for tree in self.trees if tree.decide(instance))

    def decide(self, instance: Mapping[int, bool]) -> bool:
        """Strict majority of trees (ties vote negative)."""
        return 2 * self.votes(instance) > len(self.trees)

    def votes_batch(self, instances: Sequence[Mapping[int, bool]]):
        """Per-instance vote counts as a length-N int array (each tree
        routes the whole batch once)."""
        import numpy as np
        totals = np.zeros(len(instances), dtype=int)
        for tree in self.trees:
            totals += tree.decide_batch(instances)
        return totals

    def decide_batch(self, instances: Sequence[Mapping[int, bool]]):
        """Strict-majority decisions for N instances as a bool array."""
        return 2 * self.votes_batch(instances) > len(self.trees)

    def accuracy(self, instances: Sequence[Mapping[int, bool]],
                 labels: Sequence[bool]) -> float:
        import numpy as np
        hits = self.decide_batch(instances) == \
            np.asarray(labels, dtype=bool)
        return float(hits.sum()) / len(labels)


def compile_forest(forest: RandomForest,
                   manager: ObddManager | None = None) -> ObddNode:
    """An OBDD with the forest's exact input-output behaviour.

    Each tree compiles via its Boolean formula; the majority gate is a
    threshold over the tree OBDDs.
    """
    if manager is None:
        variables = sorted({f for tree in forest.trees
                            for f in tree.features})
        manager = ObddManager(variables)
    tree_nodes = [compile_formula(tree.to_formula(), manager)
                  for tree in forest.trees]
    count = len(tree_nodes)
    # strict majority: votes ≥ floor(count/2) + 1
    return threshold_of_functions(manager, tree_nodes,
                                  [1.0] * count, count // 2 + 1)
