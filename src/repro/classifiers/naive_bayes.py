"""Naive Bayes classifiers over binary features (Fig 25).

The classifier computes Pr(class | features) and declares positive when
the posterior passes a threshold T.  While numeric, its decision
function is Boolean — the observation behind compiling it into an ODD
[9] (see :mod:`repro.classifiers.compile_nb`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence, Tuple

__all__ = ["NaiveBayesClassifier"]


class NaiveBayesClassifier:
    """A binary-class, binary-feature naive Bayes model.

    Parameters
    ----------
    prior:
        Pr(class = 1).
    likelihoods:
        For each feature variable v: (Pr(v=1 | class=1),
        Pr(v=1 | class=0)).
    threshold:
        Declare positive when Pr(class=1 | features) ≥ threshold.
    """

    def __init__(self, prior: float,
                 likelihoods: Mapping[int, Tuple[float, float]],
                 threshold: float = 0.5):
        if not 0 < prior < 1:
            raise ValueError("prior must be strictly between 0 and 1")
        if not 0 < threshold < 1:
            raise ValueError("threshold must be strictly between 0 and 1")
        for var, (p1, p0) in likelihoods.items():
            for p in (p1, p0):
                if not 0 <= p <= 1:
                    raise ValueError(f"bad likelihood for feature {var}")
        self.prior = prior
        self.likelihoods = dict(likelihoods)
        self.threshold = threshold

    @property
    def features(self) -> List[int]:
        return sorted(self.likelihoods)

    # -- inference ---------------------------------------------------------------
    def posterior(self, instance: Mapping[int, bool]) -> float:
        """Pr(class = 1 | instance) by Bayes with the naive assumption."""
        joint1 = self.prior
        joint0 = 1.0 - self.prior
        for var, (p1, p0) in self.likelihoods.items():
            value = instance[var]
            joint1 *= p1 if value else 1.0 - p1
            joint0 *= p0 if value else 1.0 - p0
        if joint1 + joint0 == 0.0:
            raise ZeroDivisionError("instance has probability zero")
        return joint1 / (joint1 + joint0)

    def decide(self, instance: Mapping[int, bool]) -> bool:
        """The induced Boolean decision function."""
        return self.posterior(instance) >= self.threshold

    def posterior_batch(self, instances: Sequence[Mapping[int, bool]]):
        """Pr(class = 1 | x) for N instances in one vectorized pass.

        Column ``j`` of the returned length-N float array equals
        ``posterior(instances[j])``.
        """
        import numpy as np
        features = self.features
        x = np.array([[inst[var] for var in features]
                      for inst in instances], dtype=bool)
        p1 = np.array([self.likelihoods[var][0] for var in features])
        p0 = np.array([self.likelihoods[var][1] for var in features])
        joint1 = self.prior * np.where(x, p1, 1.0 - p1).prod(axis=1)
        joint0 = (1.0 - self.prior) * \
            np.where(x, p0, 1.0 - p0).prod(axis=1)
        total = joint1 + joint0
        if (total == 0.0).any():
            raise ZeroDivisionError("an instance has probability zero")
        return joint1 / total

    def decide_batch(self, instances: Sequence[Mapping[int, bool]]):
        """The decision on N instances as a length-N bool array."""
        return self.posterior_batch(instances) >= self.threshold

    def accuracy(self, instances: Sequence[Mapping[int, bool]],
                 labels: Sequence[bool]) -> float:
        """Fraction of instances whose decision matches the label
        (scored through one batched posterior pass)."""
        import numpy as np
        decisions = self.decide_batch(instances)
        return float((decisions == np.asarray(labels, dtype=bool))
                     .mean())

    # -- learning ----------------------------------------------------------------
    @classmethod
    def fit(cls, instances: Sequence[Mapping[int, bool]],
            labels: Sequence[bool], threshold: float = 0.5,
            alpha: float = 1.0) -> "NaiveBayesClassifier":
        """Maximum likelihood with Laplace smoothing ``alpha``."""
        if len(instances) != len(labels) or not instances:
            raise ValueError("need equally many instances and labels")
        features = sorted(instances[0])
        positives = sum(labels)
        prior = (positives + alpha) / (len(labels) + 2 * alpha)
        likelihoods: Dict[int, Tuple[float, float]] = {}
        for var in features:
            on1 = sum(1 for inst, y in zip(instances, labels)
                      if y and inst[var])
            on0 = sum(1 for inst, y in zip(instances, labels)
                      if not y and inst[var])
            p1 = (on1 + alpha) / (positives + 2 * alpha)
            p0 = (on0 + alpha) / (len(labels) - positives + 2 * alpha)
            likelihoods[var] = (p1, p0)
        return cls(prior, likelihoods, threshold)

    # -- the weight-of-evidence view (used by the ODD compiler) -----------------
    def evidence_weights(self) -> Tuple[Dict[int, float], float]:
        """Rewrite the decision as Σᵢ wᵢ·xᵢ ≥ t over 0/1 features.

        log-odds(posterior) = log-odds(prior) + Σᵢ log LRᵢ(xᵢ); the
        per-feature log likelihood-ratio contributions are split into a
        base (feature absent) plus a delta (feature present).
        """
        target = math.log(self.threshold / (1.0 - self.threshold))
        base = math.log(self.prior / (1.0 - self.prior))
        weights: Dict[int, float] = {}
        for var, (p1, p0) in self.likelihoods.items():
            on = _log_ratio(p1, p0)
            off = _log_ratio(1.0 - p1, 1.0 - p0)
            base += off
            weights[var] = on - off
        return weights, target - base

    def __repr__(self) -> str:
        return f"NaiveBayesClassifier({len(self.likelihoods)} features, " \
               f"threshold={self.threshold})"


def _log_ratio(a: float, b: float) -> float:
    if a == 0.0 and b == 0.0:
        return 0.0
    if b == 0.0:
        return math.inf
    if a == 0.0:
        return -math.inf
    return math.log(a / b)
