"""Synthetic datasets for the Role-3 experiments.

The paper's Figs 28–29 use 16×16 digit images and CNNs; pure-Python
circuit manipulation cannot hold 256-input networks, so we generate
binary digit-blob images at configurable (default smaller) resolution
and train binarized networks on them — the identical pipeline at
laptop scale (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Tuple

__all__ = ["digit_template", "generate_digit_images", "digit_dataset",
           "image_variables", "render_image"]

# 5x5 reference templates; scaled by nearest neighbour to other sizes
_TEMPLATES = {
    0: ["#####",
        "#...#",
        "#...#",
        "#...#",
        "#####"],
    1: ["..#..",
        ".##..",
        "..#..",
        "..#..",
        ".###."],
    2: ["####.",
        "...#.",
        ".##..",
        "#....",
        "####."],
}


def image_variables(size: int) -> List[int]:
    """Pixel variables 1..size² (row-major)."""
    return list(range(1, size * size + 1))


def digit_template(digit: int, size: int) -> Dict[int, bool]:
    """The noiseless binary image of ``digit`` at size×size."""
    if digit not in _TEMPLATES:
        raise ValueError(f"no template for digit {digit}")
    base = _TEMPLATES[digit]
    image: Dict[int, bool] = {}
    for row in range(size):
        for col in range(size):
            source_row = min(row * 5 // size, 4)
            source_col = min(col * 5 // size, 4)
            var = row * size + col + 1
            image[var] = base[source_row][source_col] == "#"
    return image


def generate_digit_images(digit: int, count: int, size: int,
                          noise: float = 0.08,
                          rng: random.Random | None = None
                          ) -> List[Dict[int, bool]]:
    """Noisy copies of the digit template (pixel flips w.p. ``noise``)."""
    rng = rng or random.Random()
    template = digit_template(digit, size)
    images = []
    for _ in range(count):
        images.append({var: (not value if rng.random() < noise else value)
                       for var, value in template.items()})
    return images


def digit_dataset(positive_digit: int, negative_digit: int,
                  count_per_class: int, size: int, noise: float = 0.08,
                  rng: random.Random | None = None
                  ) -> Tuple[List[Dict[int, bool]], List[bool]]:
    """A labelled two-digit classification dataset (Fig 28/29 style)."""
    rng = rng or random.Random()
    positives = generate_digit_images(positive_digit, count_per_class,
                                      size, noise, rng)
    negatives = generate_digit_images(negative_digit, count_per_class,
                                      size, noise, rng)
    instances = positives + negatives
    labels = [True] * count_per_class + [False] * count_per_class
    order = list(range(len(instances)))
    rng.shuffle(order)
    return [instances[i] for i in order], [labels[i] for i in order]


def render_image(image: Mapping[int, bool], size: int,
                 on: str = "#", off: str = ".") -> str:
    """ASCII rendering (used by the Fig 28 benchmark output)."""
    rows = []
    for row in range(size):
        rows.append("".join(
            on if image[row * size + col + 1] else off
            for col in range(size)))
    return "\n".join(rows)
