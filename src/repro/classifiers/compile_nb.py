"""Compiling naive Bayes classifiers into decision graphs (Fig 25, [9]).

The decision of a naive Bayes classifier is a linear threshold test on
the per-feature log likelihood-ratios, so the compilation reduces to
:func:`repro.classifiers.threshold.threshold_obdd` — producing an OBDD
with the *same input-output behaviour* as the probabilistic classifier.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..obdd.manager import ObddManager, ObddNode
from .naive_bayes import NaiveBayesClassifier
from .threshold import threshold_obdd

__all__ = ["compile_naive_bayes"]


def compile_naive_bayes(classifier: NaiveBayesClassifier,
                        manager: ObddManager | None = None,
                        order: Sequence[int] | None = None) -> ObddNode:
    """An OBDD agreeing with ``classifier.decide`` on every instance.

    ``order`` fixes the feature testing order (default: ascending
    variable index); infinities from 0/1 likelihoods are handled by
    clamping to a magnitude exceeding every finite total.
    """
    from .naive_bayes import _log_ratio

    if order is None:
        order = classifier.features
    if manager is None:
        manager = ObddManager(order)
    variables = list(order)
    # per-feature log likelihood-ratio contributions (may be ±inf for
    # 0/1 likelihoods); clamp each to ±big BEFORE summing so that a
    # deterministic feature dominates every finite total, exactly as the
    # true ±inf contribution would
    contributions = {}
    finite_magnitudes = []
    for var in variables:
        p1, p0 = classifier.likelihoods[var]
        on = _log_ratio(p1, p0)
        off = _log_ratio(1.0 - p1, 1.0 - p0)
        contributions[var] = (on, off)
        for value in (on, off):
            if math.isfinite(value):
                finite_magnitudes.append(abs(value))
    prior_logodds = math.log(classifier.prior / (1.0 - classifier.prior))
    target_logodds = math.log(classifier.threshold /
                              (1.0 - classifier.threshold))
    finite_magnitudes.extend([abs(prior_logodds), abs(target_logodds)])
    big = 4.0 * (sum(finite_magnitudes) + 1.0) * (len(variables) + 1)

    def clamp(value: float) -> float:
        return max(-big, min(big, value))

    base = prior_logodds
    weights = []
    for var in variables:
        on, off = contributions[var]
        on, off = clamp(on), clamp(off)
        base += off
        weights.append(on - off)
    return threshold_obdd(manager, variables, weights,
                          target_logodds - base)
