"""The paper's running Role-3 examples, quantified.

The paper gives structure but not numbers for Fig 25 and Fig 27; the
quantifications here are chosen so the *published explanation
structure* is reproduced exactly:

* Fig 25 (pregnancy): Susan (+,+,+) is classified pregnant with
  sufficient reasons {S=+ve} and {B=+ve, U=+ve} — the two reasons the
  paper discusses in Section 5.1.
* Fig 27 (admissions): Robin's admission is unbiased but witnesses
  classifier bias; Scott's admission is biased (flipping only the
  protected feature R reverses it).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..obdd.manager import ObddManager, ObddNode
from .naive_bayes import NaiveBayesClassifier

__all__ = ["pregnancy_classifier", "PREGNANCY_FEATURES",
           "admissions_classifier", "ADMISSIONS_FEATURES"]

#: feature variables of the Fig 25 classifier
PREGNANCY_FEATURES: Dict[str, int] = {"B": 1, "U": 2, "S": 3}


def pregnancy_classifier(threshold: float = 0.9) -> NaiveBayesClassifier:
    """The Fig 25 naive Bayes classifier (class P; tests B, U, S).

    With the default threshold, the decision on Susan (+,+,+) has
    exactly the two sufficient reasons of the paper: S=+ve alone, and
    B=+ve ∧ U=+ve.
    """
    return NaiveBayesClassifier(
        prior=0.8,
        likelihoods={
            PREGNANCY_FEATURES["B"]: (0.70, 0.05),
            PREGNANCY_FEATURES["U"]: (0.80, 0.10),
            PREGNANCY_FEATURES["S"]: (0.95, 0.01),
        },
        threshold=threshold)


#: feature variables of the Fig 27 classifier (R is protected)
ADMISSIONS_FEATURES: Dict[str, int] = {
    "E": 1,  # passed the entrance exam
    "F": 2,  # first-time applicant
    "G": 3,  # good GPA
    "W": 4,  # work experience
    "R": 5,  # comes from a rich hometown (protected)
}


def admissions_classifier() -> Tuple[ObddManager, ObddNode]:
    """A Fig 27-style admissions OBDD over the five features.

    Admit iff  (E ∧ (G ∨ W)) ∨ (R ∧ (E ∨ G)): merit admissions need the
    entrance exam plus GPA or experience; a rich hometown lowers the
    bar to exam-or-GPA.
    """
    manager = ObddManager([1, 2, 3, 4, 5])
    e = manager.literal(ADMISSIONS_FEATURES["E"])
    g = manager.literal(ADMISSIONS_FEATURES["G"])
    w = manager.literal(ADMISSIONS_FEATURES["W"])
    r = manager.literal(ADMISSIONS_FEATURES["R"])
    node = (e & (g | w)) | (r & (e | g))
    return manager, node
