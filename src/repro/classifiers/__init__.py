"""Classifiers (naive Bayes, BN, trees, forests, binarized nets) and
their compilation into tractable circuits (Section 5)."""

from .naive_bayes import NaiveBayesClassifier
from .compile_nb import compile_naive_bayes
from .bn_classifier import BnClassifier, compile_decision_function
from .decision_tree import DecisionTree
from .forest import RandomForest, compile_forest
from .bnn import BinarizedNeuralNetwork, compile_bnn
from .threshold import threshold_obdd, threshold_of_functions
from .examples import (ADMISSIONS_FEATURES, PREGNANCY_FEATURES,
                       admissions_classifier, pregnancy_classifier)
from .datasets import (digit_dataset, digit_template,
                       generate_digit_images, image_variables,
                       render_image)

__all__ = ["ADMISSIONS_FEATURES", "PREGNANCY_FEATURES",
           "admissions_classifier", "pregnancy_classifier",
           "NaiveBayesClassifier", "compile_naive_bayes", "BnClassifier",
           "compile_decision_function", "DecisionTree", "RandomForest",
           "compile_forest", "BinarizedNeuralNetwork", "compile_bnn",
           "threshold_obdd", "threshold_of_functions", "digit_dataset",
           "digit_template", "generate_digit_images", "image_variables",
           "render_image"]
