"""Binarized neural networks and their compilation to circuits
([15, 80, 84]; Figs 28–29).

A :class:`BinarizedNeuralNetwork` has ±1 integer weights, integer
thresholds and step activations: a neuron fires when its weighted sum
of 0/1 inputs reaches its threshold.  Each neuron is a linear threshold
function, so the whole network compiles *exactly* into an OBDD, layer
by layer: first-layer neurons via :func:`threshold_obdd`, deeper ones
via :func:`threshold_of_functions` over the previous layer's OBDDs.

Training uses greedy bit-flip hill climbing on accuracy — crude but
deterministic and dependency-free; the paper's claims we reproduce are
about *analysing* trained networks, not about training them well.
"""

from __future__ import annotations

import random
from typing import List, Mapping, Sequence, Tuple

from ..obdd.manager import ObddManager, ObddNode
from .threshold import threshold_obdd, threshold_of_functions

__all__ = ["BinarizedNeuralNetwork", "compile_bnn"]


class BinarizedNeuralNetwork:
    """Layers of ±1-weight threshold neurons over 0/1 inputs."""

    def __init__(self, weights: Sequence[Sequence[Sequence[int]]],
                 thresholds: Sequence[Sequence[float]],
                 input_vars: Sequence[int]):
        if len(weights) != len(thresholds):
            raise ValueError("one threshold row per layer")
        self.weights = [[list(row) for row in layer] for layer in weights]
        self.thresholds = [list(layer) for layer in thresholds]
        self.input_vars = list(input_vars)
        width = len(self.input_vars)
        for layer, (w, t) in enumerate(zip(self.weights,
                                           self.thresholds)):
            if len(w) != len(t):
                raise ValueError(f"layer {layer}: weights/thresholds "
                                 "mismatch")
            for row in w:
                if len(row) != width:
                    raise ValueError(f"layer {layer}: bad fan-in")
                if any(entry not in (-1, 1) for entry in row):
                    raise ValueError("weights must be ±1")
            width = len(w)
        if width != 1:
            raise ValueError("the output layer must have one neuron")

    @property
    def num_layers(self) -> int:
        return len(self.weights)

    # -- inference ---------------------------------------------------------------
    def forward(self, instance: Mapping[int, bool]) -> bool:
        activations = [1.0 if instance[v] else 0.0
                       for v in self.input_vars]
        for layer_weights, layer_thresholds in zip(self.weights,
                                                   self.thresholds):
            activations = [
                1.0 if sum(w * a for w, a in zip(row, activations)) >=
                threshold else 0.0
                for row, threshold in zip(layer_weights,
                                          layer_thresholds)]
        return activations[0] >= 0.5

    decide = forward

    def forward_batch(self, instances: Sequence[Mapping[int, bool]]):
        """Forward N instances through the network in one matmul per
        layer; returns a length-N bool array matching ``forward``
        exactly (±1 weights and 0/1 activations are float-exact)."""
        import numpy as np
        activations = np.array([[inst[v] for v in self.input_vars]
                                for inst in instances], dtype=float)
        for layer_weights, layer_thresholds in zip(self.weights,
                                                   self.thresholds):
            w = np.array(layer_weights, dtype=float)
            t = np.array(layer_thresholds, dtype=float)
            activations = (activations @ w.T >= t).astype(float)
        return activations[:, 0] >= 0.5

    decide_batch = forward_batch

    def accuracy(self, instances: Sequence[Mapping[int, bool]],
                 labels: Sequence[bool]) -> float:
        import numpy as np
        hits = self.forward_batch(instances) == \
            np.asarray(labels, dtype=bool)
        return float(hits.sum()) / len(labels)

    # -- training ----------------------------------------------------------------
    @classmethod
    def train(cls, instances: Sequence[Mapping[int, bool]],
              labels: Sequence[bool], hidden: Sequence[int] = (4,),
              seed: int = 0, passes: int = 3
              ) -> "BinarizedNeuralNetwork":
        """Greedy bit-flip training with the given hidden layer sizes.

        ``seed`` controls the initialisation — training the same data
        with two seeds is how the Fig 29 robustness comparison sets up
        its two networks.
        """
        rng = random.Random(seed)
        input_vars = sorted(instances[0])
        sizes = [len(input_vars), *hidden, 1]
        weights = [[[rng.choice((-1, 1)) for _ in range(sizes[i])]
                    for _ in range(sizes[i + 1])]
                   for i in range(len(sizes) - 1)]
        thresholds = [[rng.randint(0, max(1, sizes[i] // 2)) - 0.5
                       for _ in range(sizes[i + 1])]
                      for i in range(len(sizes) - 1)]
        network = cls(weights, thresholds, input_vars)

        # every candidate flip rescores the whole dataset — one matmul
        # per layer over a precomputed instance matrix, same decisions
        # as the scalar forward (±1 weights are float-exact)
        import numpy as np
        x = np.array([[inst[v] for v in input_vars]
                      for inst in instances], dtype=float)
        labels_arr = np.asarray(labels, dtype=bool)

        def score() -> int:
            a = x
            for lw, lt in zip(network.weights, network.thresholds):
                a = (a @ np.array(lw, dtype=float).T >=
                     np.array(lt, dtype=float)).astype(float)
            return int(((a[:, 0] >= 0.5) == labels_arr).sum())

        best = score()
        for _ in range(passes):
            improved = False
            for layer in range(network.num_layers):
                for i, row in enumerate(network.weights[layer]):
                    for j in range(len(row)):
                        row[j] = -row[j]
                        trial = score()
                        if trial > best:
                            best = trial
                            improved = True
                        else:
                            row[j] = -row[j]
                    for delta in (1.0, -1.0):
                        network.thresholds[layer][i] += delta
                        trial = score()
                        if trial > best:
                            best = trial
                            improved = True
                        else:
                            network.thresholds[layer][i] -= delta
            if not improved:
                break
        return network

    def __repr__(self) -> str:
        shape = [len(self.input_vars)] + [len(w) for w in self.weights]
        return f"BinarizedNeuralNetwork({'-'.join(map(str, shape))})"


def compile_bnn(network: BinarizedNeuralNetwork,
                manager: ObddManager | None = None
                ) -> Tuple[ObddNode, List[List[ObddNode]]]:
    """Compile the network into an OBDD, layer by layer.

    Returns ``(output, per_layer_neuron_obdds)`` — the per-neuron
    circuits support the paper's neuron-level interpretation queries
    ("of all inputs that make this neuron fire, what fraction set X?").
    """
    if manager is None:
        manager = ObddManager(network.input_vars)
    layers: List[List[ObddNode]] = []
    previous: List[ObddNode] | None = None
    for layer_index, (layer_weights, layer_thresholds) in enumerate(
            zip(network.weights, network.thresholds)):
        current: List[ObddNode] = []
        for row, threshold in zip(layer_weights, layer_thresholds):
            if previous is None:
                node = threshold_obdd(manager, network.input_vars,
                                      [float(w) for w in row], threshold)
            else:
                node = threshold_of_functions(
                    manager, previous, [float(w) for w in row], threshold)
            current.append(node)
        layers.append(current)
        previous = current
    return layers[-1][0], layers
